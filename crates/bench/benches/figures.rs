//! Criterion benches: scaled-down versions of every figure panel.
//!
//! Each bench runs one representative load point of the corresponding
//! figure through the same code path as the full harness binaries. Sample
//! counts are kept low — the statistics of interest (latency distributions
//! inside the simulated run) are computed by the harness itself; Criterion
//! here tracks the cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use iabc_bench::{measure, sel, Effort, StackSel};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

#[allow(clippy::too_many_arguments)]
fn bench_point(
    c: &mut Criterion,
    name: &str,
    sel: StackSel,
    n: usize,
    net: &NetworkParams,
    cost: CostModel,
    throughput: f64,
    payload: usize,
) {
    c.bench_function(name, |b| {
        b.iter(|| {
            let p = measure(sel, n, net, cost, throughput, payload, Effort::quick());
            assert!(p.mean_ms > 0.0);
            p
        })
    });
}

fn figure1(c: &mut Criterion) {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    bench_point(c, "fig1/indirect/100mps/2000B", sel::indirect(RbKind::EagerN2), 3, &net, cost, 100.0, 2000);
    bench_point(c, "fig1/direct/100mps/2000B", sel::direct_messages(RbKind::EagerN2), 3, &net, cost, 100.0, 2000);
}

fn figure3(c: &mut Criterion) {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    bench_point(c, "fig3/indirect/n3/400mps", sel::indirect(RbKind::EagerN2), 3, &net, cost, 400.0, 1);
    bench_point(c, "fig3/faulty/n3/400mps", sel::faulty(RbKind::EagerN2), 3, &net, cost, 400.0, 1);
    bench_point(c, "fig3/indirect/n5/400mps", sel::indirect(RbKind::EagerN2), 5, &net, cost, 400.0, 1);
}

fn figure4(c: &mut Criterion) {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    bench_point(c, "fig4/indirect/n5/100mps/3000B", sel::indirect(RbKind::EagerN2), 5, &net, cost, 100.0, 3000);
    bench_point(c, "fig4/faulty/n5/100mps/3000B", sel::faulty(RbKind::EagerN2), 5, &net, cost, 100.0, 3000);
}

fn figures5_6(c: &mut Criterion) {
    let net = NetworkParams::setup2();
    let cost = CostModel::setup2();
    bench_point(c, "fig5/indirect-rb-n2/1500mps/1000B", sel::indirect(RbKind::EagerN2), 3, &net, cost, 1500.0, 1000);
    bench_point(c, "fig6/indirect-rb-n/1500mps/1000B", sel::indirect(RbKind::LazyN), 3, &net, cost, 1500.0, 1000);
    bench_point(c, "fig5+6/urb/1500mps/1000B", sel::urb(), 3, &net, cost, 1500.0, 1000);
}

fn figure7(c: &mut Criterion) {
    let net = NetworkParams::setup2();
    let cost = CostModel::setup2();
    bench_point(c, "fig7/indirect-rb-n2/1000mps", sel::indirect(RbKind::EagerN2), 3, &net, cost, 1000.0, 1);
    bench_point(c, "fig7/indirect-rb-n/1000mps", sel::indirect(RbKind::LazyN), 3, &net, cost, 1000.0, 1);
    bench_point(c, "fig7/urb/1000mps", sel::urb(), 3, &net, cost, 1000.0, 1);
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = figure1, figure3, figure4, figures5_6, figure7
}
criterion_main!(figures);
