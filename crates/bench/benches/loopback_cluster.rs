//! Loop-back TCP transport throughput: event-driven vs thread-per-connection.
//!
//! Measures sustained frames/s and bytes/s of a windowed data/ack pump
//! between two local processes, over the full grid
//! `{event, threaded} × {64 B, 1 KiB, 16 KiB} × {lane on, lane off}`:
//!
//! * **arch** — the event-driven `TcpCluster` (one poll-loop I/O thread
//!   per process, pooled buffers, decode-in-place) against the
//!   thread-per-connection `ThreadedTcpCluster` control (blocking reader
//!   + flusher + injector threads, `FrameBuffer` re-assembly copy).
//! * **payload** — 64 B is the wakeup-dominated regime the event loop
//!   targets (per-frame thread hops dominate); 16 KiB is bandwidth-bound
//!   (both transports converge toward memcpy speed).
//! * **lane** — with the lane on, acks ride the ordering lane ahead of
//!   bulk data; off, everything shares the bulk lane.
//!
//! Writes `results/BENCH_loopback.json`. The absolute frames/s rows are
//! machine-dependent and deliberately carry **no** `delivered_per_sec`
//! field, so the `bench_trend` parser skips them; the hardware-independent
//! *speedup ratio* at the 64 B point is emitted as two extra gated rows
//! (`speedup_lane_{on,off}`, ratio × 1000 in `delivered_per_sec`, capped
//! at [`RATIO_CAP`]) — with the 20% trend allowance, the gate floor is
//! exactly 2.0×, the bound this bench also asserts directly.
//!
//! Run with `--smoke` for the scaled-down CI grid.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use iabc_net::{TcpCluster, ThreadedTcpCluster};
use iabc_runtime::{Context, Node};
use iabc_types::{CodecError, Decode, Encode, ProcessId, TrafficClass, WireSize};

/// Speedup ratios are clamped to this before hitting the JSON, so the
/// trend gate tracks "comfortably above 2×" instead of chasing
/// machine-specific ratios: `2.5 × (1 - 0.20) = 2.0`.
const RATIO_CAP: f64 = 2.5;

/// Cluster size. All `n·(n−1)` links run the pump concurrently: the
/// threaded transport needs `2·(n−1)` blocking I/O threads plus an
/// injector per process — 264 threads at n = 12, every one of them waking
/// per frame — vs one event loop per process (24 threads total). Exactly
/// the per-thread wakeup overhead the event rewrite removes.
const N: usize = 12;

/// Outstanding data frames per destination. One: every data frame is its
/// own wakeup chain (reader → node → flusher in the threaded transport),
/// which is the wakeup-dominated regime the event loop targets. Deeper
/// windows let the threaded flusher coalesce its way out of trouble —
/// both transports converge toward batch-amortized throughput there (the
/// 16 KiB payload row shows the same convergence by bandwidth instead).
const WINDOW: usize = 1;

/// One pump frame: `Data` carries the padding payload 0 → 1, `Ack`
/// confirms a sequence number 1 → 0. With the lane on, acks are
/// `Ordering`-class and jump the bulk backlog.
#[derive(Clone, Debug)]
enum PumpMsg {
    Data { seq: u64, lane_on: bool, payload: Vec<u8> },
    Ack { seq: u64, lane_on: bool },
}

impl WireSize for PumpMsg {
    fn wire_size(&self) -> usize {
        match self {
            PumpMsg::Data { payload, .. } => 1 + 8 + 1 + 4 + payload.len(),
            PumpMsg::Ack { .. } => 1 + 8 + 1,
        }
    }
    fn traffic_class(&self) -> TrafficClass {
        match self {
            PumpMsg::Data { .. } => TrafficClass::Bulk,
            PumpMsg::Ack { lane_on: true, .. } => TrafficClass::Ordering,
            PumpMsg::Ack { lane_on: false, .. } => TrafficClass::Bulk,
        }
    }
}

impl Encode for PumpMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PumpMsg::Data { seq, lane_on, payload } => {
                0u8.encode(buf);
                seq.encode(buf);
                lane_on.encode(buf);
                (payload.len() as u32).encode(buf);
                buf.extend_from_slice(payload);
            }
            PumpMsg::Ack { seq, lane_on } => {
                1u8.encode(buf);
                seq.encode(buf);
                lane_on.encode(buf);
            }
        }
    }
}

impl Decode for PumpMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => {
                let seq = u64::decode(buf)?;
                let lane_on = bool::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                if buf.len() < len {
                    return Err(CodecError::Truncated { need: len, have: buf.len() });
                }
                let (body, rest) = buf.split_at(len);
                let payload = body.to_vec();
                *buf = rest;
                Ok(PumpMsg::Data { seq, lane_on, payload })
            }
            1 => {
                let seq = u64::decode(buf)?;
                let lane_on = bool::decode(buf)?;
                Ok(PumpMsg::Ack { seq, lane_on })
            }
            tag => Err(CodecError::InvalidTag { tag, context: "PumpMsg" }),
        }
    }
}

/// Every process pumps `per_pair` data frames to *each* peer, keeping
/// [`WINDOW`] outstanding per destination (refill one per ack), acks every
/// data frame it receives, and outputs once all of its own data frames are
/// acked. All `n·(n−1)` links are busy concurrently.
struct Pump {
    me: ProcessId,
    per_pair: u64,
    payload_len: usize,
    lane_on: bool,
    /// Next unsent sequence number toward each peer.
    next_seq: Vec<u64>,
    acked: u64,
}

impl Pump {
    fn data(&self, seq: u64) -> PumpMsg {
        PumpMsg::Data {
            seq,
            lane_on: self.lane_on,
            payload: vec![(seq % 251) as u8; self.payload_len],
        }
    }
}

impl Node for Pump {
    type Msg = PumpMsg;
    type Command = ();
    type Output = ();

    fn on_command(&mut self, _cmd: (), ctx: &mut Context<PumpMsg, ()>) {
        for peer in 0..N {
            let to = ProcessId::new(peer as u16);
            if to == self.me {
                continue;
            }
            let burst = (WINDOW as u64).min(self.per_pair);
            for _ in 0..burst {
                let msg = self.data(self.next_seq[peer]);
                self.next_seq[peer] += 1;
                ctx.send(to, msg);
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: PumpMsg, ctx: &mut Context<PumpMsg, ()>) {
        match msg {
            PumpMsg::Data { seq, lane_on, .. } => {
                ctx.send(from, PumpMsg::Ack { seq, lane_on });
            }
            PumpMsg::Ack { .. } => {
                self.acked += 1;
                let peer = from.as_usize();
                if self.next_seq[peer] < self.per_pair {
                    let msg = self.data(self.next_seq[peer]);
                    self.next_seq[peer] += 1;
                    ctx.send(from, msg);
                }
                if self.acked == (N as u64 - 1) * self.per_pair {
                    ctx.output(());
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Arch {
    Event,
    Threaded,
}

impl Arch {
    fn label(self) -> &'static str {
        match self {
            Arch::Event => "event",
            Arch::Threaded => "threaded",
        }
    }
}

/// One measured grid point.
struct LoopbackPoint {
    arch: Arch,
    payload: usize,
    lane_on: bool,
    frames_per_sec: f64,
    bytes_per_sec: f64,
}

/// Wire bytes of one data frame: 4-byte length prefix + 2-byte sender tag
/// + the `PumpMsg::Data` body.
fn data_frame_wire_bytes(payload: usize) -> usize {
    4 + 2 + 1 + 8 + 1 + 4 + payload
}

fn pump_factory(per_pair: u64, payload: usize, lane_on: bool) -> impl FnMut(ProcessId) -> Pump {
    move |p| Pump {
        me: p,
        per_pair,
        payload_len: payload,
        lane_on,
        next_seq: vec![0; N],
        acked: 0,
    }
}

/// Runs one pump to completion (every process got all its data acked) and
/// returns the elapsed wall-clock time.
fn run_once(arch: Arch, per_pair: u64, payload: usize, lane_on: bool) -> Duration {
    let timeout = Duration::from_secs(120);
    match arch {
        Arch::Event => {
            let mut cluster = TcpCluster::start(N, pump_factory(per_pair, payload, lane_on));
            let start = Instant::now();
            for p in 0..N {
                cluster.send_command(ProcessId::new(p as u16), ());
            }
            let outs = cluster.wait_for_outputs(N, timeout);
            let elapsed = start.elapsed();
            assert_eq!(outs.len(), N, "pump did not drain: event arch, {payload} B");
            cluster.shutdown();
            elapsed
        }
        Arch::Threaded => {
            let mut cluster =
                ThreadedTcpCluster::start(N, pump_factory(per_pair, payload, lane_on));
            let start = Instant::now();
            for p in 0..N {
                cluster.send_command(ProcessId::new(p as u16), ());
            }
            let outs = cluster.wait_for_outputs(N, timeout);
            let elapsed = start.elapsed();
            assert_eq!(outs.len(), N, "pump did not drain: threaded arch, {payload} B");
            cluster.shutdown();
            elapsed
        }
    }
}

/// Best-of-`repeats` measurement of one grid point (max throughput over
/// the repeats — scheduling noise only ever slows a run down).
fn measure(
    arch: Arch,
    payload: usize,
    lane_on: bool,
    per_pair: u64,
    repeats: usize,
) -> LoopbackPoint {
    let total = per_pair * (N as u64) * (N as u64 - 1);
    let mut best = f64::MIN;
    for _ in 0..repeats {
        let elapsed = run_once(arch, per_pair, payload, lane_on).as_secs_f64();
        best = best.max(total as f64 / elapsed);
    }
    LoopbackPoint {
        arch,
        payload,
        lane_on,
        frames_per_sec: best,
        bytes_per_sec: best * data_frame_wire_bytes(payload) as f64,
    }
}

fn lane_label(lane_on: bool) -> &'static str {
    if lane_on { "lane_on" } else { "lane_off" }
}

fn write_json(path: &Path, points: &[LoopbackPoint], speedups: &[(bool, f64)]) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"loopback_cluster\",");
    let _ = writeln!(out, "  \"n\": {N},");
    let _ = writeln!(out, "  \"window\": {WINDOW},");
    let _ = writeln!(out, "  \"transport\": \"loopback-tcp\",");
    let _ = writeln!(out, "  \"points\": [");
    // Absolute rows: machine-dependent, so no "delivered_per_sec" —
    // the bench_trend parser skips rows without that field.
    for p in points {
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}_{}\", \"payload_bytes\": {}, \
             \"frames_per_sec\": {:.0}, \"bytes_per_sec\": {:.0}}},",
            p.arch.label(),
            lane_label(p.lane_on),
            p.payload,
            p.frames_per_sec,
            p.bytes_per_sec,
        );
    }
    // Gated rows: the hardware-independent 64 B speedup ratio, × 1000,
    // capped at RATIO_CAP (see module docs for how the cap pins the trend
    // floor to exactly 2.0×).
    for (i, (lane_on, ratio)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"speedup_{}\", \"window\": {WINDOW}, \"batch\": 1, \
             \"offered_per_sec\": 0.0, \"delivered_per_sec\": {:.0}, \"saturated\": false}}{comma}",
            lane_label(*lane_on),
            ratio.min(RATIO_CAP) * 1000.0,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write loopback json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let repeats = if smoke { 5 } else { 6 };
    let payloads: &[usize] = &[64, 1024, 16 * 1024];

    println!(
        "loopback_cluster: n={N}, window={WINDOW}/link, all-to-all data/ack pump over \
         loop-back TCP"
    );
    println!(
        "{:>9} {:>9} {:>9} | {:>12} {:>12}",
        "arch", "payload", "lane", "frames/s", "MiB/s"
    );
    let mut points = Vec::new();
    for &payload in payloads {
        // Frames per link; scaled so every point moves a comparable byte
        // volume: wakeup-dominated 64 B points need many frames for a
        // stable rate, 16 KiB points are bandwidth-bound much sooner.
        let per_pair: u64 = match (smoke, payload) {
            (true, 64) => 2_000,
            (true, 1024) => 800,
            (true, _) => 100,
            (false, 64) => 5_000,
            (false, 1024) => 2_000,
            (false, _) => 250,
        };
        for lane_on in [true, false] {
            for arch in [Arch::Event, Arch::Threaded] {
                let p = measure(arch, payload, lane_on, per_pair, repeats);
                println!(
                    "{:>9} {:>9} {:>9} | {:>12.0} {:>12.1}",
                    p.arch.label(),
                    p.payload,
                    lane_label(p.lane_on),
                    p.frames_per_sec,
                    p.bytes_per_sec / (1024.0 * 1024.0),
                );
                points.push(p);
            }
        }
    }

    // The headline claim: at 64 B — where per-frame thread wakeups, the
    // injector hop, and the FrameBuffer copy dominate the threaded
    // transport — the event loop must be at least 2× faster. The full run
    // (which produces the committed baseline) enforces the 2× bound
    // directly; the short smoke grid has wider run-to-run variance, so it
    // asserts only the trend gate's effective floor (20% under a 2×+
    // baseline) and leaves regression detection to `bench_trend` against
    // the committed rows.
    let rate = |arch: Arch, lane_on: bool| {
        points
            .iter()
            .find(|p| p.arch == arch && p.payload == 64 && p.lane_on == lane_on)
            .expect("64 B grid point measured")
            .frames_per_sec
    };
    let mut speedups = Vec::new();
    for lane_on in [true, false] {
        let ratio = rate(Arch::Event, lane_on) / rate(Arch::Threaded, lane_on);
        println!("64 B speedup ({}): {ratio:.2}x", lane_label(lane_on));
        speedups.push((lane_on, ratio));
        let floor = if smoke { 1.6 } else { 2.0 };
        assert!(
            ratio >= floor,
            "event-driven transport must be >= {floor}x the threaded control at 64 B \
             ({}): got {ratio:.2}x",
            lane_label(lane_on),
        );
    }

    // `cargo bench` runs this binary with the *package* dir as CWD, so
    // anchor the workspace-root results dir via the manifest location.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_loopback.json");
    write_json(Path::new(out), &points, &speedups);
    println!("wrote results/BENCH_loopback.json");
}
