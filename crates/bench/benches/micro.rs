//! Micro-benchmarks of the hot substrate paths: the wire codec, identifier
//! sets (the values indirect consensus shuffles around), the event queue
//! and the FIFO resources of the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iabc_sim::queue::EventQueue;
use iabc_sim::resource::FifoResource;
use iabc_types::wire::{Decode, Encode};
use iabc_types::{quorum, Duration, IdSet, MsgId, ProcessId, Time};

fn ids(n: u64) -> IdSet {
    IdSet::from_ids((0..n).map(|s| MsgId::new(ProcessId::new((s % 5) as u16), s)))
}

fn codec(c: &mut Criterion) {
    let set = ids(64);
    c.bench_function("codec/encode_idset_64", |b| {
        b.iter(|| black_box(&set).to_bytes())
    });
    let bytes = set.to_bytes();
    c.bench_function("codec/decode_idset_64", |b| {
        b.iter(|| IdSet::from_bytes(black_box(&bytes)).unwrap())
    });
}

fn idset_ops(c: &mut Criterion) {
    let a = ids(128);
    let b_set = IdSet::from_ids((64..192).map(|s| MsgId::new(ProcessId::new(1), s)));
    c.bench_function("idset/union_128", |b| {
        b.iter(|| black_box(&a).union(black_box(&b_set)))
    });
    c.bench_function("idset/subset_check_128", |b| {
        b.iter(|| black_box(&b_set).iter().all(|id| black_box(&a).contains(id)))
    });
    c.bench_function("idset/insert_1k", |b| {
        b.iter(|| {
            let mut s = IdSet::new();
            for i in 0..1000u64 {
                s.insert(MsgId::new(ProcessId::new((i % 7) as u16), i));
            }
            s
        })
    });
}

fn event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time::from_nanos(i * 37 % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn resources(c: &mut Criterion) {
    c.bench_function("sim/fifo_resource_acquire_10k", |b| {
        b.iter(|| {
            let mut r = FifoResource::new();
            let mut t = Time::ZERO;
            for _ in 0..10_000 {
                t = r.acquire(t, Duration::from_nanos(100));
            }
            t
        })
    });
}

fn quorums(c: &mut Criterion) {
    c.bench_function("quorum/all_formulas_1..256", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in 1..256usize {
                acc += quorum::majority(black_box(n))
                    + quorum::two_thirds(n)
                    + quorum::one_third(n)
                    + quorum::min_quorum_intersection(n, quorum::majority(n));
            }
            acc
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = codec, idset_ops, event_queue, resources, quorums
}
criterion_main!(micro);
