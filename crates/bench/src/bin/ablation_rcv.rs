//! Ablation: where does the indirect-vs-faulty gap come from?
//!
//! §4.3 of the paper attributes the overhead of indirect consensus to the
//! `rcv()` evaluations. This harness sweeps the per-identifier `rcv` cost
//! (0 = free) at a fixed high load and shows the gap collapsing to ≈0 when
//! the check is free — isolating the cause exactly as the paper argues.

use iabc_bench::{format_panel, sel, sweep_throughput, Effort, Series};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;

fn main() {
    let net = NetworkParams::setup1();
    let effort = Effort::full();
    let throughputs = [400.0, 800.0];

    let mut all: Vec<Series> = Vec::new();
    for per_id_us in [0u64, 10, 40, 80] {
        let cost = CostModel {
            rcv_check_per_id: Duration::from_micros(per_id_us),
            ..CostModel::setup1()
        };
        let mut series = sweep_throughput(
            &[("Indirect", sel::indirect(RbKind::EagerN2))],
            3,
            &net,
            cost,
            &throughputs,
            1,
            effort,
        );
        series[0].label = format!("Indirect, rcv={per_id_us}us/id");
        all.extend(series);
    }
    // The faulty baseline never pays rcv costs.
    let baseline = sweep_throughput(
        &[("(Faulty) consensus", sel::faulty(RbKind::EagerN2))],
        3,
        &net,
        CostModel::setup1(),
        &throughputs,
        1,
        effort,
    );
    all.extend(baseline);

    println!(
        "{}",
        format_panel(
            "Ablation: indirect-consensus overhead vs rcv() cost (n = 3, Setup 1, 1 byte)",
            "thr [msg/s]",
            &all
        )
    );
}
