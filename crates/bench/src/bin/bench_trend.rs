//! CI goodput-trend gate: compares a fresh `BENCH_pipeline_sweep.json`
//! against the committed baseline and fails on regressions.
//!
//! ```sh
//! bench_trend <baseline.json> <fresh.json> [--max-regression 0.20]
//! ```
//!
//! Grid points are matched by `(mode, window, batch)`; see
//! [`iabc_bench::trend`] for the comparison rules. Exits non-zero when any
//! common point regressed beyond the allowed fraction, and also when *no*
//! point was comparable — a silently empty comparison would let format
//! drift disable the gate.

use std::fs;
use std::process::ExitCode;

use iabc_bench::trend::{compare, parse_points, DEFAULT_MAX_REGRESSION};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--max-regression needs a fraction, e.g. 0.20");
                return ExitCode::FAILURE;
            };
            max_regression = v;
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_trend <baseline.json> <fresh.json> [--max-regression F]");
        return ExitCode::FAILURE;
    };

    let read = |path: &str| match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline_json), Some(fresh_json)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };

    let baseline = parse_points(&baseline_json);
    let fresh = parse_points(&fresh_json);
    println!(
        "bench_trend: {} baseline points ({baseline_path}), {} fresh points ({fresh_path}), \
         max regression {:.0}%",
        baseline.len(),
        fresh.len(),
        max_regression * 100.0
    );
    let report = compare(&baseline, &fresh, max_regression);
    for line in &report.compared {
        println!("  {line}");
    }
    if report.compared.is_empty() {
        eprintln!("bench_trend: no comparable grid points — artifact format drift?");
        return ExitCode::FAILURE;
    }
    // Fresh rows without a baseline key mean the grid drifted: failing
    // here forces the committed baseline to be regenerated alongside the
    // grid change, instead of silently un-gating the drifted rows.
    for u in &report.unmatched {
        eprintln!("UNMATCHED: {u}");
    }
    if report.regressions.is_empty() && report.unmatched.is_empty() {
        println!("bench_trend: OK, no goodput regression beyond {:.0}%", max_regression * 100.0);
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!("REGRESSION: {r}");
        }
        ExitCode::FAILURE
    }
}
