//! Figure 1: latency vs message size, n = 3, Setup 1, throughput
//! 100 and 800 msg/s — indirect consensus vs consensus on full messages.

use iabc_bench::{format_panel, sel, sweep_payload, write_csv, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let effort = Effort::full();
    let payloads = [1usize, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000];
    let stacks = [
        ("Indirect consensus", sel::indirect(RbKind::EagerN2)),
        ("Consensus", sel::direct_messages(RbKind::EagerN2)),
    ];

    for (panel, thr) in [("a", 100.0), ("b", 800.0)] {
        let series = sweep_payload(&stacks, 3, &net, cost, thr, &payloads, effort);
        println!(
            "{}",
            format_panel(
                &format!("Figure 1({panel}): n = 3, Throughput = {thr} msgs/s (Setup 1)"),
                "size [bytes]",
                &series
            )
        );
        write_csv("fig1.csv", &format!("1{panel}"), "size_bytes", &series);
    }
}
