//! Figure 3: latency vs throughput, n ∈ {3, 5}, Setup 1, 1-byte messages —
//! indirect consensus vs the (faulty) consensus on message identifiers.

use iabc_bench::{format_panel, sel, sweep_throughput, write_csv, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let effort = Effort::full();
    let throughputs = [50.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0];
    let stacks = [
        ("Indirect consensus", sel::indirect(RbKind::EagerN2)),
        ("(Faulty) Consensus", sel::faulty(RbKind::EagerN2)),
    ];

    for (panel, n) in [("a", 3usize), ("b", 5usize)] {
        let series = sweep_throughput(&stacks, n, &net, cost, &throughputs, 1, effort);
        println!(
            "{}",
            format_panel(
                &format!("Figure 3({panel}): n = {n}, size of messages = 1 byte (Setup 1)"),
                "thr [msg/s]",
                &series
            )
        );
        write_csv("fig3.csv", &format!("3{panel}"), "throughput", &series);
    }
}
