//! Figure 4: latency vs payload, n = 5, Setup 1, throughput
//! {10, 100, 400, 800} msg/s — indirect consensus vs (faulty) consensus on
//! message identifiers.

use iabc_bench::{format_panel, sel, sweep_payload, write_csv, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let effort = Effort::full();
    let payloads = [1usize, 1000, 2000, 3000, 4000, 5000];
    let stacks = [
        ("Indirect consensus", sel::indirect(RbKind::EagerN2)),
        ("(Faulty) consensus", sel::faulty(RbKind::EagerN2)),
    ];

    for (panel, thr) in [("a", 10.0), ("b", 100.0), ("c", 400.0), ("d", 800.0)] {
        // The paper plots Figure 4(d) only up to ~2 KB (the system
        // saturates beyond); mirror that.
        let sizes: Vec<usize> =
            if thr >= 800.0 { vec![1, 500, 1000, 1500, 2000] } else { payloads.to_vec() };
        let series = sweep_payload(&stacks, 5, &net, cost, thr, &sizes, effort);
        println!(
            "{}",
            format_panel(
                &format!("Figure 4({panel}): n = 5, Throughput = {thr} msgs/s (Setup 1)"),
                "size [bytes]",
                &series
            )
        );
        write_csv("fig4.csv", &format!("4{panel}"), "size_bytes", &series);
    }
}
