//! Figure 6: latency vs payload, n = 3, Setup 2, reliable broadcast in
//! O(n) messages — indirect consensus + RB vs consensus on ids + URB.

use iabc_bench::{format_panel, sel, sweep_payload, write_csv, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup2();
    let cost = CostModel::setup2();
    let effort = Effort::full();
    let payloads = [1usize, 500, 1000, 1500, 2000, 2500];
    let stacks = [
        ("Indirect consensus w/ rbcast", sel::indirect(RbKind::LazyN)),
        ("Consensus w/ uniform rbcast", sel::urb()),
    ];

    for (panel, thr) in [("a", 500.0), ("b", 1500.0), ("c", 2000.0)] {
        let series = sweep_payload(&stacks, 3, &net, cost, thr, &payloads, effort);
        println!(
            "{}",
            format_panel(
                &format!(
                    "Figure 6({panel}): n = 3, Throughput = {thr} msgs/s, RB in O(n) (Setup 2)"
                ),
                "size [bytes]",
                &series
            )
        );
        write_csv("fig6.csv", &format!("6{panel}"), "size_bytes", &series);
    }
}
