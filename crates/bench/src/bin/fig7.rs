//! Figure 7: latency vs throughput, n = 3, Setup 2, 1-byte messages —
//! indirect consensus + RB (O(n²) in panel a, O(n) in panel b) vs
//! consensus on ids + URB.

use iabc_bench::{format_panel, sel, sweep_throughput, write_csv, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup2();
    let cost = CostModel::setup2();
    let effort = Effort::full();
    let throughputs = [500.0, 750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0];

    for (panel, rb, label) in [
        ("a", RbKind::EagerN2, "Reliable broadcast in O(n^2) messages"),
        ("b", RbKind::LazyN, "Reliable broadcast in O(n) messages"),
    ] {
        let stacks = [
            (label, sel::indirect(rb)),
            ("Consensus w/ uniform rbcast", sel::urb()),
        ];
        let series = sweep_throughput(&stacks, 3, &net, cost, &throughputs, 1, effort);
        println!(
            "{}",
            format_panel(
                &format!("Figure 7({panel}): n = 3, size = 1 byte, RB {} (Setup 2)", match rb {
                    RbKind::EagerN2 => "O(n^2)",
                    RbKind::LazyN => "O(n)",
                }),
                "thr [msg/s]",
                &series
            )
        );
        write_csv("fig7.csv", &format!("7{panel}"), "throughput", &series);
    }
}
