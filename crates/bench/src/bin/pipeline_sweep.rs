//! Sweeps the two throughput knobs this repo adds on top of the paper —
//! the consensus pipeline window `W` and the client batch size `B` — and
//! records delivered-payloads/second (goodput) for every grid point.
//!
//! The paper's figures all run `W = 1, B = 1` (Algorithm 1 verbatim, one
//! broadcast per payload); this sweep opens the throughput axis the paper
//! never measured. Output: a text table on stdout and machine-readable
//! JSON in `results/BENCH_pipeline_sweep.json` so CI can track the perf
//! trajectory over time.
//!
//! Run with `--smoke` for the scaled-down CI grid.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use iabc_core::{ConsensusFamily, CostModel, RbKind, VariantKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;
use iabc_workload::{run_variant, WorkloadSpec};

/// One measured grid point.
struct SweepPoint {
    window: usize,
    batch: usize,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    mean_ms: f64,
    missing_pairs: u64,
    saturated: bool,
}

fn measure_point(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    window: usize,
    batch: usize,
) -> SweepPoint {
    let mut spec = WorkloadSpec::new(n, offered, payload, duration).with_pipeline(window, batch);
    spec.warmup = Duration::from_millis(400);
    spec.drain = Duration::from_secs(3);
    let r = run_variant(
        VariantKind::Indirect,
        ConsensusFamily::Ct,
        RbKind::EagerN2,
        &NetworkParams::setup1(),
        CostModel::setup1(),
        &spec,
    );
    SweepPoint {
        window,
        batch,
        offered_per_sec: offered,
        delivered_per_sec: r.goodput_per_sec(n),
        mean_ms: r.mean_ms(),
        missing_pairs: r.missing_pairs,
        saturated: r.saturated,
    }
}

fn write_json(path: &Path, n: usize, payload: usize, points: &[SweepPoint]) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pipeline_sweep\",");
    let _ = writeln!(out, "  \"stack\": \"indirect-ct\",");
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"payload_bytes\": {payload},");
    let _ = writeln!(out, "  \"network\": \"setup1\",");
    let _ = writeln!(out, "  \"cost_model\": \"setup1\",");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"window\": {}, \"batch\": {}, \"offered_per_sec\": {:.1}, \
             \"delivered_per_sec\": {:.1}, \"mean_ms\": {:.3}, \"missing_pairs\": {}, \
             \"saturated\": {}}}{comma}",
            p.window, p.batch, p.offered_per_sec, p.delivered_per_sec, p.mean_ms,
            p.missing_pairs, p.saturated,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write sweep json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 3;
    let payload = 64;
    // Offered load chosen just past the saturation knee of the
    // un-pipelined, un-batched stack under the Setup-1 cost model
    // (capacity ≈ 3000 payloads/s; beyond it the per-id rcv() cost of the
    // ever-growing proposals wedges the CPU): the W×B grid then shows how
    // much of that load each configuration actually sustains.
    let offered = 4_000.0;
    // The window must exceed the saturated baseline's multi-second latency
    // or its in-window goodput degenerates to zero; smoke mode therefore
    // shrinks the grid to the corners, not the measurement window.
    let duration = Duration::from_secs(2);
    let (windows, batches): (&[usize], &[usize]) =
        if smoke { (&[1, 8], &[1, 16]) } else { (&[1, 2, 4, 8], &[1, 4, 16]) };

    println!("pipeline_sweep: indirect-CT, n={n}, {offered} payloads/s offered, {payload} B");
    println!(
        "{:>8} {:>6} | {:>14} {:>10} {:>10} {:>6}",
        "window", "batch", "delivered/s", "mean[ms]", "missing", "sat"
    );
    let mut points = Vec::new();
    for &w in windows {
        for &b in batches {
            let p = measure_point(n, offered, payload, duration, w, b);
            println!(
                "{:>8} {:>6} | {:>14.1} {:>10.3} {:>10} {:>6}",
                p.window,
                p.batch,
                p.delivered_per_sec,
                p.mean_ms,
                p.missing_pairs,
                if p.saturated { "*" } else { "" }
            );
            points.push(p);
        }
    }

    let baseline = points
        .iter()
        .find(|p| p.window == 1 && p.batch == 1)
        .expect("grid contains W=1,B=1");
    let best_w = *windows.last().expect("non-empty");
    let best_b = *batches.last().expect("non-empty");
    let pipelined = points
        .iter()
        .find(|p| p.window == best_w && p.batch == best_b)
        .expect("grid contains the max point");
    let speedup = pipelined.delivered_per_sec / baseline.delivered_per_sec.max(1e-9);
    println!(
        "\nW={best_w},B={best_b} delivers {speedup:.2}x the goodput of W=1,B=1 \
         ({:.0}/s vs {:.0}/s)",
        pipelined.delivered_per_sec, baseline.delivered_per_sec
    );

    write_json(Path::new("results/BENCH_pipeline_sweep.json"), n, payload, &points);
    println!("wrote results/BENCH_pipeline_sweep.json");

    assert!(
        speedup >= 2.0,
        "pipelining+batching must at least double saturated goodput, got {speedup:.2}x"
    );
}
