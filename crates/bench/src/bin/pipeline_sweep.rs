//! Sweeps the throughput knobs this repo adds on top of the paper — the
//! consensus pipeline window `W` (static and adaptive) and the client
//! batch size `B` — and records delivered-payloads/second (goodput) for
//! every grid point.
//!
//! The paper's figures all run `W = 1, B = 1` (Algorithm 1 verbatim, one
//! broadcast per payload); this sweep opens the throughput axis the paper
//! never measured. Besides the static `W × B` grid it measures one
//! `adaptive` row per batch size: the AIMD window controller bounded by
//! `[1, 16]` paired with a server-side proposal cap, which must dominate
//! every static `W` at the saturation knee — adapting in-flight work to
//! what the pipeline absorbs is exactly the Ring Paxos observation.
//!
//! Output: a text table on stdout and machine-readable JSON in
//! `results/BENCH_pipeline_sweep.json`. CI diffs that JSON against the
//! committed baseline with the `bench_trend` binary, so every grid point
//! pins its RNG seed (`iabc_workload::CI_SMOKE_SEED`, threaded through
//! `iabc_bench::pipeline_sweep_spec`).
//!
//! Run with `--smoke` for the scaled-down CI grid.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use iabc_bench::{pipeline_adaptive_batch_spec, pipeline_sweep_spec};
use iabc_core::{ConsensusFamily, CostModel, RbKind, VariantKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;
use iabc_workload::run_variant;

/// Window bounds of the adaptive rows.
const ADAPTIVE_W_MIN: usize = 1;
const ADAPTIVE_W_MAX: usize = 16;
/// Proposal cap of the adaptive rows: bounds the per-message `rcv()` cost
/// so a backlog cannot wedge the CPU with ever-growing proposals, while
/// staying large enough that per-instance fixed costs amortize (the grid
/// collapses fast below a few hundred ids per proposal at this load).
const ADAPTIVE_PROPOSAL_CAP: usize = 512;

/// Batch bound of the adaptive-batch row: the static grid's own `B` axis
/// ceiling, so the coalescer's headroom equals the best fixed batch.
const ADAPTIVE_BATCH_MAX: usize = 16;

/// One measured grid point.
struct SweepPoint {
    /// `"static"`, `"adaptive"` (window) or `"adaptive_batch"` (window +
    /// client-batch coalescer).
    mode: &'static str,
    /// Static `W`, or `w_max` for adaptive rows.
    window: usize,
    /// `w_min` (equals `window` for static rows).
    w_min: usize,
    batch: usize,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    mean_ms: f64,
    missing_pairs: u64,
    saturated: bool,
    /// Process 0's window when the run ended.
    final_window: usize,
    /// Proposals truncated by the cap, summed over all processes.
    cap_hits: u64,
    /// Process 0's client batch when the run ended (1 for fixed `B = 1`
    /// rows; the coalescer's landing point for the adaptive-batch row).
    final_batch: usize,
}

fn run_point(
    mode: &'static str,
    n: usize,
    offered: f64,
    window: usize,
    w_min: usize,
    batch: usize,
    spec: &iabc_workload::WorkloadSpec,
) -> SweepPoint {
    let r = run_variant(
        VariantKind::Indirect,
        ConsensusFamily::Ct,
        RbKind::EagerN2,
        &NetworkParams::setup1(),
        CostModel::setup1(),
        spec,
    );
    SweepPoint {
        mode,
        window,
        w_min,
        batch,
        offered_per_sec: offered,
        delivered_per_sec: r.goodput_per_sec(n),
        mean_ms: r.mean_ms(),
        missing_pairs: r.missing_pairs,
        saturated: r.saturated,
        final_window: r.final_window,
        cap_hits: r.proposal_cap_hits,
        final_batch: r.final_batch,
    }
}

fn measure_point(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    window: Option<usize>, // None = adaptive
    batch: usize,
) -> SweepPoint {
    let mut spec = pipeline_sweep_spec(n, offered, payload, duration, window.unwrap_or(1), batch);
    if window.is_none() {
        spec = spec
            .with_adaptive_window(ADAPTIVE_W_MIN, ADAPTIVE_W_MAX)
            .with_proposal_cap(ADAPTIVE_PROPOSAL_CAP);
    }
    run_point(
        if window.is_some() { "static" } else { "adaptive" },
        n,
        offered,
        window.unwrap_or(ADAPTIVE_W_MAX),
        window.unwrap_or(ADAPTIVE_W_MIN),
        batch,
        &spec,
    )
}

/// The adaptive-batch row: the adaptive-window row with the fixed client
/// batch replaced by the backlog-driven coalescer in
/// `[1, ADAPTIVE_BATCH_MAX]`. Its `batch` column records the *bound*.
fn measure_adaptive_batch(n: usize, offered: f64, payload: usize, duration: Duration) -> SweepPoint {
    let spec = pipeline_adaptive_batch_spec(n, offered, payload, duration, ADAPTIVE_BATCH_MAX);
    run_point(
        "adaptive_batch",
        n,
        offered,
        ADAPTIVE_W_MAX,
        ADAPTIVE_W_MIN,
        ADAPTIVE_BATCH_MAX,
        &spec,
    )
}

fn write_json(path: &Path, n: usize, payload: usize, points: &[SweepPoint]) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pipeline_sweep\",");
    let _ = writeln!(out, "  \"stack\": \"indirect-ct\",");
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"payload_bytes\": {payload},");
    let _ = writeln!(out, "  \"network\": \"setup1\",");
    let _ = writeln!(out, "  \"cost_model\": \"setup1\",");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"window\": {}, \"w_min\": {}, \"batch\": {}, \
             \"offered_per_sec\": {:.1}, \"delivered_per_sec\": {:.1}, \"mean_ms\": {:.3}, \
             \"missing_pairs\": {}, \"saturated\": {}, \"final_window\": {}, \
             \"cap_hits\": {}, \"final_batch\": {}}}{comma}",
            p.mode, p.window, p.w_min, p.batch, p.offered_per_sec, p.delivered_per_sec,
            p.mean_ms, p.missing_pairs, p.saturated, p.final_window, p.cap_hits, p.final_batch,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write sweep json");
}

fn row_label(p: &SweepPoint) -> String {
    match p.mode {
        "adaptive" => format!("adpt {}..{}", p.w_min, p.window),
        "adaptive_batch" => format!("adpt B 1..{}", p.batch),
        _ => p.window.to_string(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 3;
    let payload = 64;
    // Offered load chosen just past the saturation knee of the
    // un-pipelined, un-batched stack under the Setup-1 cost model
    // (capacity ≈ 3000 payloads/s; beyond it the per-id rcv() cost of the
    // ever-growing proposals wedges the CPU): the grid then shows how
    // much of that load each configuration actually sustains.
    let offered = 4_000.0;
    // The window must exceed the saturated baseline's multi-second latency
    // or its in-window goodput degenerates to zero; smoke mode therefore
    // shrinks the grid to the corners, not the measurement window.
    let duration = Duration::from_secs(2);
    let (windows, batches): (&[usize], &[usize]) =
        if smoke { (&[1, 16], &[1, 16]) } else { (&[1, 2, 4, 8, 16], &[1, 4, 16]) };

    println!("pipeline_sweep: indirect-CT, n={n}, {offered} payloads/s offered, {payload} B");
    println!(
        "{:>10} {:>6} | {:>14} {:>10} {:>10} {:>6} {:>7} {:>9}",
        "window", "batch", "delivered/s", "mean[ms]", "missing", "sat", "W_end", "cap_hits"
    );
    let mut points = Vec::new();
    for &b in batches {
        for &w in windows {
            points.push(measure_point(n, offered, payload, duration, Some(w), b));
        }
        // One adaptive row per batch size, measured after the statics so
        // the table reads as "…and here is what the controller does".
        points.push(measure_point(n, offered, payload, duration, None, b));
        if b == 1 {
            // The adaptive-batch row rides with the B = 1 group: it is
            // the answer to exactly that group's collapse, with no fixed
            // `B` at all.
            points.push(measure_adaptive_batch(n, offered, payload, duration));
        }
    }
    for p in &points {
        println!(
            "{:>10} {:>6} | {:>14.1} {:>10.3} {:>10} {:>6} {:>7} {:>9}",
            row_label(p),
            p.batch,
            p.delivered_per_sec,
            p.mean_ms,
            p.missing_pairs,
            if p.saturated { "*" } else { "" },
            p.final_window,
            p.cap_hits,
        );
    }

    let static_at = |w: usize, b: usize| {
        points
            .iter()
            .find(|p| p.mode == "static" && p.window == w && p.batch == b)
            .expect("grid point")
    };
    let adaptive_at = |b: usize| {
        points.iter().find(|p| p.mode == "adaptive" && p.batch == b).expect("adaptive row")
    };

    // Headline 1 (kept from the static sweep): pipelining+batching must at
    // least double the goodput of Algorithm 1 verbatim at this load.
    let baseline = static_at(1, 1);
    let best_w = *windows.last().expect("non-empty");
    let best_b = *batches.last().expect("non-empty");
    let pipelined = static_at(best_w, best_b);
    let speedup = pipelined.delivered_per_sec / baseline.delivered_per_sec.max(1e-9);
    println!(
        "\nW={best_w},B={best_b} delivers {speedup:.2}x the goodput of W=1,B=1 \
         ({:.0}/s vs {:.0}/s)",
        pipelined.delivered_per_sec, baseline.delivered_per_sec
    );

    // Headline 2: at the saturation knee (B = 1, where the paper's
    // workload lives) the adaptive controller must dominate every static
    // window, and beat the largest static window at least 2x — a static
    // W=16 multiplies in-flight rcv() bookkeeping on a wedged CPU, the
    // adaptive controller backs off instead.
    let adaptive = adaptive_at(1);
    let best_static_b1 = windows
        .iter()
        .map(|&w| static_at(w, 1))
        .max_by(|a, b| a.delivered_per_sec.total_cmp(&b.delivered_per_sec))
        .expect("non-empty");
    let wide_static = static_at(best_w, 1);
    println!(
        "adaptive(B=1) delivers {:.0}/s vs best static W={} at {:.0}/s \
         and static W={best_w} at {:.0}/s (final W {}, {} capped proposals)",
        adaptive.delivered_per_sec,
        best_static_b1.window,
        best_static_b1.delivered_per_sec,
        wide_static.delivered_per_sec,
        adaptive.final_window,
        adaptive.cap_hits,
    );

    // Headline 3: the adaptive batch must close at least half the goodput
    // gap between the fixed-B=1 adaptive row and the B=16 ceiling — the
    // ROADMAP "adaptive client batching" target — without any per-run B.
    let adaptive_batch =
        points.iter().find(|p| p.mode == "adaptive_batch").expect("adaptive-batch row");
    let ceiling = static_at(1, 16);
    let gap_target =
        adaptive.delivered_per_sec + 0.5 * (ceiling.delivered_per_sec - adaptive.delivered_per_sec);
    println!(
        "adaptive batch 1..{ADAPTIVE_BATCH_MAX} delivers {:.0}/s at B=1 offered load \
         (fixed-B=1 adaptive row {:.0}/s, B=16 ceiling {:.0}/s, 50%-gap target {:.0}/s, \
         final batch {})",
        adaptive_batch.delivered_per_sec,
        adaptive.delivered_per_sec,
        ceiling.delivered_per_sec,
        gap_target,
        adaptive_batch.final_batch,
    );

    write_json(Path::new("results/BENCH_pipeline_sweep.json"), n, payload, &points);
    println!("wrote results/BENCH_pipeline_sweep.json");

    assert!(
        speedup >= 2.0,
        "pipelining+batching must at least double saturated goodput, got {speedup:.2}x"
    );
    assert!(
        adaptive.delivered_per_sec >= best_static_b1.delivered_per_sec,
        "adaptive window must dominate every static W at the knee: {:.1}/s < {:.1}/s (W={})",
        adaptive.delivered_per_sec,
        best_static_b1.delivered_per_sec,
        best_static_b1.window,
    );
    assert!(
        adaptive.delivered_per_sec >= 2.0 * wide_static.delivered_per_sec,
        "adaptive window must at least double static W={best_w} at B=1: {:.1}/s vs {:.1}/s",
        adaptive.delivered_per_sec,
        wide_static.delivered_per_sec,
    );
    assert!(
        adaptive_batch.delivered_per_sec >= gap_target,
        "adaptive batch must close >= 50% of the B=1 -> B=16 goodput gap: \
         {:.1}/s < {:.1}/s (adaptive B=1 {:.1}/s, ceiling {:.1}/s)",
        adaptive_batch.delivered_per_sec,
        gap_target,
        adaptive.delivered_per_sec,
        ceiling.delivered_per_sec,
    );
}
