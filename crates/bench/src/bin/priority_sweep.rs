//! Reruns the `B = 1` saturation knee of `pipeline_sweep` with the
//! two-class priority lane off and on, plus the lane-on *large-cap* rows
//! that the proposal freshness gate unlocks.
//!
//! The lane (`WorkloadSpec::with_priority_lane`) gives consensus and
//! failure-detector frames their own service class on every simulated CPU
//! and NIC: they are served ahead of the queued RB payload flood instead
//! of paying the full FIFO ingest queue — ROADMAP's dominant term in the
//! `B = 1` overload collapse. That very overtaking is why the lane
//! historically ran a tight proposal cap (64): a larger oldest-first slice
//! reaches into just-arrived ids whose Data frames the proposal outruns,
//! and each such slice burns a consensus round on nacks. The freshness
//! gate (`with_proposal_freshness`) excludes ids younger than ~one
//! measured flood delay from proposals, so the sweep adds two rows at the
//! knee: cap 512 *ungated* (the nack churn, measured) and cap 512 *gated*
//! (which must match or beat the cap-64 row with fewer nacked rounds).
//!
//! Output: a text table on stdout and machine-readable JSON in
//! `results/BENCH_priority_sweep.json` (same line-per-point layout as the
//! pipeline sweep, so `bench_trend` gates it against the committed
//! baseline). Run with `--smoke` for the scaled-down CI grid — a subset of
//! the full grid, so every smoke row matches a committed baseline row.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use iabc_bench::{priority_large_cap_spec, priority_sweep_spec};
use iabc_core::{ConsensusFamily, CostModel, RbKind, VariantKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;
use iabc_workload::{run_variant, WorkloadSpec};

/// The opened-up proposal cap of the large-cap rows (vs the lane's
/// historical 64).
const LARGE_CAP: usize = 512;

/// One measured grid point.
struct LanePoint {
    /// `"lane_off"`, `"lane_on"`, `"lane_on_cap512"` or
    /// `"lane_on_fresh512"`.
    mode: &'static str,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    mean_ms: f64,
    decision_ms: f64,
    missing_pairs: u64,
    saturated: bool,
    final_window: usize,
    cap_hits: u64,
    nacked_rounds: u64,
    freshness_held: u64,
}

fn measure_spec(mode: &'static str, offered: f64, n: usize, spec: &WorkloadSpec) -> LanePoint {
    let r = run_variant(
        VariantKind::Indirect,
        ConsensusFamily::Ct,
        RbKind::EagerN2,
        &NetworkParams::setup1(),
        CostModel::setup1(),
        spec,
    );
    LanePoint {
        mode,
        offered_per_sec: offered,
        delivered_per_sec: r.goodput_per_sec(n),
        mean_ms: r.mean_ms(),
        decision_ms: r.mean_decision_latency_ms,
        missing_pairs: r.missing_pairs,
        saturated: r.saturated,
        final_window: r.final_window,
        cap_hits: r.proposal_cap_hits,
        nacked_rounds: r.nacked_rounds,
        freshness_held: r.freshness_held,
    }
}

fn measure_lane(n: usize, offered: f64, payload: usize, duration: Duration, lane: bool) -> LanePoint {
    let spec = priority_sweep_spec(n, offered, payload, duration, lane);
    measure_spec(if lane { "lane_on" } else { "lane_off" }, offered, n, &spec)
}

fn measure_large_cap(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    freshness: bool,
) -> LanePoint {
    let spec = priority_large_cap_spec(n, offered, payload, duration, LARGE_CAP, freshness);
    let mode = if freshness { "lane_on_fresh512" } else { "lane_on_cap512" };
    measure_spec(mode, offered, n, &spec)
}

fn write_json(path: &Path, n: usize, payload: usize, points: &[LanePoint]) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"priority_sweep\",");
    let _ = writeln!(out, "  \"stack\": \"indirect-ct adaptive(1..16), cap 64 / large-cap rows\",");
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"payload_bytes\": {payload},");
    let _ = writeln!(out, "  \"network\": \"setup1\",");
    let _ = writeln!(out, "  \"cost_model\": \"setup1\",");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        // `window`/`batch` keep the bench_trend line format; together with
        // `mode` and `offered_per_sec` they key each row uniquely.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"window\": 16, \"w_min\": 1, \"batch\": 1, \
             \"offered_per_sec\": {:.1}, \"delivered_per_sec\": {:.1}, \"mean_ms\": {:.3}, \
             \"decision_ms\": {:.3}, \"missing_pairs\": {}, \"saturated\": {}, \
             \"final_window\": {}, \"cap_hits\": {}, \"nacked_rounds\": {}, \
             \"freshness_held\": {}}}{comma}",
            p.mode, p.offered_per_sec, p.delivered_per_sec, p.mean_ms, p.decision_ms,
            p.missing_pairs, p.saturated, p.final_window, p.cap_hits, p.nacked_rounds,
            p.freshness_held,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write sweep json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 3;
    let payload = 64;
    let duration = Duration::from_secs(2);
    // The knee point (4000 payloads/s) plus context on both sides; smoke
    // keeps only the knee so the CI grid stays a subset of the baseline.
    let offered_grid: &[f64] =
        if smoke { &[4000.0] } else { &[2000.0, 3000.0, 4000.0, 6000.0] };
    // The load the large-cap rows run at: the knee.
    const KNEE: f64 = 4000.0;

    println!("priority_sweep: indirect-CT adaptive(1..16), n={n}, B=1, {payload} B");
    println!(
        "{:>10} {:>16} | {:>12} {:>10} {:>12} {:>8} {:>5} {:>6} {:>9} {:>7} {:>7}",
        "offered/s", "row", "delivered/s", "mean[ms]", "decision[ms]", "missing", "sat",
        "W_end", "cap_hits", "nacks", "held"
    );
    let mut points = Vec::new();
    for &offered in offered_grid {
        for lane in [false, true] {
            points.push(measure_lane(n, offered, payload, duration, lane));
        }
        if offered == KNEE {
            // The large-cap pair, at the knee only: ungated (the nack
            // churn the tight cap dodged) and freshness-gated (which must
            // make the large cap safe).
            points.push(measure_large_cap(n, offered, payload, duration, false));
            points.push(measure_large_cap(n, offered, payload, duration, true));
        }
    }
    for p in &points {
        println!(
            "{:>10.0} {:>16} | {:>12.1} {:>10.3} {:>12.3} {:>8} {:>5} {:>6} {:>9} {:>7} {:>7}",
            p.offered_per_sec,
            p.mode,
            p.delivered_per_sec,
            p.mean_ms,
            p.decision_ms,
            p.missing_pairs,
            if p.saturated { "*" } else { "" },
            p.final_window,
            p.cap_hits,
            p.nacked_rounds,
            p.freshness_held,
        );
    }

    let at = |mode: &str, offered: f64| {
        points
            .iter()
            .find(|p| p.mode == mode && p.offered_per_sec == offered)
            .expect("grid point")
    };
    let off = at("lane_off", KNEE);
    let on = at("lane_on", KNEE);
    let ungated = at("lane_on_cap512", KNEE);
    let gated = at("lane_on_fresh512", KNEE);
    println!(
        "\nat 4000/s, B=1: lane on delivers {:.1}/s vs {:.1}/s ({:.2}x) and cuts decision \
         latency {:.1} ms -> {:.1} ms ({:.1}x)",
        on.delivered_per_sec,
        off.delivered_per_sec,
        on.delivered_per_sec / off.delivered_per_sec.max(1e-9),
        off.decision_ms,
        on.decision_ms,
        off.decision_ms / on.decision_ms.max(1e-9),
    );
    println!(
        "cap {LARGE_CAP} gated: {:.1}/s, {:.1} ms decision, {} nacked rounds \
         (vs cap 64: {:.1}/s, {:.1} ms, {} nacks; ungated cap {LARGE_CAP}: {:.1}/s, {} nacks)",
        gated.delivered_per_sec,
        gated.decision_ms,
        gated.nacked_rounds,
        on.delivered_per_sec,
        on.decision_ms,
        on.nacked_rounds,
        ungated.delivered_per_sec,
        ungated.nacked_rounds,
    );

    write_json(Path::new("results/BENCH_priority_sweep.json"), n, payload, &points);
    println!("wrote results/BENCH_priority_sweep.json");

    assert!(
        on.decision_ms < off.decision_ms,
        "the priority lane must cut decision latency at the knee: {:.3} ms !< {:.3} ms",
        on.decision_ms,
        off.decision_ms,
    );
    assert!(
        on.delivered_per_sec > off.delivered_per_sec,
        "the priority lane must raise sustained goodput at the knee: {:.1}/s !> {:.1}/s",
        on.delivered_per_sec,
        off.delivered_per_sec,
    );
    // The freshness gate must make the large cap at least as good as the
    // tight one on both axes, with less nack churn than cap 64 needed —
    // the whole point of gating is that big slices stop reaching into
    // mid-flood ids.
    assert!(
        gated.delivered_per_sec >= on.delivered_per_sec,
        "freshness-gated cap {LARGE_CAP} must match or beat cap 64 goodput at the knee: \
         {:.1}/s !>= {:.1}/s",
        gated.delivered_per_sec,
        on.delivered_per_sec,
    );
    assert!(
        gated.decision_ms <= on.decision_ms,
        "freshness-gated cap {LARGE_CAP} must match or beat cap 64 decision latency: \
         {:.3} ms !<= {:.3} ms",
        gated.decision_ms,
        on.decision_ms,
    );
    assert!(
        gated.nacked_rounds < on.nacked_rounds,
        "the gate must burn fewer rounds on nacks than the tight cap: {} !< {}",
        gated.nacked_rounds,
        on.nacked_rounds,
    );
    assert!(
        gated.nacked_rounds < ungated.nacked_rounds,
        "the gate must cut the ungated large-cap nack churn: {} !< {}",
        gated.nacked_rounds,
        ungated.nacked_rounds,
    );
}
