//! Prices the decided-log / catch-up machinery on a healthy cluster: the
//! static `W = 8, B = 16` pipeline swept across offered loads with catch-up
//! off (the paper's wire format, byte for byte) and on (every process logs
//! each fully a-delivered instance and piggybacks its decided frontier on
//! existing frames).
//!
//! Recovery itself is exercised by the fault-injecting integration tests
//! (`tests/recovery.rs`, `tests/real_runtimes.rs`); what a *benchmark* can
//! pin down is the failure-free overhead — the cost every deployment pays
//! all the time for the ability to catch up after a crash. That cost must
//! stay negligible: the `catch_up_on` rows must deliver everything the off
//! rows do, at goodput within a few percent, with the start-up frontier
//! probe as the only catch-up traffic of the whole run.
//!
//! A final row pair prices the fsync policy itself: wall-clock appends/s
//! of a real `DurableDecidedLog` with `sync_every` off (the default:
//! page-cache durability) versus `sync_every(8)` (bounded power-loss
//! window). Those rows are machine-dependent and are therefore emitted
//! without the trend-gated keys, so `bench_trend` reports but never
//! gates them.
//!
//! Output: a text table on stdout and machine-readable JSON in
//! `results/BENCH_recovery_sweep.json` (same line-per-point layout as the
//! other sweeps, so `bench_trend` gates it against the committed baseline).
//! Run with `--smoke` for the scaled-down CI grid — a subset of the full
//! grid, so every smoke row matches a committed baseline row.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use iabc_bench::recovery_sweep_spec;
use iabc_core::stacks::{self, StackParams};
use iabc_core::{
    AbcastCommand, AbcastEvent, ConsensusFamily, CostModel, DecidedEntry, DecidedLog,
    DurableDecidedLog, RbKind, VariantKind,
};
use iabc_net::{NetFaultPlan, TcpCluster};
use iabc_sim::NetworkParams;
use iabc_types::{AppMessage, Duration, IdSet, MsgId, Payload, ProcessId, Time};
use iabc_workload::run_variant;

/// The static pipeline the sweep runs (mid-grid, below the B=1 knee).
const WINDOW: usize = 8;
const BATCH: usize = 16;

/// One measured grid point.
struct RecoveryPoint {
    /// `"catch_up_off"` or `"catch_up_on"`.
    mode: &'static str,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    mean_ms: f64,
    missing_pairs: u64,
    saturated: bool,
    catch_up_requests: u64,
    caught_up_entries: u64,
    min_decided_frontier: u64,
}

fn measure(n: usize, offered: f64, payload: usize, duration: Duration, on: bool) -> RecoveryPoint {
    let spec = recovery_sweep_spec(n, offered, payload, duration, on);
    let r = run_variant(
        VariantKind::Indirect,
        ConsensusFamily::Ct,
        RbKind::EagerN2,
        &NetworkParams::setup1(),
        CostModel::setup1(),
        &spec,
    );
    RecoveryPoint {
        mode: if on { "catch_up_on" } else { "catch_up_off" },
        offered_per_sec: offered,
        delivered_per_sec: r.goodput_per_sec(n),
        mean_ms: r.mean_ms(),
        missing_pairs: r.missing_pairs,
        saturated: r.saturated,
        catch_up_requests: r.catch_up_requests,
        caught_up_entries: r.caught_up_entries,
        min_decided_frontier: r.min_decided_frontier,
    }
}

/// Wall-clock append throughput of the durable decided log under one
/// fsync policy — the disk-side price tag of recoverability, measured
/// directly rather than through the simulated cluster.
struct DurableRow {
    /// `"durable_append_sync_off"` or `"durable_append_sync_every_8"`.
    mode: &'static str,
    appends: u64,
    appends_per_sec: f64,
}

/// Appends real records to a real `DurableDecidedLog` on a temp file,
/// once with fsync off (the default) and once with `sync_every(8)`, and
/// reports wall-clock appends/s for each. Entries mirror what a healthy
/// 64 B-payload run logs: one ordered message per instance.
fn measure_durable_appends(smoke: bool) -> Vec<DurableRow> {
    let appends: u64 = if smoke { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for (mode, every) in [("durable_append_sync_off", 0u64), ("durable_append_sync_every_8", 8)] {
        let mut path = std::env::temp_dir();
        path.push(format!("iabc-recovery-sweep-{mode}-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        let mut log =
            DurableDecidedLog::<IdSet>::open(&path).expect("open durable log").sync_every(every);
        let t0 = Instant::now();
        for k in 1..=appends {
            let id = MsgId::new(ProcessId::new(0), k);
            let entry = DecidedEntry {
                k,
                value: IdSet::from_ids([id]),
                payloads: vec![AppMessage::new(id, Payload::zeroed(64), Time::ZERO)],
            };
            assert!(log.append(entry), "contiguous appends must be accepted");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(log.io_error().is_none(), "durable appends must not error ({mode})");
        drop(log);
        let _ = fs::remove_file(&path);
        rows.push(DurableRow { mode, appends, appends_per_sec: appends as f64 / elapsed });
    }
    rows
}

/// Wall-clock goodput of the real TCP transport with the fault layer in
/// one of three states — absent, armed-but-idle, or actively severing
/// and healing a partition. Like the durable-append rows these are
/// machine-dependent, so they are emitted without the trend-gated keys.
struct TcpRow {
    /// `"tcp_faults_off"`, `"tcp_faults_armed_idle"` or
    /// `"tcp_partition_heal"`.
    mode: &'static str,
    msgs: u64,
    delivered: u64,
    wall_goodput_per_sec: f64,
    links_severed: u64,
    reconnects: u64,
}

/// Drives a rate-paced broadcast workload through a 5-process
/// [`TcpCluster`] under the given fault plan and reports wall-clock
/// delivery goodput plus the fault-layer counters.
fn measure_tcp(mode: &'static str, plan: Option<NetFaultPlan>, smoke: bool) -> TcpRow {
    let n = 5usize;
    let msgs: u64 = if smoke { 40 } else { 150 };
    let params = StackParams::with_heartbeat(
        n,
        Duration::from_millis(25),
        Duration::from_millis(2_000),
    )
    .with_catch_up(true);
    let mut cluster =
        TcpCluster::start_with_faults(n, plan, |p| stacks::indirect_ct(p, &params));
    let t0 = Instant::now();
    for i in 0..msgs {
        // Bounded by n = 5.
        cluster.send_command(
            ProcessId::new((i % n as u64) as u16),
            AbcastCommand::Broadcast(Payload::zeroed(64)),
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // Each broadcast yields one Broadcast event plus n Delivered events.
    let outputs = cluster.wait_for_outputs(
        msgs as usize * (n + 1),
        std::time::Duration::from_secs(30),
    );
    let wall = t0.elapsed().as_secs_f64();
    let mut reports = cluster.fault_reports();
    // Delivery can complete while a single-link partition window is still
    // open (the quorum routes around it), so give the heal loop a moment
    // to re-establish any severed links before we tear the cluster down —
    // the reconnect counter is part of the row.
    let grace = Instant::now();
    while reports.iter().map(|r| r.links_severed).sum::<u64>() > 0
        && reports.iter().map(|r| r.reconnects).sum::<u64>() == 0
        && grace.elapsed() < std::time::Duration::from_secs(5)
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
        reports = cluster.fault_reports();
    }
    cluster.shutdown();
    let delivered = outputs
        .iter()
        .filter(|o| matches!(o.output, AbcastEvent::Delivered { .. }))
        .count() as u64;
    TcpRow {
        mode,
        msgs,
        delivered,
        wall_goodput_per_sec: delivered as f64 / wall.max(1e-9),
        links_severed: reports.iter().map(|r| r.links_severed).sum(),
        reconnects: reports.iter().map(|r| r.reconnects).sum(),
    }
}

/// The three TCP rows: fault layer off, armed over a window that never
/// opens (prices the always-on cost of *having* the nemesis shim in the
/// frame path), and an actual partition-heal cycle mid-run.
fn measure_tcp_rows(smoke: bool) -> Vec<TcpRow> {
    let ms = |v: u64| Duration::from_millis(v);
    let p = ProcessId::new;
    // Armed-idle: a real window, parked an hour past any run horizon.
    let idle_plan = NetFaultPlan::new(1).partition(p(0), p(1), ms(3_600_000), ms(3_601_000));
    // A mid-run severance that heals well before the workload ends.
    let heal_to = if smoke { 350 } else { 450 };
    let heal_plan = NetFaultPlan::new(2).partition(p(0), p(1), ms(100), ms(heal_to));
    vec![
        measure_tcp("tcp_faults_off", None, smoke),
        measure_tcp("tcp_faults_armed_idle", Some(idle_plan), smoke),
        measure_tcp("tcp_partition_heal", Some(heal_plan), smoke),
    ]
}

fn write_json(
    path: &Path,
    n: usize,
    payload: usize,
    points: &[RecoveryPoint],
    durable: &[DurableRow],
    tcp: &[TcpRow],
) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"recovery_sweep\",");
    let _ = writeln!(out, "  \"stack\": \"indirect-ct static W={WINDOW} B={BATCH}\",");
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"payload_bytes\": {payload},");
    let _ = writeln!(out, "  \"network\": \"setup1\",");
    let _ = writeln!(out, "  \"cost_model\": \"setup1\",");
    let _ = writeln!(out, "  \"points\": [");
    for p in points {
        // `window`/`batch` keep the bench_trend line format; together with
        // `mode` and `offered_per_sec` they key each row uniquely.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"window\": {WINDOW}, \"batch\": {BATCH}, \
             \"offered_per_sec\": {:.1}, \"delivered_per_sec\": {:.1}, \"mean_ms\": {:.3}, \
             \"missing_pairs\": {}, \"saturated\": {}, \"catch_up_requests\": {}, \
             \"caught_up_entries\": {}, \"min_decided_frontier\": {}}},",
            p.mode, p.offered_per_sec, p.delivered_per_sec, p.mean_ms, p.missing_pairs,
            p.saturated, p.catch_up_requests, p.caught_up_entries, p.min_decided_frontier,
        );
    }
    for d in durable {
        // Wall-clock fsync throughput is machine-dependent, so these rows
        // deliberately omit `delivered_per_sec` (and `window`/`batch`) —
        // the bench_trend parser skips them instead of gating them.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"appends\": {}, \"appends_per_sec\": {:.1}}},",
            d.mode, d.appends, d.appends_per_sec,
        );
    }
    for (i, t) in tcp.iter().enumerate() {
        let comma = if i + 1 == tcp.len() { "" } else { "," };
        // Wall-clock TCP goodput: machine-dependent, ungated like the
        // durable rows above.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"msgs\": {}, \"tcp_delivered\": {}, \
             \"wall_goodput_per_sec\": {:.1}, \"links_severed\": {}, \"reconnects\": {}}}{comma}",
            t.mode, t.msgs, t.delivered, t.wall_goodput_per_sec, t.links_severed, t.reconnects,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write sweep json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 3;
    let payload = 64;
    let duration = Duration::from_secs(2);
    // Light, medium and heavy (but unsaturated) load; smoke keeps the
    // medium point so the CI grid stays a subset of the baseline.
    let offered_grid: &[f64] = if smoke { &[2000.0] } else { &[1000.0, 2000.0, 4000.0] };

    println!("recovery_sweep: indirect-CT static W={WINDOW} B={BATCH}, n={n}, {payload} B");
    println!(
        "{:>10} {:>13} | {:>12} {:>10} {:>8} {:>5} {:>9} {:>9} {:>9}",
        "offered/s", "row", "delivered/s", "mean[ms]", "missing", "sat", "cu_reqs", "cu_entries",
        "min_front"
    );
    let mut points = Vec::new();
    for &offered in offered_grid {
        for on in [false, true] {
            points.push(measure(n, offered, payload, duration, on));
        }
    }
    for p in &points {
        println!(
            "{:>10.0} {:>13} | {:>12.1} {:>10.3} {:>8} {:>5} {:>9} {:>9} {:>9}",
            p.offered_per_sec,
            p.mode,
            p.delivered_per_sec,
            p.mean_ms,
            p.missing_pairs,
            if p.saturated { "*" } else { "" },
            p.catch_up_requests,
            p.caught_up_entries,
            p.min_decided_frontier,
        );
    }

    for &offered in offered_grid {
        let at = |mode: &str| {
            points
                .iter()
                .find(|p| p.mode == mode && p.offered_per_sec == offered)
                .expect("grid point")
        };
        let off = at("catch_up_off");
        let on = at("catch_up_on");
        println!(
            "\nat {offered:.0}/s: catch-up costs {:+.1}% goodput, {:+.3} ms mean latency \
             (frontier {} instances, {} entries over {} start-up probes)",
            (on.delivered_per_sec / off.delivered_per_sec.max(1e-9) - 1.0) * 100.0,
            on.mean_ms - off.mean_ms,
            on.min_decided_frontier,
            on.caught_up_entries,
            on.catch_up_requests,
        );
    }

    let durable = measure_durable_appends(smoke);
    for d in &durable {
        println!("{:>27}: {:>10.0} appends/s ({} appends)", d.mode, d.appends_per_sec, d.appends);
    }
    let off = durable.iter().find(|d| d.mode == "durable_append_sync_off").expect("sync-off row");
    let on = durable.iter().find(|d| d.mode != "durable_append_sync_off").expect("sync-on row");
    println!(
        "sync_every(8) keeps {:.0}% of unsynced append throughput",
        on.appends_per_sec / off.appends_per_sec.max(1e-9) * 100.0,
    );
    assert!(
        off.appends_per_sec > 0.0 && on.appends_per_sec > 0.0,
        "durable append rows must measure something",
    );

    let tcp = measure_tcp_rows(smoke);
    for t in &tcp {
        println!(
            "{:>27}: {:>8.0} delivered/s wall ({}/{} msgs, severed {}, reconnects {})",
            t.mode,
            t.wall_goodput_per_sec,
            t.delivered,
            t.msgs * 5,
            t.links_severed,
            t.reconnects,
        );
    }
    let tcp_at = |mode: &str| tcp.iter().find(|t| t.mode == mode).expect("tcp row");
    let tcp_off = tcp_at("tcp_faults_off");
    let tcp_idle = tcp_at("tcp_faults_armed_idle");
    let tcp_heal = tcp_at("tcp_partition_heal");
    println!(
        "armed-idle fault layer keeps {:.1}% of fault-off TCP goodput",
        tcp_idle.wall_goodput_per_sec / tcp_off.wall_goodput_per_sec.max(1e-9) * 100.0,
    );
    // ISSUE gate: an armed-but-idle fault plan must cost < 5% goodput.
    assert!(
        tcp_idle.wall_goodput_per_sec >= tcp_off.wall_goodput_per_sec * 0.95,
        "armed-idle fault layer cost exceeds 5% ({:.1}/s vs {:.1}/s)",
        tcp_idle.wall_goodput_per_sec,
        tcp_off.wall_goodput_per_sec,
    );
    // The heal row must have actually exercised a sever/reconnect cycle
    // and still delivered every broadcast everywhere.
    assert!(
        tcp_heal.links_severed >= 1 && tcp_heal.reconnects >= 1,
        "partition-heal row never severed/reconnected",
    );
    for t in &tcp {
        assert_eq!(t.delivered, t.msgs * 5, "{}: incomplete delivery", t.mode);
    }

    write_json(
        Path::new("results/BENCH_recovery_sweep.json"),
        n,
        payload,
        &points,
        &durable,
        &tcp,
    );
    println!("wrote results/BENCH_recovery_sweep.json");

    for &offered in offered_grid {
        let at = |mode: &str| {
            points
                .iter()
                .find(|p| p.mode == mode && p.offered_per_sec == offered)
                .expect("grid point")
        };
        let off = at("catch_up_off");
        let on = at("catch_up_on");
        // The off rows are the paper's protocol: no log, no frontier, and
        // the probe metrics must read exactly zero.
        assert_eq!(
            (off.catch_up_requests, off.caught_up_entries, off.min_decided_frontier),
            (0, 0, 0),
            "catch-up-off rows must not touch the recovery machinery at {offered:.0}/s",
        );
        // The on rows log everything, lose nothing, and never fetch more
        // than the start-up probes (one request per process, answered only
        // if a peer already decided something — a fault-free run has no
        // gaps to repair).
        assert!(
            on.min_decided_frontier > 0,
            "every process must have logged decided instances at {offered:.0}/s",
        );
        assert_eq!(
            on.missing_pairs, off.missing_pairs,
            "catch-up must not change what gets delivered at {offered:.0}/s",
        );
        assert!(
            on.catch_up_requests <= n as u64 && on.caught_up_entries <= n as u64,
            "a fault-free run must see no catch-up traffic past the start-up probes \
             at {offered:.0}/s: {} requests, {} entries",
            on.catch_up_requests,
            on.caught_up_entries,
        );
        // The always-on price of recoverability: within a few percent of
        // the paper's protocol at every unsaturated load.
        if !off.saturated {
            assert!(
                on.delivered_per_sec >= off.delivered_per_sec * 0.95,
                "catch-up bookkeeping must cost < 5% goodput at {offered:.0}/s: \
                 {:.1}/s !>= 0.95 * {:.1}/s",
                on.delivered_per_sec,
                off.delivered_per_sec,
            );
        }
    }
}
