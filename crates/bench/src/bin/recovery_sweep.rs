//! Prices the decided-log / catch-up machinery on a healthy cluster: the
//! static `W = 8, B = 16` pipeline swept across offered loads with catch-up
//! off (the paper's wire format, byte for byte) and on (every process logs
//! each fully a-delivered instance and piggybacks its decided frontier on
//! existing frames).
//!
//! Recovery itself is exercised by the fault-injecting integration tests
//! (`tests/recovery.rs`, `tests/real_runtimes.rs`); what a *benchmark* can
//! pin down is the failure-free overhead — the cost every deployment pays
//! all the time for the ability to catch up after a crash. That cost must
//! stay negligible: the `catch_up_on` rows must deliver everything the off
//! rows do, at goodput within a few percent, with the start-up frontier
//! probe as the only catch-up traffic of the whole run.
//!
//! A final row pair prices the fsync policy itself: wall-clock appends/s
//! of a real `DurableDecidedLog` with `sync_every` off (the default:
//! page-cache durability) versus `sync_every(8)` (bounded power-loss
//! window). Those rows are machine-dependent and are therefore emitted
//! without the trend-gated keys, so `bench_trend` reports but never
//! gates them.
//!
//! Output: a text table on stdout and machine-readable JSON in
//! `results/BENCH_recovery_sweep.json` (same line-per-point layout as the
//! other sweeps, so `bench_trend` gates it against the committed baseline).
//! Run with `--smoke` for the scaled-down CI grid — a subset of the full
//! grid, so every smoke row matches a committed baseline row.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use iabc_bench::recovery_sweep_spec;
use iabc_core::{
    ConsensusFamily, CostModel, DecidedEntry, DecidedLog, DurableDecidedLog, RbKind, VariantKind,
};
use iabc_sim::NetworkParams;
use iabc_types::{AppMessage, Duration, IdSet, MsgId, Payload, ProcessId, Time};
use iabc_workload::run_variant;

/// The static pipeline the sweep runs (mid-grid, below the B=1 knee).
const WINDOW: usize = 8;
const BATCH: usize = 16;

/// One measured grid point.
struct RecoveryPoint {
    /// `"catch_up_off"` or `"catch_up_on"`.
    mode: &'static str,
    offered_per_sec: f64,
    delivered_per_sec: f64,
    mean_ms: f64,
    missing_pairs: u64,
    saturated: bool,
    catch_up_requests: u64,
    caught_up_entries: u64,
    min_decided_frontier: u64,
}

fn measure(n: usize, offered: f64, payload: usize, duration: Duration, on: bool) -> RecoveryPoint {
    let spec = recovery_sweep_spec(n, offered, payload, duration, on);
    let r = run_variant(
        VariantKind::Indirect,
        ConsensusFamily::Ct,
        RbKind::EagerN2,
        &NetworkParams::setup1(),
        CostModel::setup1(),
        &spec,
    );
    RecoveryPoint {
        mode: if on { "catch_up_on" } else { "catch_up_off" },
        offered_per_sec: offered,
        delivered_per_sec: r.goodput_per_sec(n),
        mean_ms: r.mean_ms(),
        missing_pairs: r.missing_pairs,
        saturated: r.saturated,
        catch_up_requests: r.catch_up_requests,
        caught_up_entries: r.caught_up_entries,
        min_decided_frontier: r.min_decided_frontier,
    }
}

/// Wall-clock append throughput of the durable decided log under one
/// fsync policy — the disk-side price tag of recoverability, measured
/// directly rather than through the simulated cluster.
struct DurableRow {
    /// `"durable_append_sync_off"` or `"durable_append_sync_every_8"`.
    mode: &'static str,
    appends: u64,
    appends_per_sec: f64,
}

/// Appends real records to a real `DurableDecidedLog` on a temp file,
/// once with fsync off (the default) and once with `sync_every(8)`, and
/// reports wall-clock appends/s for each. Entries mirror what a healthy
/// 64 B-payload run logs: one ordered message per instance.
fn measure_durable_appends(smoke: bool) -> Vec<DurableRow> {
    let appends: u64 = if smoke { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for (mode, every) in [("durable_append_sync_off", 0u64), ("durable_append_sync_every_8", 8)] {
        let mut path = std::env::temp_dir();
        path.push(format!("iabc-recovery-sweep-{mode}-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        let mut log =
            DurableDecidedLog::<IdSet>::open(&path).expect("open durable log").sync_every(every);
        let t0 = Instant::now();
        for k in 1..=appends {
            let id = MsgId::new(ProcessId::new(0), k);
            let entry = DecidedEntry {
                k,
                value: IdSet::from_ids([id]),
                payloads: vec![AppMessage::new(id, Payload::zeroed(64), Time::ZERO)],
            };
            assert!(log.append(entry), "contiguous appends must be accepted");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(log.io_error().is_none(), "durable appends must not error ({mode})");
        drop(log);
        let _ = fs::remove_file(&path);
        rows.push(DurableRow { mode, appends, appends_per_sec: appends as f64 / elapsed });
    }
    rows
}

fn write_json(path: &Path, n: usize, payload: usize, points: &[RecoveryPoint], durable: &[DurableRow]) {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"recovery_sweep\",");
    let _ = writeln!(out, "  \"stack\": \"indirect-ct static W={WINDOW} B={BATCH}\",");
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"payload_bytes\": {payload},");
    let _ = writeln!(out, "  \"network\": \"setup1\",");
    let _ = writeln!(out, "  \"cost_model\": \"setup1\",");
    let _ = writeln!(out, "  \"points\": [");
    for p in points {
        // `window`/`batch` keep the bench_trend line format; together with
        // `mode` and `offered_per_sec` they key each row uniquely.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"window\": {WINDOW}, \"batch\": {BATCH}, \
             \"offered_per_sec\": {:.1}, \"delivered_per_sec\": {:.1}, \"mean_ms\": {:.3}, \
             \"missing_pairs\": {}, \"saturated\": {}, \"catch_up_requests\": {}, \
             \"caught_up_entries\": {}, \"min_decided_frontier\": {}}},",
            p.mode, p.offered_per_sec, p.delivered_per_sec, p.mean_ms, p.missing_pairs,
            p.saturated, p.catch_up_requests, p.caught_up_entries, p.min_decided_frontier,
        );
    }
    for (i, d) in durable.iter().enumerate() {
        let comma = if i + 1 == durable.len() { "" } else { "," };
        // Wall-clock fsync throughput is machine-dependent, so these rows
        // deliberately omit `delivered_per_sec` (and `window`/`batch`) —
        // the bench_trend parser skips them instead of gating them.
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"appends\": {}, \"appends_per_sec\": {:.1}}}{comma}",
            d.mode, d.appends, d.appends_per_sec,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    fs::create_dir_all(path.parent().expect("results dir")).expect("create results dir");
    fs::write(path, out).expect("write sweep json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 3;
    let payload = 64;
    let duration = Duration::from_secs(2);
    // Light, medium and heavy (but unsaturated) load; smoke keeps the
    // medium point so the CI grid stays a subset of the baseline.
    let offered_grid: &[f64] = if smoke { &[2000.0] } else { &[1000.0, 2000.0, 4000.0] };

    println!("recovery_sweep: indirect-CT static W={WINDOW} B={BATCH}, n={n}, {payload} B");
    println!(
        "{:>10} {:>13} | {:>12} {:>10} {:>8} {:>5} {:>9} {:>9} {:>9}",
        "offered/s", "row", "delivered/s", "mean[ms]", "missing", "sat", "cu_reqs", "cu_entries",
        "min_front"
    );
    let mut points = Vec::new();
    for &offered in offered_grid {
        for on in [false, true] {
            points.push(measure(n, offered, payload, duration, on));
        }
    }
    for p in &points {
        println!(
            "{:>10.0} {:>13} | {:>12.1} {:>10.3} {:>8} {:>5} {:>9} {:>9} {:>9}",
            p.offered_per_sec,
            p.mode,
            p.delivered_per_sec,
            p.mean_ms,
            p.missing_pairs,
            if p.saturated { "*" } else { "" },
            p.catch_up_requests,
            p.caught_up_entries,
            p.min_decided_frontier,
        );
    }

    for &offered in offered_grid {
        let at = |mode: &str| {
            points
                .iter()
                .find(|p| p.mode == mode && p.offered_per_sec == offered)
                .expect("grid point")
        };
        let off = at("catch_up_off");
        let on = at("catch_up_on");
        println!(
            "\nat {offered:.0}/s: catch-up costs {:+.1}% goodput, {:+.3} ms mean latency \
             (frontier {} instances, {} entries over {} start-up probes)",
            (on.delivered_per_sec / off.delivered_per_sec.max(1e-9) - 1.0) * 100.0,
            on.mean_ms - off.mean_ms,
            on.min_decided_frontier,
            on.caught_up_entries,
            on.catch_up_requests,
        );
    }

    let durable = measure_durable_appends(smoke);
    for d in &durable {
        println!("{:>27}: {:>10.0} appends/s ({} appends)", d.mode, d.appends_per_sec, d.appends);
    }
    let off = durable.iter().find(|d| d.mode == "durable_append_sync_off").expect("sync-off row");
    let on = durable.iter().find(|d| d.mode != "durable_append_sync_off").expect("sync-on row");
    println!(
        "sync_every(8) keeps {:.0}% of unsynced append throughput",
        on.appends_per_sec / off.appends_per_sec.max(1e-9) * 100.0,
    );
    assert!(
        off.appends_per_sec > 0.0 && on.appends_per_sec > 0.0,
        "durable append rows must measure something",
    );

    write_json(Path::new("results/BENCH_recovery_sweep.json"), n, payload, &points, &durable);
    println!("wrote results/BENCH_recovery_sweep.json");

    for &offered in offered_grid {
        let at = |mode: &str| {
            points
                .iter()
                .find(|p| p.mode == mode && p.offered_per_sec == offered)
                .expect("grid point")
        };
        let off = at("catch_up_off");
        let on = at("catch_up_on");
        // The off rows are the paper's protocol: no log, no frontier, and
        // the probe metrics must read exactly zero.
        assert_eq!(
            (off.catch_up_requests, off.caught_up_entries, off.min_decided_frontier),
            (0, 0, 0),
            "catch-up-off rows must not touch the recovery machinery at {offered:.0}/s",
        );
        // The on rows log everything, lose nothing, and never fetch more
        // than the start-up probes (one request per process, answered only
        // if a peer already decided something — a fault-free run has no
        // gaps to repair).
        assert!(
            on.min_decided_frontier > 0,
            "every process must have logged decided instances at {offered:.0}/s",
        );
        assert_eq!(
            on.missing_pairs, off.missing_pairs,
            "catch-up must not change what gets delivered at {offered:.0}/s",
        );
        assert!(
            on.catch_up_requests <= n as u64 && on.caught_up_entries <= n as u64,
            "a fault-free run must see no catch-up traffic past the start-up probes \
             at {offered:.0}/s: {} requests, {} entries",
            on.catch_up_requests,
            on.caught_up_entries,
        );
        // The always-on price of recoverability: within a few percent of
        // the paper's protocol at every unsaturated load.
        if !off.saturated {
            assert!(
                on.delivered_per_sec >= off.delivered_per_sec * 0.95,
                "catch-up bookkeeping must cost < 5% goodput at {offered:.0}/s: \
                 {:.1}/s !>= 0.95 * {:.1}/s",
                on.delivered_per_sec,
                off.delivered_per_sec,
            );
        }
    }
}
