//! Regenerates every figure of the paper plus the pipeline sweep in one go
//! (≈ a few minutes in release mode). Equivalent to running fig1…fig7, the
//! ablation and pipeline_sweep sequentially; tables go to stdout, CSVs and
//! `BENCH_*.json` files under `results/`, and a `results/BENCH_run_all.json`
//! summary records per-bin wall time and status so CI can track the perf
//! trajectory over time.

use std::fmt::Write as _;
use std::process::Command;
use std::time::Instant;

fn main() {
    let bins = [
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "ablation_rcv",
        "pipeline_sweep",
        "priority_sweep",
        "recovery_sweep",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory").to_path_buf();
    let mut records = Vec::new();
    for bin in bins {
        println!("\n######## {bin} ########");
        let started = Instant::now();
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let secs = started.elapsed().as_secs_f64();
        records.push((bin, secs, status.success()));
        if !status.success() {
            // Record what ran (including this failure) before bailing.
            break;
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"run_all\",");
    let _ = writeln!(json, "  \"bins\": [");
    for (i, (bin, secs, ok)) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"bin\": \"{bin}\", \"wall_secs\": {secs:.2}, \"ok\": {ok}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_run_all.json", json).expect("write run_all json");

    if let Some((bin, _, _)) = records.iter().find(|(_, _, ok)| !ok) {
        panic!("{bin} failed; partial summary written to results/BENCH_run_all.json");
    }
    println!("\nAll figures regenerated; CSVs and BENCH_*.json under results/.");
}
