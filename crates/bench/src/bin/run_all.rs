//! Regenerates every figure of the paper in one go (≈ a few minutes in
//! release mode). Equivalent to running fig1…fig7 and the ablation
//! sequentially; output goes to stdout and `results/*.csv`.

use std::process::Command;

fn main() {
    let bins = ["fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation_rcv"];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory").to_path_buf();
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll figures regenerated; CSVs under results/.");
}
