//! Extension experiment: scalability in the system size `n`.
//!
//! §2.1 of the paper claims the advantage of indirect consensus grows "as
//! the throughput of atomic broadcasts increases and as the size of the
//! system increases", but only evaluates n ∈ {3, 5}. This harness sweeps
//! n at a fixed moderate load and payload, comparing indirect consensus
//! against consensus on full messages — quantifying the claim the paper
//! only states.

use iabc_bench::{format_panel, sel, Effort, Point, Series};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;

fn main() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let effort = Effort::full();
    let throughput = 100.0;
    let payload = 2000usize;
    let sizes = [3usize, 4, 5, 6, 7];

    let stacks = [
        ("Indirect consensus", sel::indirect(RbKind::EagerN2)),
        ("Consensus on messages", sel::direct_messages(RbKind::EagerN2)),
    ];
    let mut series: Vec<Series> = stacks
        .iter()
        .map(|(label, _)| Series { label: (*label).to_string(), points: Vec::new() })
        .collect();
    for &n in &sizes {
        for (i, (_, sel)) in stacks.iter().enumerate() {
            let mut p: Point =
                iabc_bench::measure(*sel, n, &net, cost, throughput, payload, effort);
            p.x = n as f64;
            series[i].points.push(p);
        }
    }
    println!(
        "{}",
        format_panel(
            &format!(
                "Extension: latency vs system size (Setup 1, {throughput} msg/s, {payload} B)"
            ),
            "n",
            &series
        )
    );
    println!(
        "The gap grows with n: full-message consensus re-ships every payload\n\
         through coordinator fan-ins and decision broadcasts, so its cost rises\n\
         with both n and message size, while indirect consensus only spreads\n\
         identifier sets."
    );
}
