//! The benchmark harness reproducing every figure of the paper.
//!
//! Each figure has a binary (`cargo run --release -p iabc-bench --bin figN`)
//! that sweeps the paper's parameter ranges and prints one table per panel
//! with the same series the paper plots, plus a CSV copy under
//! `results/`. The Criterion benches (`cargo bench`) run scaled-down
//! versions of the same code paths.
//!
//! | Binary | Paper figure | What it sweeps |
//! |--------|--------------|----------------|
//! | `fig1` | Fig. 1 | latency vs payload, n=3, Setup 1: indirect vs consensus-on-messages |
//! | `fig3` | Fig. 3 | latency vs throughput, n∈{3,5}, Setup 1: indirect vs faulty |
//! | `fig4` | Fig. 4 | latency vs payload, n=5, Setup 1: indirect vs faulty |
//! | `fig5` | Fig. 5 | latency vs payload, n=3, Setup 2, RB O(n²): indirect+RB vs URB+consensus |
//! | `fig6` | Fig. 6 | as fig5 with RB O(n) |
//! | `fig7` | Fig. 7 | latency vs throughput, n=3, Setup 2: both RB variants vs URB |
//! | `ablation_rcv` | §4.3 discussion | the indirect-vs-faulty gap as a function of the `rcv()` cost |

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use iabc_core::{ConsensusFamily, CostModel, RbKind, VariantKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;
use iabc_workload::{run_variant, ExperimentResult, WorkloadSpec};

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The swept parameter (payload bytes or throughput msg/s).
    pub x: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub median_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// Whether the run failed to drain ≥ 2% of expected deliveries.
    pub saturated: bool,
}

impl Point {
    fn from_result(x: f64, mut r: ExperimentResult) -> Self {
        Point {
            x,
            mean_ms: r.mean_ms(),
            median_ms: r.latency.median_ms(),
            p95_ms: r.latency.percentile(0.95).as_secs_f64() * 1e3,
            saturated: r.saturated,
        }
    }
}

/// A named series of points (one curve of a panel).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's legend).
    pub label: String,
    /// The measured points.
    pub points: Vec<Point>,
}

/// A stack selection to measure.
#[derive(Debug, Clone, Copy)]
pub struct StackSel {
    /// Variant (indirect / direct / faulty / URB).
    pub variant: VariantKind,
    /// Consensus family.
    pub family: ConsensusFamily,
    /// RB dissemination (ignored by the URB variant).
    pub rb: RbKind,
}

/// Measurement effort knob: the harness sizes run lengths from it.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Target number of messages in the measured window per point.
    pub target_msgs: u64,
    /// Minimum measured window.
    pub min_duration: Duration,
    /// Maximum measured window.
    pub max_duration: Duration,
}

impl Effort {
    /// Full effort: what the figure binaries use.
    pub fn full() -> Self {
        Effort {
            target_msgs: 3000,
            min_duration: Duration::from_secs(2),
            max_duration: Duration::from_secs(20),
        }
    }

    /// Quick effort: what the Criterion benches and smoke tests use.
    pub fn quick() -> Self {
        Effort {
            target_msgs: 300,
            min_duration: Duration::from_millis(800),
            max_duration: Duration::from_secs(4),
        }
    }

    /// The measured window for a given throughput.
    pub fn duration_for(&self, throughput: f64) -> Duration {
        let secs = self.target_msgs as f64 / throughput;
        Duration::from_secs_f64(
            secs.clamp(self.min_duration.as_secs_f64(), self.max_duration.as_secs_f64()),
        )
    }
}

/// Measures one `(stack, throughput, payload)` point on a network.
pub fn measure(
    sel: StackSel,
    n: usize,
    net: &NetworkParams,
    cost: CostModel,
    throughput: f64,
    payload: usize,
    effort: Effort,
) -> Point {
    let mut spec = WorkloadSpec::new(n, throughput, payload, effort.duration_for(throughput));
    spec.warmup = Duration::from_millis(800);
    spec.drain = Duration::from_secs(3);
    let r = run_variant(sel.variant, sel.family, sel.rb, net, cost, &spec);
    Point::from_result(payload as f64, r)
}

/// Sweeps payload sizes for several stacks at a fixed throughput.
pub fn sweep_payload(
    stacks: &[(&str, StackSel)],
    n: usize,
    net: &NetworkParams,
    cost: CostModel,
    throughput: f64,
    payloads: &[usize],
    effort: Effort,
) -> Vec<Series> {
    stacks
        .iter()
        .map(|(label, sel)| Series {
            label: (*label).to_string(),
            points: payloads
                .iter()
                .map(|&size| measure(*sel, n, net, cost, throughput, size, effort))
                .collect(),
        })
        .collect()
}

/// Sweeps throughputs for several stacks at a fixed payload size.
pub fn sweep_throughput(
    stacks: &[(&str, StackSel)],
    n: usize,
    net: &NetworkParams,
    cost: CostModel,
    throughputs: &[f64],
    payload: usize,
    effort: Effort,
) -> Vec<Series> {
    stacks
        .iter()
        .map(|(label, sel)| Series {
            label: (*label).to_string(),
            points: throughputs
                .iter()
                .map(|&thr| {
                    let mut p = measure(*sel, n, net, cost, thr, payload, effort);
                    p.x = thr;
                    p
                })
                .collect(),
        })
        .collect()
}

/// Renders a panel as an aligned text table (mirroring the paper's plot).
pub fn format_panel(title: &str, xlabel: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = write!(out, "{xlabel:>12}");
    for s in series {
        let _ = write!(out, " | {:>28}", s.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>12}", "");
    for _ in series {
        let _ = write!(out, " | {:>10} {:>8} {:>8}", "mean[ms]", "p50", "p95");
    }
    let _ = writeln!(out);
    let rows = series.first().map_or(0, |s| s.points.len());
    for i in 0..rows {
        let _ = write!(out, "{:>12}", series[0].points[i].x);
        for s in series {
            let p = &s.points[i];
            let sat = if p.saturated { "*" } else { " " };
            let _ = write!(
                out,
                " | {:>9.3}{} {:>8.3} {:>8.3}",
                p.mean_ms, sat, p.median_ms, p.p95_ms
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(* = saturated: ≥2% of expected deliveries missing at cutoff)");
    out
}

/// Appends a panel to a CSV file under `results/`.
///
/// # Panics
///
/// Panics if the results directory cannot be created or written.
pub fn write_csv(file: &str, panel: &str, xlabel: &str, series: &[Series]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file);
    let mut body = String::new();
    if !path.exists() {
        let _ = writeln!(body, "panel,series,{xlabel},mean_ms,median_ms,p95_ms,saturated");
    }
    for s in series {
        for p in &s.points {
            let _ = writeln!(
                body,
                "{panel},{},{},{:.4},{:.4},{:.4},{}",
                s.label, p.x, p.mean_ms, p.median_ms, p.p95_ms, p.saturated
            );
        }
    }
    let mut existing = fs::read_to_string(&path).unwrap_or_default();
    existing.push_str(&body);
    fs::write(&path, existing).expect("write results csv");
}

/// The workload spec behind every `pipeline_sweep` grid point — CI smoke
/// rows included — with the RNG seed pinned to
/// [`iabc_workload::CI_SMOKE_SEED`] so that `BENCH_pipeline_sweep.json`
/// artifacts are comparable run-to-run (the bench-trend gate diffs them).
pub fn pipeline_sweep_spec(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    window: usize,
    batch: usize,
) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n, offered, payload, duration)
        .with_pipeline(window, batch)
        .with_seed(iabc_workload::CI_SMOKE_SEED);
    spec.warmup = Duration::from_millis(400);
    spec.drain = Duration::from_secs(3);
    spec
}

/// The workload spec behind every `priority_sweep` grid point: the
/// adaptive AIMD window in `[1, 16]` at batch 1 — the `pipeline_sweep`
/// adaptive row — but with a tighter proposal cap of 64 ids, and the
/// two-class priority lane toggled per row. Seed pinned like every CI
/// smoke artifact.
///
/// The cap is deliberately smaller than the single-class row's 512: with
/// the lane on, ordering decides faster than bulk drains, so the backlog
/// is structurally deeper, and small oldest-first slices keep every
/// proposal cheap to `rcv()`-check *and* composed of ids whose payloads
/// have already flooded — large slices reach into fresh ids whose Data
/// frames the proposal would overtake, burning rounds on nacks. Both
/// lanes run the same cap so the on/off comparison is controlled.
pub fn priority_sweep_spec(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    lane: bool,
) -> WorkloadSpec {
    pipeline_sweep_spec(n, offered, payload, duration, 1, 1)
        .with_adaptive_window(1, 16)
        .with_proposal_cap(64)
        .with_priority_lane(lane)
}

/// The workload spec of the `priority_sweep` *large-cap* rows: the lane-on
/// knee configuration with the proposal cap opened up to `cap` ids and the
/// freshness gate toggled per row.
///
/// This is the pairing the gate exists for: with the lane on, ordering
/// frames overtake the payload flood, so an ungated large cap reaches into
/// just-arrived ids whose Data frames its own proposal outruns — a round
/// burned on nacks per unflooded id slice. Gated, the oldest-first slice
/// only ever names ids at least ~one measured flood delay old, which is
/// what lets the lane keep `cap ≥ 512` instead of the tight 64.
pub fn priority_large_cap_spec(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    cap: usize,
    freshness: bool,
) -> WorkloadSpec {
    priority_sweep_spec(n, offered, payload, duration, true)
        .with_proposal_cap(cap)
        .with_proposal_freshness(freshness)
}

/// The workload spec of the `pipeline_sweep` *adaptive-batch* row: the
/// single-class adaptive row (AIMD window in `[1, 16]`, proposal cap 512)
/// with the fixed client batch replaced by the queue-depth-driven
/// coalescer in `[1, max_batch]`. At the `B = 1` knee the fixed-batch
/// adaptive row collapses to ~3% of offered load while `B = 16` sails
/// through — the coalescer must close that gap without a per-run `B`.
pub fn pipeline_adaptive_batch_spec(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    max_batch: usize,
) -> WorkloadSpec {
    pipeline_sweep_spec(n, offered, payload, duration, 1, 1)
        .with_adaptive_window(1, 16)
        .with_proposal_cap(512)
        .with_adaptive_batch(1, max_batch)
}

/// The workload spec behind every `recovery_sweep` grid point: the static
/// `W = 8, B = 16` pipeline (a healthy mid-grid `pipeline_sweep`
/// configuration, well below the `B = 1` knee) with the decided log and
/// catch-up protocol toggled per row. Seed pinned like every CI smoke
/// artifact.
///
/// With `catch_up` off this is byte-for-byte the paper's protocol; on, every
/// process appends each fully a-delivered instance to an in-memory decided
/// log and piggybacks its frontier on existing frames. A fault-free sweep
/// therefore prices the steady-state bookkeeping alone — the start-up
/// frontier probe is the only catch-up traffic the run should ever see.
pub fn recovery_sweep_spec(
    n: usize,
    offered: f64,
    payload: usize,
    duration: Duration,
    catch_up: bool,
) -> WorkloadSpec {
    pipeline_sweep_spec(n, offered, payload, duration, 8, 16).with_catch_up(catch_up)
}

pub mod trend;

/// The standard stack selections used across figures.
pub mod sel {
    use super::*;

    /// Indirect consensus (CT-based, Algorithm 2) over a given RB.
    pub fn indirect(rb: RbKind) -> StackSel {
        StackSel { variant: VariantKind::Indirect, family: ConsensusFamily::Ct, rb }
    }

    /// Consensus on full messages (classic reduction).
    pub fn direct_messages(rb: RbKind) -> StackSel {
        StackSel { variant: VariantKind::DirectMessages, family: ConsensusFamily::Ct, rb }
    }

    /// The faulty consensus-on-ids baseline.
    pub fn faulty(rb: RbKind) -> StackSel {
        StackSel { variant: VariantKind::FaultyIds, family: ConsensusFamily::Ct, rb }
    }

    /// URB + consensus-on-ids (the other correct solution).
    pub fn urb() -> StackSel {
        StackSel { variant: VariantKind::UrbIds, family: ConsensusFamily::Ct, rb: RbKind::EagerN2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_duration_scales_with_throughput() {
        let e = Effort::full();
        assert!(e.duration_for(100.0) > e.duration_for(2000.0));
        assert!(e.duration_for(1.0) <= e.max_duration);
        assert!(e.duration_for(1e9) >= e.min_duration);
    }

    #[test]
    fn format_panel_contains_series_labels() {
        let series = vec![Series {
            label: "Indirect consensus".into(),
            points: vec![Point {
                x: 100.0,
                mean_ms: 1.5,
                median_ms: 1.4,
                p95_ms: 2.0,
                saturated: false,
            }],
        }];
        let s = format_panel("test", "size", &series);
        assert!(s.contains("Indirect consensus"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn quick_measure_smoke() {
        let p = measure(
            sel::indirect(RbKind::EagerN2),
            3,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            50.0,
            16,
            Effort::quick(),
        );
        assert!(p.mean_ms > 0.0);
        assert!(!p.saturated);
    }
}
