//! Bench-trend comparison: the CI goodput-regression gate.
//!
//! `pipeline_sweep` writes `results/BENCH_pipeline_sweep.json` and
//! `priority_sweep` writes `results/BENCH_priority_sweep.json`, each with
//! one grid point per line. CI snapshots the *committed* copies as
//! baselines, reruns the smoke sweeps, and runs the `bench_trend` binary
//! over each pair of files: any common grid point whose fresh goodput
//! dropped by more than the allowed fraction fails the job. Points are
//! matched by `(mode, window, batch, offered)` — `offered` distinguishes
//! the load axis the priority sweep varies; artifacts that fix it (the
//! pipeline sweep) carry it as a constant on both sides. Baseline rows
//! below [`MIN_COMPARABLE_GOODPUT`] are skipped — those are the
//! deliberately collapsed corners of the grid (e.g. static `W=16, B=1`,
//! or the lane-off rows past the knee) whose tiny residual goodput is
//! chaotic rather than meaningful.
//!
//! The parser is deliberately tiny and format-coupled: it reads the
//! line-per-point layout `write_json` in `pipeline_sweep` emits (and that
//! this crate's tests lock down), not arbitrary JSON.

/// Baseline goodput below which a grid point is not trend-checked.
pub const MIN_COMPARABLE_GOODPUT: f64 = 100.0;

/// Default allowed goodput regression (fraction of baseline).
pub const DEFAULT_MAX_REGRESSION: f64 = 0.20;

/// One grid point of a `BENCH_pipeline_sweep.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// `"static"` or `"adaptive"` (absent in pre-adaptive artifacts, which
    /// parse as `"static"`).
    pub mode: String,
    /// Static window, or `w_max` for adaptive rows.
    pub window: usize,
    /// Client batch size `B`.
    pub batch: usize,
    /// Offered load, payloads/second (0 in artifacts predating the field).
    pub offered_per_sec: f64,
    /// Sustained goodput, payloads/second/process.
    pub delivered_per_sec: f64,
    /// Whether the run failed to drain ≥ 2% of expected deliveries.
    pub saturated: bool,
}

impl TrendPoint {
    /// The identity a point is matched on across artifacts (offered load
    /// is rounded to a whole payload/s — it is a grid constant, not a
    /// measurement).
    pub fn key(&self) -> (String, usize, usize, u64) {
        (self.mode.clone(), self.window, self.batch, self.offered_per_sec.round() as u64)
    }
}

/// Extracts the raw text of `"name": <value>` from a JSON line.
fn raw_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn num_field(line: &str, name: &str) -> Option<f64> {
    raw_field(line, name)?.parse().ok()
}

/// Parses the points array of a `BENCH_pipeline_sweep.json` artifact.
/// Lines that do not carry a complete grid point are ignored, so header
/// fields and the surrounding array syntax need no real JSON parser.
pub fn parse_points(json: &str) -> Vec<TrendPoint> {
    json.lines()
        .filter_map(|line| {
            let window = num_field(line, "window")? as usize;
            let batch = num_field(line, "batch")? as usize;
            let delivered = num_field(line, "delivered_per_sec")?;
            let offered = num_field(line, "offered_per_sec").unwrap_or(0.0);
            let mode = raw_field(line, "mode")
                .map(|m| m.trim_matches('"').to_string())
                .unwrap_or_else(|| "static".to_string());
            let saturated = raw_field(line, "saturated").is_some_and(|s| s == "true");
            Some(TrendPoint {
                mode,
                window,
                batch,
                offered_per_sec: offered,
                delivered_per_sec: delivered,
                saturated,
            })
        })
        .collect()
}

/// The verdict of one baseline/fresh comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Human-readable lines for every point that was compared.
    pub compared: Vec<String>,
    /// One message per regression beyond the allowed fraction.
    pub regressions: Vec<String>,
    /// Fresh points with no matching baseline key. A non-empty list means
    /// the grid drifted from the committed baseline — the caller must
    /// treat it as a failure, or silent key drift would disable the gate
    /// for exactly those rows while CI stays green.
    pub unmatched: Vec<String>,
}

/// Compares a fresh sweep against a baseline. Every fresh point whose
/// `(mode, window, batch)` exists in the baseline with goodput at or above
/// [`MIN_COMPARABLE_GOODPUT`] is checked; a fresh goodput below
/// `baseline × (1 - max_regression)` is a regression. Fresh points absent
/// from the baseline are reported in [`TrendReport::unmatched`].
pub fn compare(
    baseline: &[TrendPoint],
    fresh: &[TrendPoint],
    max_regression: f64,
) -> TrendReport {
    let mut report =
        TrendReport { compared: Vec::new(), regressions: Vec::new(), unmatched: Vec::new() };
    for f in fresh {
        let label = format!(
            "{} W={} B={} offered={}",
            f.mode,
            f.window,
            f.batch,
            f.offered_per_sec.round()
        );
        let Some(b) = baseline.iter().find(|b| b.key() == f.key()) else {
            report.unmatched.push(format!(
                "{label}: no matching baseline point — regenerate the committed baseline \
                 (full `pipeline_sweep` run) when the grid changes"
            ));
            continue;
        };
        if b.delivered_per_sec < MIN_COMPARABLE_GOODPUT {
            report.compared.push(format!(
                "{label}: baseline {:.1}/s below the {MIN_COMPARABLE_GOODPUT:.0}/s floor, skipped",
                b.delivered_per_sec
            ));
            continue;
        }
        let floor = b.delivered_per_sec * (1.0 - max_regression);
        report.compared.push(format!(
            "{label}: baseline {:.1}/s, fresh {:.1}/s (floor {:.1}/s)",
            b.delivered_per_sec, f.delivered_per_sec, floor
        ));
        if f.delivered_per_sec < floor {
            report.regressions.push(format!(
                "{label}: goodput regressed {:.1}% ({:.1}/s -> {:.1}/s, allowed {:.0}%)",
                (1.0 - f.delivered_per_sec / b.delivered_per_sec) * 100.0,
                b.delivered_per_sec,
                f.delivered_per_sec,
                max_regression * 100.0
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(mode: &str, window: usize, batch: usize, delivered: f64) -> TrendPoint {
        point_at(mode, window, batch, 4000.0, delivered)
    }

    fn point_at(
        mode: &str,
        window: usize,
        batch: usize,
        offered: f64,
        delivered: f64,
    ) -> TrendPoint {
        TrendPoint {
            mode: mode.into(),
            window,
            batch,
            offered_per_sec: offered,
            delivered_per_sec: delivered,
            saturated: false,
        }
    }

    #[test]
    fn parses_the_sweep_artifact_format() {
        let json = r#"{
  "bench": "pipeline_sweep",
  "n": 3,
  "points": [
    {"mode": "static", "window": 1, "w_min": 1, "batch": 16, "offered_per_sec": 4000.0, "delivered_per_sec": 3976.0, "mean_ms": 2.377, "missing_pairs": 0, "saturated": false, "final_window": 1, "cap_hits": 0},
    {"mode": "adaptive", "window": 16, "w_min": 1, "batch": 1, "offered_per_sec": 4000.0, "delivered_per_sec": 2500.5, "mean_ms": 90.0, "missing_pairs": 9, "saturated": true, "final_window": 7, "cap_hits": 31}
  ]
}"#;
        let pts = parse_points(json);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], point("static", 1, 16, 3976.0));
        assert!(pts[1].saturated);
        assert_eq!(pts[1].key(), ("adaptive".to_string(), 16, 1, 4000));
    }

    #[test]
    fn pre_adaptive_artifacts_parse_as_static() {
        // The committed baseline from before the adaptive row had no
        // "mode" field; those rows must still match static fresh rows.
        let old = r#"    {"window": 8, "batch": 16, "offered_per_sec": 4000.0, "delivered_per_sec": 3976.0, "mean_ms": 2.618, "missing_pairs": 0, "saturated": false}"#;
        let pts = parse_points(old);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].mode, "static");
    }

    #[test]
    fn priority_sweep_rows_key_on_offered_load() {
        // The priority sweep varies offered load with constant
        // (mode, window, batch): rows at different loads must never
        // cross-match, and same-load rows must.
        let json = r#"
    {"mode": "lane_on", "window": 16, "w_min": 1, "batch": 1, "offered_per_sec": 2000.0, "delivered_per_sec": 688.5, "mean_ms": 1326.521, "decision_ms": 400.488, "missing_pairs": 0, "saturated": false, "final_window": 2, "cap_hits": 282},
    {"mode": "lane_on", "window": 16, "w_min": 1, "batch": 1, "offered_per_sec": 4000.0, "delivered_per_sec": 614.3, "mean_ms": 2420.725, "decision_ms": 445.787, "missing_pairs": 7881, "saturated": true, "final_window": 16, "cap_hits": 531}"#;
        let baseline = parse_points(json);
        assert_eq!(baseline.len(), 2);
        assert_ne!(baseline[0].key(), baseline[1].key());
        // A fresh smoke run carrying only the knee row matches exactly one
        // baseline row and regresses against it alone.
        let fresh = vec![point_at("lane_on", 16, 1, 4000.0, 400.0)];
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.unmatched.is_empty());
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("offered=4000"), "{}", report.regressions[0]);
    }

    #[test]
    fn regression_beyond_threshold_is_flagged() {
        let baseline = vec![point("static", 1, 16, 4000.0), point("adaptive", 16, 1, 2000.0)];
        let ok = vec![point("static", 1, 16, 3500.0), point("adaptive", 16, 1, 1700.0)];
        let report = compare(&baseline, &ok, 0.20);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!(report.unmatched.is_empty());
        assert_eq!(report.compared.len(), 2);

        let bad = vec![point("static", 1, 16, 3100.0)];
        let report = compare(&baseline, &bad, 0.20);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("static W=1 B=16"), "{}", report.regressions[0]);
    }

    #[test]
    fn collapsed_corners_are_skipped_and_unmatched_points_reported() {
        // W=1,B=1 at the knee delivers ~90/s in the baseline: chaotic
        // residual goodput, not a trend signal.
        let baseline = vec![point("static", 1, 1, 91.2)];
        let fresh = vec![
            point("static", 1, 1, 10.0),   // collapsed corner: skipped
            point("static", 4, 4, 2000.0), // not in the baseline: unmatched
        ];
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.regressions.is_empty());
        assert_eq!(report.compared.len(), 1);
        assert!(report.compared[0].contains("skipped"));
        // Key drift must surface instead of silently disabling the gate.
        assert_eq!(report.unmatched.len(), 1);
        assert!(report.unmatched[0].contains("static W=4 B=4"), "{}", report.unmatched[0]);
    }

    #[test]
    fn large_cap_and_adaptive_batch_rows_are_gated_under_their_own_keys() {
        // The freshness-gated large-cap row and the adaptive-batch row are
        // distinct modes: they must never cross-match the rows they are
        // derived from, and a regression on them must fail on its own key.
        let json = r#"
    {"mode": "lane_on", "window": 16, "w_min": 1, "batch": 1, "offered_per_sec": 4000.0, "delivered_per_sec": 485.5, "mean_ms": 2431.872, "decision_ms": 425.466, "missing_pairs": 7303, "saturated": true, "final_window": 16, "cap_hits": 552, "nacked_rounds": 113, "freshness_held": 0},
    {"mode": "lane_on_fresh512", "window": 16, "w_min": 1, "batch": 1, "offered_per_sec": 4000.0, "delivered_per_sec": 807.0, "mean_ms": 2165.524, "decision_ms": 40.328, "missing_pairs": 3960, "saturated": true, "final_window": 3, "cap_hits": 4, "nacked_rounds": 12, "freshness_held": 2067481},
    {"mode": "adaptive_batch", "window": 16, "w_min": 1, "batch": 16, "offered_per_sec": 4000.0, "delivered_per_sec": 3964.2, "mean_ms": 7.233, "missing_pairs": 0, "saturated": false, "final_window": 6, "cap_hits": 0, "final_batch": 14}"#;
        let baseline = parse_points(json);
        assert_eq!(baseline.len(), 3);
        let keys: Vec<_> = baseline.iter().map(TrendPoint::key).collect();
        assert_eq!(keys.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
        // A collapse of the gated row alone is caught against its own key.
        let fresh = vec![
            point_at("lane_on", 16, 1, 4000.0, 485.5),
            point_at("lane_on_fresh512", 16, 1, 4000.0, 100.0),
            point_at("adaptive_batch", 16, 16, 4000.0, 3950.0),
        ];
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.unmatched.is_empty(), "{:?}", report.unmatched);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("lane_on_fresh512"), "{}", report.regressions[0]);
    }

    #[test]
    fn adaptive_and_static_rows_never_cross_match() {
        let baseline = vec![point("static", 16, 1, 3000.0)];
        let fresh = vec![point("adaptive", 16, 1, 10.0)];
        let report = compare(&baseline, &fresh, 0.20);
        assert!(report.compared.is_empty());
        assert!(report.regressions.is_empty());
        assert_eq!(report.unmatched.len(), 1, "cross-mode rows are key drift, not matches");
    }
}
