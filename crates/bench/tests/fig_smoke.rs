//! Smoke test for the figure harness: runs the fig1 code path in-process
//! with a tiny parameter set, so the measurement pipeline (workload spec →
//! simulated run → latency stats → table rendering) can't silently rot.

use iabc_bench::{format_panel, sel, sweep_payload, Effort};
use iabc_core::{CostModel, RbKind};
use iabc_sim::NetworkParams;
use iabc_types::Duration;

/// A deliberately tiny effort: a handful of messages per point, sub-second
/// measured windows. Keeps the smoke test fast in debug builds.
fn smoke_effort() -> Effort {
    Effort {
        target_msgs: 40,
        min_duration: Duration::from_millis(300),
        max_duration: Duration::from_millis(800),
    }
}

#[test]
fn fig1_path_produces_sane_series() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let payloads = [1usize, 1000];
    let stacks = [
        ("Indirect consensus", sel::indirect(RbKind::EagerN2)),
        ("Consensus", sel::direct_messages(RbKind::EagerN2)),
    ];

    let series = sweep_payload(&stacks, 3, &net, cost, 100.0, &payloads, smoke_effort());

    assert_eq!(series.len(), 2, "one series per stack");
    for s in &series {
        assert_eq!(s.points.len(), payloads.len(), "one point per payload");
        for p in &s.points {
            assert!(
                p.mean_ms.is_finite() && p.mean_ms > 0.0,
                "{}: non-positive mean latency {:?}",
                s.label,
                p.mean_ms
            );
            assert!(
                p.median_ms <= p.p95_ms + 1e-9,
                "{}: median {} above p95 {}",
                s.label,
                p.median_ms,
                p.p95_ms
            );
            assert!(!p.saturated, "{}: saturated at 100 msg/s", s.label);
        }
    }

    // The paper's Figure 1 claim in miniature: consensus on full messages
    // pays for shipping payloads through the consensus layer, so at 1000-byte
    // payloads the indirect stack must not be slower.
    let indirect_1k = series[0].points[1].mean_ms;
    let direct_1k = series[1].points[1].mean_ms;
    assert!(
        indirect_1k <= direct_1k * 1.10,
        "indirect ({indirect_1k} ms) should not be slower than direct ({direct_1k} ms) at 1 KiB"
    );

    // Rendering the panel must produce a table mentioning every series.
    let panel = format_panel("Figure 1 smoke", "size [bytes]", &series);
    assert!(panel.contains("Indirect consensus") && panel.contains("Consensus"));
    assert!(panel.contains("mean[ms]"));
}
