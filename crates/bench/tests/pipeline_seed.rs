//! The CI smoke sweep must be reproducible run-to-run: every
//! `pipeline_sweep` grid point threads the pinned smoke seed, so the JSON
//! artifacts CI archives (and the bench-trend gate diffs) are comparable
//! across pushes and machines.

use iabc_bench::{pipeline_sweep_spec, priority_sweep_spec};
use iabc_types::Duration;
use iabc_workload::{batched_schedule, CI_SMOKE_SEED};
use iabc_types::ProcessId;

#[test]
fn sweep_specs_pin_the_ci_smoke_seed() {
    for (w, b) in [(1, 1), (1, 16), (16, 1), (16, 16)] {
        let spec = pipeline_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), w, b);
        assert_eq!(spec.seed, CI_SMOKE_SEED, "smoke row W={w},B={b} must pin the seed");
        assert_eq!((spec.window, spec.batch), (w, b));
    }
}

#[test]
fn priority_sweep_specs_pin_the_seed_and_differ_only_in_the_lane() {
    let off = priority_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), false);
    let on = priority_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), true);
    assert_eq!(off.seed, CI_SMOKE_SEED);
    assert_eq!(on.seed, CI_SMOKE_SEED);
    assert!(!off.priority_lane);
    assert!(on.priority_lane);
    // Identical except the lane toggle: the on/off rows are a controlled
    // comparison over the same workload schedule.
    let mut on_without_lane = on.clone();
    on_without_lane.priority_lane = false;
    assert_eq!(off, on_without_lane);
    assert_eq!(off.adaptive_window, Some((1, 16)));
    assert_eq!(off.max_proposal_ids, 64);
    assert_eq!(off.batch, 1, "the priority sweep lives at the B=1 knee");
}

#[test]
fn pinned_seed_makes_smoke_schedules_identical() {
    let spec = pipeline_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), 1, 16);
    let horizon = spec.warmup + spec.duration;
    for p in ProcessId::all(spec.n) {
        let a = batched_schedule(
            spec.arrivals,
            spec.throughput / spec.n as f64,
            horizon,
            spec.seed,
            p,
            spec.batch,
        );
        let b = batched_schedule(
            spec.arrivals,
            spec.throughput / spec.n as f64,
            horizon,
            CI_SMOKE_SEED,
            p,
            spec.batch,
        );
        assert_eq!(a, b, "schedule for {p:?} must be reproducible from the pinned seed");
        assert!(!a.is_empty());
    }
}
