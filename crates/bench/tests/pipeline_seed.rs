//! The CI smoke sweep must be reproducible run-to-run: every
//! `pipeline_sweep` grid point threads the pinned smoke seed, so the JSON
//! artifacts CI archives (and the bench-trend gate diffs) are comparable
//! across pushes and machines.

use iabc_bench::pipeline_sweep_spec;
use iabc_types::Duration;
use iabc_workload::{batched_schedule, CI_SMOKE_SEED};
use iabc_types::ProcessId;

#[test]
fn sweep_specs_pin_the_ci_smoke_seed() {
    for (w, b) in [(1, 1), (1, 16), (16, 1), (16, 16)] {
        let spec = pipeline_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), w, b);
        assert_eq!(spec.seed, CI_SMOKE_SEED, "smoke row W={w},B={b} must pin the seed");
        assert_eq!((spec.window, spec.batch), (w, b));
    }
}

#[test]
fn pinned_seed_makes_smoke_schedules_identical() {
    let spec = pipeline_sweep_spec(3, 4000.0, 64, Duration::from_secs(2), 1, 16);
    let horizon = spec.warmup + spec.duration;
    for p in ProcessId::all(spec.n) {
        let a = batched_schedule(
            spec.arrivals,
            spec.throughput / spec.n as f64,
            horizon,
            spec.seed,
            p,
            spec.batch,
        );
        let b = batched_schedule(
            spec.arrivals,
            spec.throughput / spec.n as f64,
            horizon,
            CI_SMOKE_SEED,
            p,
            spec.batch,
        );
        assert_eq!(a, b, "schedule for {p:?} must be reproducible from the pinned seed");
        assert!(!a.is_empty());
    }
}
