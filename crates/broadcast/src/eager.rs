//! Eager (flooding) reliable broadcast — O(n²) messages, one-step delivery.

use std::collections::BTreeSet;

use iabc_types::{AppMessage, MsgId, ProcessId};

use crate::{BcastDest, BcastMsg, BcastOut, Broadcast};

/// Reliable broadcast by flooding: the broadcaster sends to everyone, and
/// every process relays the first copy it receives to everyone else.
///
/// * **Validity** — the broadcaster delivers locally at broadcast time.
/// * **Agreement** — if a correct process has a copy, its relay reaches all
///   correct processes (channels between correct processes are reliable).
/// * **Cost** — `(n−1) + (n−1)²` messages per broadcast, one network step
///   from broadcaster to delivery at every other process.
///
/// This is the reliable broadcast the Chandra–Toueg reduction assumes and
/// the "O(n²)" series of Figures 5 and 7a.
#[derive(Debug)]
pub struct EagerRb {
    /// Ids already delivered (relay duplicates must be ignored).
    seen: BTreeSet<MsgId>,
}

impl EagerRb {
    /// Creates the module.
    pub fn new() -> Self {
        EagerRb { seen: BTreeSet::new() }
    }

    /// Number of distinct messages seen so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

impl Default for EagerRb {
    fn default() -> Self {
        EagerRb::new()
    }
}

impl Broadcast for EagerRb {
    fn broadcast(&mut self, m: AppMessage, out: &mut BcastOut) {
        // The broadcast itself plays the role of the local relay: deliver
        // locally, send to the others once.
        if self.seen.insert(m.id()) {
            out.sends.push((BcastDest::Others, BcastMsg::Data(m.clone())));
            out.deliveries.push(m);
        }
    }

    fn on_message(&mut self, _from: ProcessId, msg: BcastMsg, out: &mut BcastOut) {
        let m = match msg {
            BcastMsg::Data(m) | BcastMsg::Relay(m) => m,
            // URB traffic does not belong to this module.
            BcastMsg::UrbData(_) | BcastMsg::UrbEcho(_) => return,
        };
        if self.seen.insert(m.id()) {
            out.sends.push((BcastDest::Others, BcastMsg::Relay(m.clone())));
            out.deliveries.push(m);
        }
    }

    fn name(&self) -> &'static str {
        "rb-eager-n2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, Time};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg(sender: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(p(sender), seq), Payload::zeroed(4), Time::ZERO)
    }

    #[test]
    fn broadcast_delivers_locally_and_sends_once() {
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.broadcast(msg(0, 0), &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.sends.len(), 1);
        assert!(matches!(out.sends[0], (BcastDest::Others, BcastMsg::Data(_))));
    }

    #[test]
    fn first_copy_delivers_and_relays() {
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert!(matches!(out.sends[0], (BcastDest::Others, BcastMsg::Relay(_))));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        rb.on_message(p(2), BcastMsg::Relay(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(rb.seen_count(), 1);
    }

    #[test]
    fn relay_first_also_delivers() {
        // The sender may have crashed: the first copy can be a relay.
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(2), BcastMsg::Relay(msg(0, 3)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn urb_traffic_is_ignored() {
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(1), BcastMsg::UrbData(msg(1, 0)), &mut out);
        rb.on_message(p(1), BcastMsg::UrbEcho(msg(1, 0)), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rebroadcast_of_seen_message_is_a_noop() {
        let mut rb = EagerRb::new();
        let mut out = BcastOut::new();
        rb.broadcast(msg(0, 0), &mut out);
        rb.broadcast(msg(0, 0), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }
}
