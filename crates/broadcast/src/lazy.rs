//! Lazy reliable broadcast — O(n) messages in good runs, failure-detector
//! triggered relays otherwise.

use std::collections::{BTreeMap, BTreeSet};

use iabc_types::{AppMessage, MsgId, ProcessId};

use crate::{BcastDest, BcastMsg, BcastOut, Broadcast};

/// Reliable broadcast that relays only on suspicion.
///
/// In a good run (no crashes, no suspicions) a broadcast costs exactly
/// `n − 1` messages: the broadcaster's initial diffusion. Each receiver
/// buffers the message; if the failure detector later suspects the
/// *original broadcaster*, every process holding one of its messages relays
/// it once to everybody, restoring the Agreement property of reliable
/// broadcast (a correct process with a copy ensures everyone correct gets
/// one).
///
/// This is the "Reliable broadcast in O(n) messages (when using a failure
/// detector)" of Figures 6 and 7b — the variant under which indirect
/// consensus beats the uniform-reliable-broadcast solution most clearly.
#[derive(Debug)]
pub struct LazyRb {
    /// Ids already delivered.
    seen: BTreeSet<MsgId>,
    /// Messages buffered per original broadcaster, for potential relay.
    by_sender: BTreeMap<ProcessId, Vec<AppMessage>>,
    /// Ids already relayed (relay at most once per process).
    relayed: BTreeSet<MsgId>,
    /// Broadcasters currently suspected; messages arriving from them later
    /// are relayed immediately.
    suspected: BTreeSet<ProcessId>,
}

impl LazyRb {
    /// Creates the module.
    pub fn new() -> Self {
        LazyRb {
            seen: BTreeSet::new(),
            by_sender: BTreeMap::new(),
            relayed: BTreeSet::new(),
            suspected: BTreeSet::new(),
        }
    }

    fn relay(&mut self, m: &AppMessage, out: &mut BcastOut) {
        if self.relayed.insert(m.id()) {
            out.sends.push((BcastDest::Others, BcastMsg::Relay(m.clone())));
        }
    }

    fn accept(&mut self, m: AppMessage, out: &mut BcastOut) {
        if !self.seen.insert(m.id()) {
            return;
        }
        let origin = m.id().sender();
        if self.suspected.contains(&origin) {
            self.relay(&m, out);
        }
        self.by_sender.entry(origin).or_default().push(m.clone());
        out.deliveries.push(m);
    }
}

impl Default for LazyRb {
    fn default() -> Self {
        LazyRb::new()
    }
}

impl Broadcast for LazyRb {
    fn broadcast(&mut self, m: AppMessage, out: &mut BcastOut) {
        if self.seen.insert(m.id()) {
            // Our own broadcast needs no relay bookkeeping: we are the origin.
            self.relayed.insert(m.id());
            out.sends.push((BcastDest::Others, BcastMsg::Data(m.clone())));
            out.deliveries.push(m);
        }
    }

    fn on_message(&mut self, _from: ProcessId, msg: BcastMsg, out: &mut BcastOut) {
        let m = match msg {
            BcastMsg::Data(m) | BcastMsg::Relay(m) => m,
            BcastMsg::UrbData(_) | BcastMsg::UrbEcho(_) => return,
        };
        self.accept(m, out);
    }

    fn on_suspect(&mut self, p: ProcessId, out: &mut BcastOut) {
        if !self.suspected.insert(p) {
            return;
        }
        // Relay everything we hold from the suspected broadcaster.
        let msgs = self.by_sender.get(&p).cloned().unwrap_or_default();
        for m in msgs {
            self.relay(&m, out);
        }
    }

    fn name(&self) -> &'static str {
        "rb-lazy-n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, Time};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg(sender: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(p(sender), seq), Payload::zeroed(4), Time::ZERO)
    }

    #[test]
    fn good_run_costs_one_send() {
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.broadcast(msg(0, 0), &mut out);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.deliveries.len(), 1);

        let mut rb1 = LazyRb::new();
        let mut out1 = BcastOut::new();
        rb1.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out1);
        // Receivers deliver without relaying.
        assert_eq!(out1.sends.len(), 0);
        assert_eq!(out1.deliveries.len(), 1);
    }

    #[test]
    fn suspicion_triggers_relay_of_buffered_messages() {
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        rb.on_message(p(0), BcastMsg::Data(msg(0, 1)), &mut out);
        assert_eq!(out.sends.len(), 0);

        let mut out = BcastOut::new();
        rb.on_suspect(p(0), &mut out);
        assert_eq!(out.sends.len(), 2);
        assert!(out.sends.iter().all(|(d, m)| matches!(
            (d, m),
            (BcastDest::Others, BcastMsg::Relay(_))
        )));
    }

    #[test]
    fn messages_arriving_after_suspicion_are_relayed_immediately() {
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.on_suspect(p(0), &mut out);
        assert!(out.is_empty());
        rb.on_message(p(2), BcastMsg::Relay(msg(0, 5)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.sends.len(), 1);
    }

    #[test]
    fn each_message_is_relayed_at_most_once() {
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        rb.on_suspect(p(0), &mut out);
        rb.on_suspect(p(0), &mut out); // duplicate suspicion
        let relays = out.sends.iter().filter(|(_, m)| matches!(m, BcastMsg::Relay(_))).count();
        assert_eq!(relays, 1);
    }

    #[test]
    fn own_messages_never_relayed_on_self_suspicion() {
        // Pathological but legal for an unreliable FD: we get suspected.
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.broadcast(msg(0, 0), &mut out);
        let mut out = BcastOut::new();
        rb.on_suspect(p(0), &mut out);
        // The original diffusion already went to everyone; no second send.
        assert!(out.sends.is_empty());
    }

    #[test]
    fn duplicate_copies_deliver_once() {
        let mut rb = LazyRb::new();
        let mut out = BcastOut::new();
        rb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        rb.on_message(p(1), BcastMsg::Relay(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }
}
