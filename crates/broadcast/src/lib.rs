//! Broadcast primitives: reliable broadcast (two dissemination strategies)
//! and uniform reliable broadcast.
//!
//! The paper's atomic broadcast reductions sit on top of these:
//!
//! * [`EagerRb`] — reliable broadcast where every receiver immediately
//!   relays: delivery in one step, **O(n²)** messages (the algorithm assumed
//!   by the Chandra–Toueg reduction, and the "Reliable broadcast in O(n²)
//!   messages" of Figures 5 and 7a).
//! * [`LazyRb`] — reliable broadcast that relays only when the failure
//!   detector suspects the sender: **O(n)** messages in good runs (the
//!   "Reliable broadcast in O(n) messages" of Figures 6 and 7b).
//! * [`MajorityAckUrb`] — *uniform* reliable broadcast: echo on first copy,
//!   deliver once a majority of processes is known to hold the message.
//!   Two communication steps for the sender, O(n²) messages — the cost the
//!   paper's §2.2 wants to avoid by introducing indirect consensus.
//!
//! Reliable broadcast guarantees Validity, Uniform integrity and Agreement
//! (for *correct* processes). Uniform reliable broadcast strengthens
//! Agreement to all processes: if **any** process (even one that crashes
//! later) delivers `m`, all correct processes do. The gap between those two
//! guarantees is precisely what makes the naive consensus-on-ids atomic
//! broadcast unsafe (§2.2) and what the *No loss* property of indirect
//! consensus restores.

pub mod eager;
pub mod lazy;
pub mod urb;

use std::fmt;

use iabc_types::{AppMessage, CodecError, Decode, Encode, ProcessId, TrafficClass, WireSize};

pub use eager::EagerRb;
pub use lazy::LazyRb;
pub use urb::MajorityAckUrb;

/// Destination of a broadcast-layer message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastDest {
    /// A single process.
    To(ProcessId),
    /// Every process except the sender.
    Others,
}

/// Wire messages of the broadcast layer. Every variant carries the full
/// application message — that is the point: the broadcast layer is the one
/// place where payloads travel.
#[derive(Debug, Clone, PartialEq)]
pub enum BcastMsg {
    /// Initial diffusion by the broadcaster (reliable broadcast).
    Data(AppMessage),
    /// A relay by a receiver (eager) or by a suspecting process (lazy).
    Relay(AppMessage),
    /// Initial diffusion by the broadcaster (uniform reliable broadcast).
    UrbData(AppMessage),
    /// An echo: "I have this message" (uniform reliable broadcast).
    UrbEcho(AppMessage),
}

impl BcastMsg {
    /// The application message carried by this frame.
    pub fn app_message(&self) -> &AppMessage {
        match self {
            BcastMsg::Data(m) | BcastMsg::Relay(m) | BcastMsg::UrbData(m) | BcastMsg::UrbEcho(m) => m,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            BcastMsg::Data(_) => 0,
            BcastMsg::Relay(_) => 1,
            BcastMsg::UrbData(_) => 2,
            BcastMsg::UrbEcho(_) => 3,
        }
    }
}

impl WireSize for BcastMsg {
    fn wire_size(&self) -> usize {
        1 + self.app_message().wire_size()
    }

    fn traffic_class(&self) -> TrafficClass {
        // Every variant carries a full application message: this layer is
        // the payload flood the priority lane drains *behind* consensus.
        TrafficClass::Bulk
    }
}

impl Encode for BcastMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        self.app_message().encode(buf);
    }
}

impl Decode for BcastMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let tag = u8::decode(buf)?;
        let m = AppMessage::decode(buf)?;
        Ok(match tag {
            0 => BcastMsg::Data(m),
            1 => BcastMsg::Relay(m),
            2 => BcastMsg::UrbData(m),
            3 => BcastMsg::UrbEcho(m),
            t => return Err(CodecError::InvalidTag { tag: t, context: "BcastMsg" }),
        })
    }
}

/// Output buffer filled by broadcast-module callbacks.
#[derive(Debug, Default)]
pub struct BcastOut {
    /// Messages to send.
    pub sends: Vec<(BcastDest, BcastMsg)>,
    /// Messages delivered to the layer above (`rdeliver` / `urb-deliver`).
    pub deliveries: Vec<AppMessage>,
}

impl BcastOut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BcastOut::default()
    }

    /// Whether nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.deliveries.is_empty()
    }
}

/// A sans-io broadcast module for one process.
///
/// The composed node routes application broadcasts to
/// [`Broadcast::broadcast`], incoming [`BcastMsg`]s to
/// [`Broadcast::on_message`], and failure-detector suspicions to
/// [`Broadcast::on_suspect`] (only [`LazyRb`] reacts to those).
pub trait Broadcast: fmt::Debug {
    /// Broadcasts an application message.
    fn broadcast(&mut self, m: AppMessage, out: &mut BcastOut);

    /// Handles an incoming broadcast-layer message.
    fn on_message(&mut self, from: ProcessId, msg: BcastMsg, out: &mut BcastOut);

    /// Informs the module that the failure detector now suspects `p`.
    fn on_suspect(&mut self, p: ProcessId, out: &mut BcastOut) {
        let _ = (p, out);
    }

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;
    use iabc_types::{MsgId, Payload, Time};

    fn msg() -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(1), 4), Payload::zeroed(10), Time::ZERO)
    }

    #[test]
    fn bcast_msg_codec_roundtrip_all_variants() {
        for m in [
            BcastMsg::Data(msg()),
            BcastMsg::Relay(msg()),
            BcastMsg::UrbData(msg()),
            BcastMsg::UrbEcho(msg()),
        ] {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn bcast_msg_rejects_bad_tag() {
        let mut buf = Vec::new();
        BcastMsg::Data(msg()).encode(&mut buf);
        buf[0] = 77;
        let mut slice = buf.as_slice();
        assert!(BcastMsg::decode(&mut slice).is_err());
    }

    #[test]
    fn wire_size_is_payload_plus_one() {
        let m = BcastMsg::Data(msg());
        assert_eq!(m.wire_size(), 1 + msg().wire_size());
    }
}
