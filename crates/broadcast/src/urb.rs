//! Uniform reliable broadcast by majority witnessing.

use std::collections::{BTreeMap, BTreeSet};

use iabc_types::{quorum, AppMessage, MsgId, ProcessId, ProcessSet};

use crate::{BcastDest, BcastMsg, BcastOut, Broadcast};

/// Uniform reliable broadcast: deliver `m` only once a majority of processes
/// is known to hold `m`.
///
/// Protocol: the broadcaster diffuses `UrbData(m)`; every process echoes
/// (`UrbEcho(m)`, carrying the payload so late processes can catch up) the
/// first copy it receives. A process counts the distinct processes it has
/// *observed holding* `m` — itself, the broadcaster (via `UrbData`), and
/// every echoer — and delivers when the count reaches `⌈(n+1)/2⌉`.
///
/// **Uniformity**: delivery implies a majority holds `m`; with `f < n/2`
/// crashes at least one holder is correct, and a correct holder's echo
/// reaches everyone, so every correct process eventually delivers `m` even
/// if the *deliverer* and the broadcaster both crash. This is the guarantee
/// the naive consensus-on-ids atomic broadcast is missing (paper §2.2),
/// bought at the price the paper quantifies in Figures 5–7: O(n²)
/// payload-sized messages and a two-step delivery at the broadcaster.
#[derive(Debug)]
pub struct MajorityAckUrb {
    me: ProcessId,
    n: usize,
    /// Processes observed holding each message (including self once echoed).
    witnesses: BTreeMap<MsgId, ProcessSet>,
    /// Payloads held but not yet delivered.
    pending: BTreeMap<MsgId, AppMessage>,
    /// Ids already echoed.
    echoed: BTreeSet<MsgId>,
    /// Ids already delivered.
    delivered: BTreeSet<MsgId>,
}

impl MajorityAckUrb {
    /// Creates the module for process `me` of `n`.
    pub fn new(me: ProcessId, n: usize) -> Self {
        MajorityAckUrb {
            me,
            n,
            witnesses: BTreeMap::new(),
            pending: BTreeMap::new(),
            echoed: BTreeSet::new(),
            delivered: BTreeSet::new(),
        }
    }

    fn witness(&mut self, id: MsgId, holder: ProcessId) {
        self.witnesses.entry(id).or_default().insert(holder);
    }

    fn try_deliver(&mut self, id: MsgId, out: &mut BcastOut) {
        if self.delivered.contains(&id) {
            return;
        }
        let count = self.witnesses.get(&id).map_or(0, ProcessSet::len);
        if count >= quorum::majority(self.n) {
            if let Some(m) = self.pending.remove(&id) {
                self.delivered.insert(id);
                out.deliveries.push(m);
            }
        }
    }

    /// Handles the first copy of `m` (from `holder`); echoes if needed.
    fn accept(&mut self, m: AppMessage, holder: ProcessId, out: &mut BcastOut) {
        let id = m.id();
        if self.delivered.contains(&id) {
            self.witness(id, holder);
            return;
        }
        self.pending.entry(id).or_insert_with(|| m.clone());
        self.witness(id, holder);
        self.witness(id, self.me); // we now hold it
        if self.echoed.insert(id) {
            out.sends.push((BcastDest::Others, BcastMsg::UrbEcho(m)));
        }
        self.try_deliver(id, out);
    }

    /// Number of distinct witnesses currently known for `id` (for tests).
    pub fn witness_count(&self, id: MsgId) -> usize {
        self.witnesses.get(&id).map_or(0, ProcessSet::len)
    }
}

impl Broadcast for MajorityAckUrb {
    fn broadcast(&mut self, m: AppMessage, out: &mut BcastOut) {
        let id = m.id();
        if self.echoed.contains(&id) || self.delivered.contains(&id) {
            return;
        }
        self.echoed.insert(id); // the diffusion doubles as our echo
        self.pending.insert(id, m.clone());
        self.witness(id, self.me);
        out.sends.push((BcastDest::Others, BcastMsg::UrbData(m)));
        // n = 1: we are the majority.
        self.try_deliver(id, out);
    }

    fn on_message(&mut self, from: ProcessId, msg: BcastMsg, out: &mut BcastOut) {
        match msg {
            BcastMsg::UrbData(m) | BcastMsg::UrbEcho(m) => self.accept(m, from, out),
            // Plain RB traffic does not belong to this module.
            BcastMsg::Data(_) | BcastMsg::Relay(_) => {}
        }
    }

    fn name(&self) -> &'static str {
        "urb-majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, Time};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg(sender: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(p(sender), seq), Payload::zeroed(4), Time::ZERO)
    }

    #[test]
    fn broadcaster_does_not_deliver_alone_when_n_gt_1() {
        let mut urb = MajorityAckUrb::new(p(0), 3);
        let mut out = BcastOut::new();
        urb.broadcast(msg(0, 0), &mut out);
        assert!(out.deliveries.is_empty(), "sender must wait for a witness");
        assert_eq!(out.sends.len(), 1);
    }

    #[test]
    fn broadcaster_delivers_after_one_echo_n3() {
        let mut urb = MajorityAckUrb::new(p(0), 3);
        let mut out = BcastOut::new();
        urb.broadcast(msg(0, 0), &mut out);
        urb.on_message(p(1), BcastMsg::UrbEcho(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn receiver_delivers_on_first_copy_n3() {
        // Receiver q counts {sender, q} = 2 = majority(3).
        let mut urb = MajorityAckUrb::new(p(1), 3);
        let mut out = BcastOut::new();
        urb.on_message(p(0), BcastMsg::UrbData(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
        // And it echoed exactly once.
        assert_eq!(out.sends.len(), 1);
        assert!(matches!(out.sends[0].1, BcastMsg::UrbEcho(_)));
    }

    #[test]
    fn receiver_needs_more_witnesses_for_n5() {
        // majority(5) = 3: {sender, me} is not enough.
        let mut urb = MajorityAckUrb::new(p(1), 5);
        let mut out = BcastOut::new();
        urb.on_message(p(0), BcastMsg::UrbData(msg(0, 0)), &mut out);
        assert!(out.deliveries.is_empty());
        assert_eq!(urb.witness_count(MsgId::new(p(0), 0)), 2);
        urb.on_message(p(2), BcastMsg::UrbEcho(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn echo_first_copy_works_when_sender_crashed() {
        // Copy arrives only via an echo; the message still propagates.
        let mut urb = MajorityAckUrb::new(p(2), 3);
        let mut out = BcastOut::new();
        urb.on_message(p(1), BcastMsg::UrbEcho(msg(0, 0)), &mut out);
        // Witnesses: {p1, me} = 2 = majority(3) → deliver.
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn delivers_exactly_once() {
        let mut urb = MajorityAckUrb::new(p(1), 3);
        let mut out = BcastOut::new();
        urb.on_message(p(0), BcastMsg::UrbData(msg(0, 0)), &mut out);
        urb.on_message(p(2), BcastMsg::UrbEcho(msg(0, 0)), &mut out);
        urb.on_message(p(0), BcastMsg::UrbEcho(msg(0, 0)), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn single_process_system_delivers_immediately() {
        let mut urb = MajorityAckUrb::new(p(0), 1);
        let mut out = BcastOut::new();
        urb.broadcast(msg(0, 0), &mut out);
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn rb_traffic_is_ignored() {
        let mut urb = MajorityAckUrb::new(p(1), 3);
        let mut out = BcastOut::new();
        urb.on_message(p(0), BcastMsg::Data(msg(0, 0)), &mut out);
        assert!(out.is_empty());
    }
}
