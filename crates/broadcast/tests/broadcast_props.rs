//! Property-based tests of the broadcast modules: exactly-once delivery
//! under arbitrary duplicate/relay storms, and URB's witnessing invariant.

use iabc_broadcast::{BcastMsg, BcastOut, Broadcast, EagerRb, LazyRb, MajorityAckUrb};
use iabc_types::{quorum, AppMessage, MsgId, Payload, ProcessId, Time};
use proptest::prelude::*;

fn msg(sender: u16, seq: u64) -> AppMessage {
    AppMessage::new(MsgId::new(ProcessId::new(sender), seq), Payload::zeroed(4), Time::ZERO)
}

/// An arbitrary stream of incoming broadcast-layer frames.
fn frame_stream(n: u16) -> impl Strategy<Value = Vec<(u16, u8, u16, u64)>> {
    // (from, kind, origin, seq)
    proptest::collection::vec((0..n, 0u8..4, 0..n, 0u64..6), 0..120)
}

fn to_frame(kind: u8, origin: u16, seq: u64) -> BcastMsg {
    let m = msg(origin, seq);
    match kind {
        0 => BcastMsg::Data(m),
        1 => BcastMsg::Relay(m),
        2 => BcastMsg::UrbData(m),
        _ => BcastMsg::UrbEcho(m),
    }
}

proptest! {
    /// Reliable-broadcast modules deliver every distinct message at most
    /// once, no matter how the frames are duplicated and reordered.
    #[test]
    fn eager_rb_delivers_each_message_once(frames in frame_stream(4)) {
        let mut rb = EagerRb::new();
        let mut delivered = Vec::new();
        for (from, kind, origin, seq) in frames {
            let mut out = BcastOut::new();
            rb.on_message(ProcessId::new(from), to_frame(kind, origin, seq), &mut out);
            delivered.extend(out.deliveries.iter().map(AppMessage::id));
        }
        let mut dedup = delivered.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), delivered.len(), "duplicate delivery");
    }

    #[test]
    fn lazy_rb_delivers_each_message_once_despite_suspicions(
        frames in frame_stream(4),
        suspects in proptest::collection::vec(0u16..4, 0..8),
    ) {
        let mut rb = LazyRb::new();
        let mut delivered = Vec::new();
        let mut iter = suspects.into_iter();
        for (i, (from, kind, origin, seq)) in frames.into_iter().enumerate() {
            let mut out = BcastOut::new();
            if i % 7 == 3 {
                if let Some(s) = iter.next() {
                    rb.on_suspect(ProcessId::new(s), &mut out);
                }
            }
            rb.on_message(ProcessId::new(from), to_frame(kind, origin, seq), &mut out);
            delivered.extend(out.deliveries.iter().map(AppMessage::id));
        }
        let mut dedup = delivered.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), delivered.len(), "duplicate delivery");
    }

    /// Each message is relayed at most once by LazyRb, regardless of how
    /// often the origin is (re-)suspected.
    #[test]
    fn lazy_rb_relays_at_most_once(seqs in proptest::collection::vec(0u64..5, 1..20)) {
        let mut rb = LazyRb::new();
        let mut relays = 0usize;
        for &seq in &seqs {
            let mut out = BcastOut::new();
            rb.on_message(ProcessId::new(0), BcastMsg::Data(msg(0, seq)), &mut out);
            rb.on_suspect(ProcessId::new(0), &mut out);
            rb.on_suspect(ProcessId::new(0), &mut out);
            relays += out
                .sends
                .iter()
                .filter(|(_, m)| matches!(m, BcastMsg::Relay(_)))
                .count();
        }
        let distinct: std::collections::BTreeSet<u64> = seqs.iter().copied().collect();
        prop_assert!(relays <= distinct.len(), "{relays} relays for {} messages", distinct.len());
    }

    /// URB never delivers before a majority of witnesses is known, and
    /// delivers exactly once.
    #[test]
    fn urb_delivers_once_and_only_with_majority(
        n in 3usize..8,
        me in 0u16..3,
        witnesses in proptest::collection::vec(0u16..8, 0..20),
    ) {
        let me = ProcessId::new(me);
        let mut urb = MajorityAckUrb::new(me, n);
        let id = MsgId::new(ProcessId::new(7), 0);
        let mut delivered = 0usize;
        for w in witnesses {
            let from = ProcessId::new(w % n as u16);
            if from == me {
                continue; // the network never hands us our own frame here
            }
            let mut out = BcastOut::new();
            urb.on_message(from, BcastMsg::UrbEcho(msg(7, 0)), &mut out);
            delivered += out.deliveries.len();
            if !out.deliveries.is_empty() {
                // At delivery time the witness set must be a majority.
                prop_assert!(urb.witness_count(id) >= quorum::majority(n));
            }
        }
        prop_assert!(delivered <= 1, "URB delivered {delivered} times");
    }
}
