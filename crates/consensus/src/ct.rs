//! The Chandra–Toueg ◇S consensus algorithm, as a reusable round machine.
//!
//! [`CtMachine`] implements the rotating-coordinator skeleton shared by the
//! original algorithm \[2\] and the paper's indirect adaptation
//! (Algorithm 2). The two differ in exactly the places the paper prints in
//! bold, captured here by the [`CtPolicy`] trait:
//!
//! * **Phase 3** — what a process does with the coordinator's proposal
//!   `v`: the original *always* adopts and acks; the indirect algorithm
//!   acks only if `rcv(v)` holds, else nacks (Algorithm 2 lines 25–30).
//! * **Phase 2** — whether the coordinator folds the selected estimate into
//!   its own `estimate_p`: the original does; the indirect algorithm keeps
//!   it in the separate `estimate_c` (Algorithm 2 lines 2, 18, 20, 21, 37),
//!   because the coordinator may relay a value whose messages it does not
//!   hold.
//!
//! [`CtConsensus`] is the original; [`CtIndirect`](crate::CtIndirect) (in
//! its own module) is Algorithm 2.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;

use iabc_types::{quorum, ProcessId, ProcessSet};

use crate::msg::{ConsDest, ConsMsg};
use crate::value::ConsensusValue;
use crate::{ConsEnv, ConsOut, SingleConsensus};

/// The variation points between the original CT algorithm and Algorithm 2.
pub trait CtPolicy: fmt::Debug + Default + 'static {
    /// Phase 3: whether to **ack** (and adopt) the coordinator's proposal.
    ///
    /// The original returns `true` unconditionally; Algorithm 2 returns
    /// `rcv(v)` — the modification that makes v-valent configurations
    /// v-stable.
    fn accept_proposal<V: ConsensusValue>(
        v: &V,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> bool;

    /// Phase 2: whether the coordinator adopts the selected estimate into
    /// its own `estimate_p` (original CT) or keeps it only as the separate
    /// `estimate_c` (Algorithm 2).
    const COORDINATOR_ADOPTS_SELECTION: bool;

    /// Human-readable algorithm name.
    const NAME: &'static str;
}

/// Policy of the original (unmodified) Chandra–Toueg algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectCt;

impl CtPolicy for DirectCt {
    fn accept_proposal<V: ConsensusValue>(
        _v: &V,
        _env: &ConsEnv<'_, V>,
        _out: &mut ConsOut<V>,
    ) -> bool {
        true // line 25 of Algorithm 2 without the rcv check
    }

    const COORDINATOR_ADOPTS_SELECTION: bool = true;
    const NAME: &'static str = "ct";
}

/// The original Chandra–Toueg ◇S consensus: majority quorum, `f < n/2`.
///
/// Run it on full message sets for the classic (correct, heavyweight)
/// reduction of atomic broadcast to consensus; run it on identifier sets to
/// get the **faulty** baseline of §2.2.
pub type CtConsensus<V> = CtMachine<V, DirectCt>;

/// What the process is currently blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// `propose` not yet called.
    NotStarted,
    /// Phase 2: gathering `⌈(n+1)/2⌉` estimates (coordinator, round > 1).
    CoordEstimates,
    /// Phase 3: waiting for the coordinator's proposal (or its suspicion).
    Proposal,
    /// Phase 4: waiting for `⌈(n+1)/2⌉` acks or one nack (coordinator).
    CoordAcks,
    /// Decided.
    Done,
}

/// The Chandra–Toueg round machine, parameterized by a [`CtPolicy`].
pub struct CtMachine<V, P: CtPolicy> {
    me: ProcessId,
    n: usize,
    /// Added to the round number when selecting the coordinator, so that
    /// consecutive consensus instances rotate their round-1 coordinator
    /// (load balancing; coordinator work would otherwise pile onto one
    /// process across every instance of the atomic broadcast reduction).
    coord_offset: u64,
    /// Processes that never participate in consensus (learners / read
    /// replicas). Coordinator rotation skips them and quorums count only
    /// the remaining actives. Empty by default — the classic algorithm.
    passive: ProcessSet,
    /// Current round `r_p` (1-based; 0 before `propose`).
    round: u64,
    /// `estimate_p`: the value this process vouches for.
    estimate: Option<V>,
    /// `ts_p`: the round in which `estimate_p` was last adopted.
    ts: u64,
    /// The value this process proposed as coordinator of the current round
    /// (`estimate_c` in Algorithm 2) — also the value it decides on.
    current_proposal: Option<V>,
    wait: Wait,
    decided: bool,
    /// Phase-1 estimates received, per round: sender → (estimate, ts).
    estimates: BTreeMap<u64, BTreeMap<ProcessId, (V, u64)>>,
    /// Proposals received, per round (buffered if we are behind).
    proposals: BTreeMap<u64, V>,
    /// Ack senders per round.
    acks: BTreeMap<u64, BTreeSet<ProcessId>>,
    /// Nack senders per round.
    nacks: BTreeMap<u64, BTreeSet<ProcessId>>,
    _policy: PhantomData<P>,
}

impl<V: ConsensusValue, P: CtPolicy> fmt::Debug for CtMachine<V, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CtMachine")
            .field("policy", &P::NAME)
            .field("me", &self.me)
            .field("round", &self.round)
            .field("ts", &self.ts)
            .field("wait", &self.wait)
            .field("decided", &self.decided)
            .finish()
    }
}

impl<V: ConsensusValue, P: CtPolicy> CtMachine<V, P> {
    /// Creates an instance for process `me` in a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self::with_coord_offset(me, n, 0)
    }

    /// Like [`CtMachine::new`], with the coordinator rotation shifted by
    /// `offset` rounds (instance managers pass the instance number).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_coord_offset(me: ProcessId, n: usize, offset: u64) -> Self {
        Self::with_membership(me, n, offset, ProcessSet::new())
    }

    /// Like [`CtMachine::with_coord_offset`], with `passive` processes
    /// (learners / read replicas) excluded from the protocol: they are
    /// never selected as coordinator, and quorums are majorities of the
    /// *active* processes only. With an empty `passive` set this is
    /// byte-identical to the classic algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if `passive` names a process outside the
    /// system, or if no active process remains.
    pub fn with_membership(me: ProcessId, n: usize, offset: u64, passive: ProcessSet) -> Self {
        assert!(n > 0, "system must have at least one process");
        assert!(
            passive.difference(ProcessSet::full(n)).is_empty(),
            "passive set names processes outside the system"
        );
        assert!(passive.len() < n, "at least one process must stay active");
        CtMachine {
            me,
            n,
            coord_offset: offset,
            passive,
            round: 0,
            estimate: None,
            ts: 0,
            current_proposal: None,
            wait: Wait::NotStarted,
            decided: false,
            estimates: BTreeMap::new(),
            proposals: BTreeMap::new(),
            acks: BTreeMap::new(),
            nacks: BTreeMap::new(),
            _policy: PhantomData,
        }
    }

    /// The majority quorum `⌈(a+1)/2⌉` over the `a` *active* processes
    /// (all `n` when no passive set is configured).
    fn quorum(&self) -> usize {
        quorum::majority(self.n - self.passive.len())
    }

    fn coord(&self, round: u64) -> ProcessId {
        if self.passive.is_empty() {
            return ProcessId::coordinator_of_round(round + self.coord_offset, self.n);
        }
        // Rotate over the sorted active ids only: a passive process never
        // coordinates, so no round is wasted waiting to suspect a replica
        // that by design stays silent.
        let actives = self.n - self.passive.len();
        let idx = ((round + self.coord_offset) % actives as u64) as usize;
        ProcessId::all(self.n)
            .filter(|p| !self.passive.contains(*p))
            .nth(idx)
            // lint:allow(P1): local invariant, not remote data — the constructor asserts at least one active process
            .expect("at least one active process")
    }

    /// Current round (for tests and debugging).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current `estimate_p` (for tests and debugging).
    pub fn estimate(&self) -> Option<&V> {
        self.estimate.as_ref()
    }

    /// Current timestamp `ts_p` (for tests and debugging).
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Decides `value` (exactly once) and R-broadcasts the decision:
    /// the local delivery plus an eager relay on first receipt gives the
    /// reliable-broadcast semantics of Algorithm 2 lines 37–41.
    fn decide(&mut self, value: V, out: &mut ConsOut<V>) {
        if self.decided {
            return;
        }
        self.decided = true;
        self.wait = Wait::Done;
        out.sends.push((ConsDest::Others, ConsMsg::Decide { value: value.clone() }));
        out.decision = Some(value);
        // Round-keyed buffers are dead weight now.
        self.estimates.clear();
        self.proposals.clear();
        self.acks.clear();
        self.nacks.clear();
    }

    /// Advances to the next round and performs its entry steps. Loops when
    /// a round resolves immediately (e.g. the next coordinator is already
    /// suspected).
    fn enter_next_round(&mut self, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        loop {
            if self.decided {
                return;
            }
            self.round += 1;
            let r = self.round;
            let c = self.coord(r);
            self.current_proposal = None;

            // Phase 1: send the current estimate to the round's coordinator
            // (rounds > 1 only; in round 1 the coordinator uses its own).
            if r > 1 {
                // lint:allow(P1): local invariant, not remote data — propose() sets the estimate before any round is entered
                let estimate = self.estimate.clone().expect("estimate set at propose");
                out.sends
                    .push((ConsDest::To(c), ConsMsg::CtEstimate { round: r, estimate, ts: self.ts }));
            }

            if c == self.me {
                if r == 1 {
                    // Phase 2, first round: propose our own estimate
                    // (Algorithm 2 line 20).
                    // lint:allow(P1): local invariant, not remote data — propose() sets the estimate before round 1 starts
                    let proposal = self.estimate.clone().expect("estimate set at propose");
                    self.broadcast_proposal(proposal, out);
                    return;
                }
                // Phase 2: gather ⌈(n+1)/2⌉ estimates (line 15).
                self.wait = Wait::CoordEstimates;
                if self.try_select_proposal(env, out) {
                    return;
                }
                return; // still gathering
            }

            // Phase 3 as a non-coordinator: the proposal may already be
            // buffered, or the coordinator may already be suspected.
            self.wait = Wait::Proposal;
            if let Some(v) = self.proposals.get(&r).cloned() {
                self.handle_proposal(v, env, out);
                if self.wait == Wait::Proposal {
                    // handle_proposal advanced us via recursion guard; cannot
                    // happen, but keep the loop well-founded.
                    return;
                }
                return;
            }
            if env.suspected.contains(c) {
                // Suspect the coordinator outright: nack and try the next
                // round (Algorithm 2 lines 31–32).
                out.sends.push((ConsDest::To(c), ConsMsg::CtNack { round: r }));
                continue;
            }
            return; // wait for the proposal or a suspicion
        }
    }

    /// Phase 2 completion check: with a majority of estimates for the
    /// current round, select the one with the largest timestamp
    /// (deterministic tie-break: smallest sender id) and broadcast it.
    /// Returns `true` if a proposal went out.
    fn try_select_proposal(&mut self, _env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) -> bool {
        let r = self.round;
        let Some(received) = self.estimates.get(&r) else { return false };
        if received.len() < self.quorum() {
            return false;
        }
        let (_, (value, _ts)) = received
            .iter()
            .max_by_key(|(sender, (_, ts))| (*ts, std::cmp::Reverse(**sender)))
            // lint:allow(P1): unreachable — the quorum check above guarantees `received` is nonempty
            .expect("nonempty by quorum check");
        let selected = value.clone();
        if P::COORDINATOR_ADOPTS_SELECTION {
            // Original CT: the coordinator folds the selection into its own
            // estimate. (Algorithm 2 deliberately does NOT do this — the
            // coordinator may lack msgs(selected); see §3.2.2.)
            self.estimate = Some(selected.clone());
        }
        self.broadcast_proposal(selected, out);
        true
    }

    /// Sends the round proposal to everyone (self included) and moves to
    /// Phase 4.
    fn broadcast_proposal(&mut self, proposal: V, out: &mut ConsOut<V>) {
        self.current_proposal = Some(proposal.clone());
        out.sends.push((ConsDest::All, ConsMsg::CtProposal { round: self.round, estimate: proposal }));
        self.wait = Wait::CoordAcks;
    }

    /// Phase 3: react to the coordinator's proposal for the current round.
    fn handle_proposal(&mut self, v: V, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        let r = self.round;
        let c = self.coord(r);
        if P::accept_proposal(&v, env, out) {
            // Adopt: estimate_p ← v, ts_p ← r (Algorithm 2 lines 26–28).
            self.estimate = Some(v);
            self.ts = r;
            out.sends.push((ConsDest::To(c), ConsMsg::CtAck { round: r }));
        } else {
            // Refuse: the proposal's messages are missing (lines 29–30).
            out.sends.push((ConsDest::To(c), ConsMsg::CtNack { round: r }));
        }
        if c != self.me {
            // Non-coordinators proceed to the next round immediately.
            self.enter_next_round(env, out);
        }
        // The coordinator stays in Phase 4 (Wait::CoordAcks) — its own
        // ack/nack just sent will be counted like everyone else's.
    }

    /// Phase 4 completion check: decide on a majority of acks; abandon the
    /// round on the first nack.
    fn check_acks(&mut self, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        let r = self.round;
        if self.wait != Wait::CoordAcks {
            return;
        }
        if self.nacks.get(&r).is_some_and(|s| !s.is_empty()) {
            // Someone refused: next round (Algorithm 2 line 35, nack arm).
            self.enter_next_round(env, out);
            return;
        }
        if self.acks.get(&r).is_some_and(|s| s.len() >= self.quorum()) {
            // lint:allow(P1): local invariant, not remote data — broadcast_proposal() sets current_proposal before wait becomes CoordAcks
            let value = self.current_proposal.clone().expect("proposal set before Phase 4");
            self.decide(value, out);
        }
    }
}

impl<V: ConsensusValue, P: CtPolicy> SingleConsensus<V> for CtMachine<V, P> {
    fn propose(&mut self, v: V, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        assert_eq!(self.wait, Wait::NotStarted, "propose may be called only once");
        self.estimate = Some(v);
        self.ts = 0;
        self.enter_next_round(env, out);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ConsMsg<V>,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) {
        if self.decided {
            return;
        }
        match msg {
            ConsMsg::Decide { value } => {
                // R-deliver of a decision: decide and relay (lines 38–41).
                self.decide(value, out);
            }
            ConsMsg::CtEstimate { round, estimate, ts } => {
                if round < self.round {
                    return; // stale
                }
                self.estimates.entry(round).or_default().insert(from, (estimate, ts));
                if self.wait == Wait::CoordEstimates && round == self.round {
                    self.try_select_proposal(env, out);
                }
            }
            ConsMsg::CtProposal { round, estimate } => {
                if round < self.round {
                    return; // stale
                }
                if round == self.round
                    && (self.wait == Wait::Proposal
                        || (self.wait == Wait::CoordAcks && from == self.me))
                {
                    self.handle_proposal(estimate, env, out);
                } else {
                    self.proposals.insert(round, estimate);
                }
            }
            ConsMsg::CtAck { round } => {
                if round < self.round {
                    return;
                }
                self.acks.entry(round).or_default().insert(from);
                if round == self.round {
                    self.check_acks(env, out);
                }
            }
            ConsMsg::CtNack { round } => {
                if round < self.round {
                    return;
                }
                self.nacks.entry(round).or_default().insert(from);
                if round == self.round {
                    self.check_acks(env, out);
                }
            }
            // MR traffic does not belong to this algorithm.
            ConsMsg::MrPhase1 { .. } | ConsMsg::MrPhase2 { .. } => {}
        }
    }

    fn on_suspect(&mut self, p: ProcessId, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        if self.decided || self.wait != Wait::Proposal {
            return;
        }
        let c = self.coord(self.round);
        if p == c {
            // Phase 3, suspicion arm (Algorithm 2 lines 31–32).
            out.sends.push((ConsDest::To(c), ConsMsg::CtNack { round: self.round }));
            self.enter_next_round(env, out);
        }
    }

    fn has_decided(&self) -> bool {
        self.decided
    }

    fn name(&self) -> &'static str {
        P::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::LoopNet;
    use crate::value::AlwaysHeld;
    use iabc_types::{IdSet, MsgId};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ids(seqs: &[u64]) -> IdSet {
        IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(p(0), s)))
    }

    fn net(n: usize) -> LoopNet<IdSet, CtConsensus<IdSet>> {
        LoopNet::new(n, |q| CtConsensus::new(q, n), || Box::new(AlwaysHeld))
    }

    #[test]
    fn three_processes_same_proposal_decide_it() {
        let mut net = net(3);
        for q in 0..3 {
            net.propose(p(q), ids(&[1, 2]));
        }
        net.run();
        net.assert_all_decided(&ids(&[1, 2]));
    }

    #[test]
    fn decision_is_one_of_the_proposals() {
        let mut net = net(3);
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        let d = net.common_decision();
        assert!(
            [ids(&[0]), ids(&[1]), ids(&[2])].contains(&d),
            "decision {d:?} was never proposed"
        );
    }

    #[test]
    fn round_one_coordinator_wins_in_good_runs() {
        // Coordinator of round 1 is p1; its estimate should be decided.
        let mut net = net(3);
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        assert_eq!(net.common_decision(), ids(&[1]));
    }

    #[test]
    fn single_process_decides_own_value() {
        let mut net = net(1);
        net.propose(p(0), ids(&[7]));
        net.run();
        net.assert_all_decided(&ids(&[7]));
    }

    #[test]
    fn survives_crashed_round_one_coordinator() {
        let mut net = net(3);
        net.crash(p(1)); // round-1 coordinator silent from the start
        net.propose(p(0), ids(&[0]));
        net.propose(p(2), ids(&[2]));
        net.run(); // drains: everyone stuck waiting for p1
        assert!(!net.algos[0].has_decided());
        // ◇S eventually suspects p1 at both correct processes.
        net.suspect_at(p(0), p(1));
        net.suspect_at(p(2), p(1));
        net.run();
        // Round 2's coordinator is p2: its estimate gets decided.
        assert!(net.algos[0].has_decided() && net.algos[2].has_decided());
        assert_eq!(net.decisions[0], net.decisions[2]);
    }

    #[test]
    fn late_proposer_still_decides() {
        let mut net = net(3);
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run(); // p1+p2 reach a decision without p0 (majority = 2)
        assert!(net.algos[1].has_decided());
        assert!(!net.algos[0].has_decided());
        // p0 proposes later and decides from the relayed Decide.
        net.propose(p(0), ids(&[0]));
        net.run();
        assert!(net.algos[0].has_decided());
        assert_eq!(net.decisions[0], net.decisions[1]);
    }

    #[test]
    fn false_suspicion_does_not_break_agreement() {
        let mut net = net(3);
        // p0 falsely suspects the round-1 coordinator p1 from the start.
        net.suspect_at(p(0), p(1));
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        // All three still decide the same value.
        let d = net.common_decision();
        assert!([ids(&[0]), ids(&[1]), ids(&[2])].contains(&d));
    }

    #[test]
    #[should_panic(expected = "propose may be called only once")]
    fn double_propose_panics() {
        let mut net = net(3);
        net.propose(p(0), ids(&[0]));
        net.propose(p(0), ids(&[0]));
    }

    #[test]
    fn five_processes_with_two_crashes_terminate() {
        let n = 5;
        let mut net = LoopNet::new(n, |q| CtConsensus::<IdSet>::new(q, n), || Box::new(AlwaysHeld));
        net.crash(p(1));
        net.crash(p(2));
        for q in [0u16, 3, 4] {
            net.propose(p(q), ids(&[q as u64]));
        }
        net.run();
        for q in [0u16, 3, 4] {
            net.suspect_at(p(q), p(1));
            net.suspect_at(p(q), p(2));
        }
        net.run();
        for q in [0u16, 3, 4] {
            assert!(net.algos[q as usize].has_decided(), "p{q} undecided");
        }
        assert_eq!(net.decisions[0], net.decisions[3]);
        assert_eq!(net.decisions[3], net.decisions[4]);
    }

    #[test]
    fn membership_rotation_skips_passive_and_shrinks_quorum() {
        let mut passive = ProcessSet::new();
        passive.insert(p(3));
        let m: CtConsensus<IdSet> = CtMachine::with_membership(p(0), 4, 0, passive);
        // Rounds rotate over the sorted actives {p0, p1, p2} only: the
        // learner p3 never coordinates, so no round stalls on a process
        // that by design answers nothing.
        let coords: Vec<_> = (1..=6).map(|r| m.coord(r)).collect();
        assert_eq!(coords, vec![p(1), p(2), p(0), p(1), p(2), p(0)]);
        assert_eq!(m.quorum(), 2, "majority of the 3 actives, not of all 4");
    }

    #[test]
    fn empty_passive_set_matches_the_classic_rotation() {
        for offset in 0..5u64 {
            let classic: CtConsensus<IdSet> = CtMachine::with_coord_offset(p(1), 4, offset);
            let member: CtConsensus<IdSet> =
                CtMachine::with_membership(p(1), 4, offset, ProcessSet::new());
            for r in 1..=9 {
                assert_eq!(classic.coord(r), member.coord(r));
            }
            assert_eq!(classic.quorum(), member.quorum());
        }
    }

    #[test]
    #[should_panic(expected = "at least one process must stay active")]
    fn all_passive_membership_panics() {
        let _: CtConsensus<IdSet> =
            CtMachine::with_membership(p(0), 2, 0, ProcessSet::full(2));
    }

    #[test]
    #[should_panic(expected = "outside the system")]
    fn passive_outside_the_system_panics() {
        let mut passive = ProcessSet::new();
        passive.insert(p(7));
        let _: CtConsensus<IdSet> = CtMachine::with_membership(p(0), 3, 0, passive);
    }
}
