//! **Algorithm 2**: the Chandra–Toueg ◇S *indirect consensus* algorithm.
//!
//! This is the paper's adaptation of CT consensus to message identifiers.
//! Relative to the original (see [`crate::ct`]), the bold-line changes are:
//!
//! * **Lines 25–30**: a process acks the coordinator's proposal `v` only if
//!   `rcv(v)` holds — i.e. it actually holds `msgs(v)`; otherwise it nacks.
//!   Consequently every adopted estimate is *witnessed by its holder*, so a
//!   v-valent configuration (a majority holds estimate `v`) is always
//!   v-stable (a majority holds `msgs(v)`), giving the **No loss** property.
//! * **Lines 2/18/20/21/37**: the coordinator's relayed proposal
//!   (`estimate_c`) is kept separate from its own estimate (`estimate_p`),
//!   because the coordinator may relay a value whose messages it has never
//!   received — adopting it blindly would re-create the §2.2 bug one level
//!   up.
//!
//! Resilience is unchanged: `f < n/2` — the paper's point being that for CT
//! the adaptation is cheap, in contrast to Mostéfaoui–Raynal
//! ([`crate::MrIndirect`]) where it costs resilience.

use crate::ct::{CtMachine, CtPolicy};
use crate::value::ConsensusValue;
use crate::{ConsEnv, ConsOut};

/// Policy implementing Algorithm 2's bold lines.
#[derive(Debug, Default, Clone, Copy)]
pub struct IndirectCt;

impl CtPolicy for IndirectCt {
    fn accept_proposal<V: ConsensusValue>(
        v: &V,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> bool {
        // Algorithm 2 line 25: accept only if msgs(v) have been received.
        env.check_rcv(v, out)
    }

    // Algorithm 2 line 18: the selection becomes estimate_c, NOT estimate_p.
    const COORDINATOR_ADOPTS_SELECTION: bool = false;
    const NAME: &'static str = "ct-indirect";
}

/// The Chandra–Toueg-based ◇S indirect consensus algorithm (Algorithm 2).
///
/// Majority quorum, `f < n/2`, No loss guaranteed through the `rcv` gate.
pub type CtIndirect<V> = CtMachine<V, IndirectCt>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::LoopNet;
    use crate::value::{AlwaysHeld, HeldIds, RcvOracle};
    use crate::SingleConsensus;
    use iabc_types::{IdSet, MsgId, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ids(seqs: &[u64]) -> IdSet {
        IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(p(0), s)))
    }

    fn held(seqs: &[u64]) -> Box<dyn RcvOracle<IdSet>> {
        Box::new(HeldIds { held: ids(seqs), cost_per_id: iabc_types::Duration::ZERO })
    }

    #[test]
    fn decides_when_everyone_holds_the_messages() {
        let n = 3;
        let mut net = LoopNet::new(n, |q| CtIndirect::<IdSet>::new(q, n), || held(&[0, 1, 2]));
        for q in 0..3 {
            net.propose(p(q), ids(&[0, 1]));
        }
        net.run();
        net.assert_all_decided(&ids(&[0, 1]));
    }

    #[test]
    fn missing_messages_cause_nack_and_new_round() {
        // Round-1 coordinator p1 proposes {9}; p0 and p2 do not hold msg 9,
        // so they nack. p1's own ack is not a majority. Round 2 (coord p2)
        // then proposes p2's own estimate {1}, which everyone holds.
        let n = 3;
        let mut net = LoopNet::new(n, |q| CtIndirect::<IdSet>::new(q, n), || held(&[1]));
        net.set_oracle(p(1), held(&[1, 9]));
        net.propose(p(0), ids(&[1]));
        net.propose(p(1), ids(&[9]));
        net.propose(p(2), ids(&[1]));
        net.run();
        let d = net.common_decision();
        assert_eq!(d, ids(&[1]), "the unheld proposal must not survive");
    }

    #[test]
    fn coordinator_does_not_adopt_unheld_selection() {
        // Direct white-box check of the estimate_c / estimate_p distinction:
        // a round-2 coordinator relays the highest-timestamp estimate but
        // must not make it its own if rcv fails.
        use crate::msg::ConsMsg;
        use crate::ConsEnv;
        use iabc_types::ProcessSet;

        let n = 3;
        // p0 holds only message 5; it will coordinate round 3 (coord(3)=p0).
        let oracle = HeldIds { held: ids(&[5]), cost_per_id: iabc_types::Duration::ZERO };
        let mut algo = CtIndirect::<IdSet>::new(p(0), n);
        let env = ConsEnv::new(&oracle, ProcessSet::new());
        let mut out = crate::ConsOut::new();
        algo.propose(ids(&[5]), &env, &mut out);
        assert_eq!(algo.round(), 1);

        // Push p0 to round 3 via nacks... simpler: feed it the coordinator
        // proposals it is waiting for with values it cannot hold, so it
        // nacks and advances.
        let mut out = crate::ConsOut::new();
        algo.on_message(
            p(1),
            ConsMsg::CtProposal { round: 1, estimate: ids(&[7]) },
            &env,
            &mut out,
        );
        // p0 nacked round 1 (missing msg 7), moved to round 2.
        assert_eq!(algo.round(), 2);
        assert_eq!(algo.estimate(), Some(&ids(&[5])), "estimate unchanged after nack");
        let mut out = crate::ConsOut::new();
        algo.on_message(
            p(2),
            ConsMsg::CtProposal { round: 2, estimate: ids(&[8]) },
            &env,
            &mut out,
        );
        // Round 3: p0 is the coordinator; it waits for estimates.
        assert_eq!(algo.round(), 3);
        // Two estimates arrive; the larger timestamp carries ids {7}, which
        // p0 does NOT hold.
        let mut out = crate::ConsOut::new();
        algo.on_message(
            p(1),
            ConsMsg::CtEstimate { round: 3, estimate: ids(&[7]), ts: 2 },
            &env,
            &mut out,
        );
        let mut out = crate::ConsOut::new();
        algo.on_message(
            p(2),
            ConsMsg::CtEstimate { round: 3, estimate: ids(&[5]), ts: 0 },
            &env,
            &mut out,
        );
        // The proposal broadcast must carry {7} (highest ts wins)...
        let proposal = out
            .sends
            .iter()
            .find_map(|(_, m)| match m {
                ConsMsg::CtProposal { estimate, .. } => Some(estimate.clone()),
                _ => None,
            })
            .expect("coordinator must propose");
        assert_eq!(proposal, ids(&[7]));
        // ...but p0's own estimate_p must still be {5}: Algorithm 2 keeps
        // estimate_c separate (the original CT would have adopted {7} here).
        assert_eq!(algo.estimate(), Some(&ids(&[5])));
    }

    #[test]
    fn rcv_cost_is_charged_on_proposal_checks() {
        use crate::msg::ConsMsg;
        use crate::ConsEnv;
        use iabc_types::{Duration, ProcessSet};

        let n = 3;
        let oracle = HeldIds { held: ids(&[0, 1]), cost_per_id: Duration::from_micros(5) };
        let mut algo = CtIndirect::<IdSet>::new(p(0), n);
        let env = ConsEnv::new(&oracle, ProcessSet::new());
        let mut out = crate::ConsOut::new();
        algo.propose(ids(&[0]), &env, &mut out);
        let mut out = crate::ConsOut::new();
        algo.on_message(
            p(1),
            ConsMsg::CtProposal { round: 1, estimate: ids(&[0, 1]) },
            &env,
            &mut out,
        );
        // Two ids checked at 5 µs each.
        assert_eq!(out.work, Duration::from_micros(10));
    }

    #[test]
    fn behaves_like_original_when_everything_is_held() {
        // With an always-true oracle the indirect algorithm must coincide
        // with the original in fault-free runs.
        let n = 3;
        let mut net = LoopNet::new(n, |q| CtIndirect::<IdSet>::new(q, n), || Box::new(AlwaysHeld));
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        assert_eq!(net.common_decision(), ids(&[1])); // round-1 coordinator
    }

    #[test]
    fn no_loss_scenario_of_section_2_2_is_prevented() {
        // The §2.2 execution: p1 proposes {id(m)} where only p1 holds m;
        // p1 is the round-1 coordinator and crashes right after proposing.
        // The other processes nack (rcv fails) and decide a value whose
        // messages they actually hold.
        let n = 3;
        let mut net = LoopNet::new(n, |q| CtIndirect::<IdSet>::new(q, n), || held(&[1]));
        net.set_oracle(p(1), held(&[1, 99]));
        net.propose(p(1), ids(&[99])); // proposal goes out...
        net.crash(p(1)); // ...then the initiator dies
        net.propose(p(0), ids(&[1]));
        net.propose(p(2), ids(&[1]));
        net.run();
        // p0/p2 nacked round 1 and are waiting in round 2 (coord p2)...
        net.suspect_at(p(0), p(1));
        net.suspect_at(p(2), p(1));
        net.run();
        // Decision must be {1} — never the unheld {99}.
        for i in [0, 2] {
            assert_eq!(net.decisions[i], Some(ids(&[1])), "p{i}");
        }
    }
}
