//! ◇S consensus and indirect consensus.
//!
//! This crate contains the four agreement algorithms studied by the paper:
//!
//! | Type | Paper reference | Quorum | Resilience |
//! |------|-----------------|--------|------------|
//! | [`CtConsensus`] | Chandra–Toueg ◇S consensus \[2\] | `⌈(n+1)/2⌉` | `f < n/2` |
//! | [`CtIndirect`]  | **Algorithm 2** (adapted CT)      | `⌈(n+1)/2⌉` | `f < n/2` |
//! | [`MrConsensus`] | Mostéfaoui–Raynal ◇S consensus \[7\] | `⌈(n+1)/2⌉` | `f < n/2` |
//! | [`MrIndirect`]  | **Algorithm 3** (adapted MR)      | `⌈(2n+1)/3⌉` | `f < n/3` |
//!
//! The *direct* algorithms ([`CtConsensus`], [`MrConsensus`]) are generic
//! over the decided value: run them on full message sets and you get the
//! classic reduction of atomic broadcast to consensus; run them on bare
//! identifier sets and you get the **faulty** stack of the paper's §2.2
//! (fast, but able to violate atomic broadcast Validity after one crash).
//!
//! The *indirect* algorithms consult an [`RcvOracle`] — the paper's `rcv`
//! function — before adopting any estimate, which establishes the
//! *No loss* property: every v-valent configuration is v-stable.
//!
//! All algorithms are single-instance sans-io state machines implementing
//! [`SingleConsensus`]; [`InstanceManager`] multiplexes the numbered
//! instances `k = 1, 2, …` that the atomic broadcast reduction executes.

pub mod ct;
pub mod ct_indirect;
pub mod manager;
pub mod mr;
pub mod mr_indirect;
pub mod msg;
pub mod value;

use std::fmt;

use iabc_types::{Duration, ProcessId, ProcessSet};

pub use ct::CtConsensus;
pub use ct_indirect::CtIndirect;
pub use manager::{InstanceManager, MgrOut};
pub use mr::MrConsensus;
pub use mr_indirect::MrIndirect;
pub use msg::{ConsDest, ConsMsg};
pub use value::{AlwaysHeld, ConsensusValue, RcvOracle};

/// Output buffer filled by consensus callbacks.
#[derive(Debug)]
pub struct ConsOut<V> {
    /// Messages to send.
    pub sends: Vec<(ConsDest, ConsMsg<V>)>,
    /// The decision, if this callback reached one (at most once ever).
    pub decision: Option<V>,
    /// CPU time consumed by `rcv()` evaluations during this callback
    /// (simulation accounting; see the paper's Figure 3 discussion).
    pub work: Duration,
}

impl<V> ConsOut<V> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        ConsOut { sends: Vec::new(), decision: None, work: Duration::ZERO }
    }

    /// Whether nothing at all was produced — no protocol effects *and* no
    /// accounting. Callers probing for protocol activity usually want
    /// [`ConsOut::has_effects`]: a cost-only callback (`work > 0`, nothing
    /// sent, no decision) is not activity.
    pub fn is_empty(&self) -> bool {
        !self.has_effects() && self.work.is_zero()
    }

    /// Whether the callback produced protocol effects (sends or a
    /// decision), ignoring accrued `rcv()` accounting.
    pub fn has_effects(&self) -> bool {
        !self.sends.is_empty() || self.decision.is_some()
    }
}

impl<V> Default for ConsOut<V> {
    fn default() -> Self {
        ConsOut::new()
    }
}

/// Read-only environment for a consensus callback: the `rcv` oracle and the
/// current failure-detector output `D_p`.
pub struct ConsEnv<'a, V> {
    /// The paper's `rcv` function (always-true for direct algorithms).
    pub rcv: &'a dyn RcvOracle<V>,
    /// Currently suspected processes.
    pub suspected: ProcessSet,
}

impl<'a, V> ConsEnv<'a, V> {
    /// Creates an environment.
    pub fn new(rcv: &'a dyn RcvOracle<V>, suspected: ProcessSet) -> Self {
        ConsEnv { rcv, suspected }
    }

    /// Evaluates `rcv(v)`, charging its CPU cost to `out`.
    pub fn check_rcv(&self, v: &V, out: &mut ConsOut<V>) -> bool {
        out.work += self.rcv.cost(v);
        self.rcv.rcv(v)
    }
}

/// A single-instance consensus state machine.
///
/// The composed node (or the [`InstanceManager`]) calls `propose` exactly
/// once, routes incoming [`ConsMsg`]s to `on_message` and newly-suspected
/// processes to `on_suspect`. A decision is reported through
/// [`ConsOut::decision`] exactly once.
pub trait SingleConsensus<V: ConsensusValue>: fmt::Debug {
    /// Starts the instance with initial value `v`
    /// (the paper's `propose(v)` / `propose(v, rcv)`).
    fn propose(&mut self, v: V, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>);

    /// Handles an incoming consensus message.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ConsMsg<V>,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    );

    /// Informs the instance that `p` is now suspected.
    fn on_suspect(&mut self, p: ProcessId, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>);

    /// Whether this instance has decided.
    fn has_decided(&self) -> bool;

    /// Short human-readable algorithm name used in experiment reports.
    fn name(&self) -> &'static str;
}

#[doc(hidden)]
pub mod testing {
    //! A synchronous loop-back network for driving consensus state machines
    //! in tests: FIFO or seeded-random message delivery, per-process
    //! oracles and suspicion sets, crash and (scripted) suspicion
    //! injection, plus built-in Uniform Agreement checking on every
    //! decision.
    //!
    //! Exposed (doc-hidden) so integration and property tests outside this
    //! crate can drive the algorithms without an executor.

    use std::collections::VecDeque;

    use super::*;

    /// Messages for a process that has not yet proposed are buffered, like
    /// the real [`InstanceManager`] does.
    pub struct LoopNet<V: ConsensusValue, A: SingleConsensus<V>> {
        pub algos: Vec<A>,
        pub oracles: Vec<Box<dyn RcvOracle<V>>>,
        pub suspected: Vec<ProcessSet>,
        pub crashed: Vec<bool>,
        pub proposed: Vec<bool>,
        pub decisions: Vec<Option<V>>,
        queue: VecDeque<(ProcessId, ProcessId, ConsMsg<V>)>,
        inbox: Vec<VecDeque<(ProcessId, ConsMsg<V>)>>,
        n: usize,
    }

    impl<V: ConsensusValue, A: SingleConsensus<V>> LoopNet<V, A> {
        pub fn new(
            n: usize,
            mut make: impl FnMut(ProcessId) -> A,
            mut oracle: impl FnMut() -> Box<dyn RcvOracle<V>>,
        ) -> Self {
            LoopNet {
                algos: ProcessId::all(n).map(&mut make).collect(),
                oracles: (0..n).map(|_| oracle()).collect(),
                suspected: vec![ProcessSet::new(); n],
                crashed: vec![false; n],
                proposed: vec![false; n],
                decisions: vec![None; n],
                queue: VecDeque::new(),
                inbox: (0..n).map(|_| VecDeque::new()).collect(),
                n,
            }
        }

        /// Replaces the oracle of process `p` (to script `rcv` behaviour).
        pub fn set_oracle(&mut self, p: ProcessId, oracle: Box<dyn RcvOracle<V>>) {
            self.oracles[p.as_usize()] = oracle;
        }

        /// Marks `p` crashed: it stops processing (messages it already sent
        /// still deliver — crash-after-send semantics).
        pub fn crash(&mut self, p: ProcessId) {
            self.crashed[p.as_usize()] = true;
        }

        /// Makes `at`'s detector suspect `target` and notifies the algorithm.
        pub fn suspect_at(&mut self, at: ProcessId, target: ProcessId) {
            self.suspected[at.as_usize()].insert(target);
            if self.crashed[at.as_usize()] || !self.proposed[at.as_usize()] {
                return;
            }
            let i = at.as_usize();
            let env = ConsEnv::new(self.oracles[i].as_ref(), self.suspected[i]);
            let mut out = ConsOut::new();
            self.algos[i].on_suspect(target, &env, &mut out);
            self.dispatch(at, out);
        }

        pub fn propose(&mut self, p: ProcessId, v: V) {
            let i = p.as_usize();
            assert!(!self.crashed[i], "cannot propose at a crashed process");
            self.proposed[i] = true;
            let env = ConsEnv::new(self.oracles[i].as_ref(), self.suspected[i]);
            let mut out = ConsOut::new();
            self.algos[i].propose(v, &env, &mut out);
            self.dispatch(p, out);
            // Flush messages buffered before the propose.
            while let Some((from, msg)) = self.inbox[i].pop_front() {
                self.deliver(from, p, msg);
            }
        }

        fn deliver(&mut self, from: ProcessId, to: ProcessId, msg: ConsMsg<V>) {
            let i = to.as_usize();
            if self.crashed[i] {
                return;
            }
            if !self.proposed[i] {
                self.inbox[i].push_back((from, msg));
                return;
            }
            let env = ConsEnv::new(self.oracles[i].as_ref(), self.suspected[i]);
            let mut out = ConsOut::new();
            self.algos[i].on_message(from, msg, &env, &mut out);
            self.dispatch(to, out);
        }

        fn dispatch(&mut self, from: ProcessId, out: ConsOut<V>) {
            if let Some(v) = out.decision {
                let i = from.as_usize();
                assert!(self.decisions[i].is_none(), "uniform integrity violated at {from}");
                // Uniform agreement across the whole run:
                for (j, d) in self.decisions.iter().enumerate() {
                    if let Some(d) = d {
                        assert_eq!(
                            d, &v,
                            "uniform agreement violated: p{j} decided {d:?}, {from} decided {v:?}"
                        );
                    }
                }
                self.decisions[i] = Some(v);
            }
            for (dest, msg) in out.sends {
                match dest {
                    ConsDest::To(q) => self.queue.push_back((from, q, msg)),
                    ConsDest::All => {
                        for q in ProcessId::all(self.n) {
                            self.queue.push_back((from, q, msg.clone()));
                        }
                    }
                    ConsDest::Others => {
                        for q in ProcessId::all(self.n) {
                            if q != from {
                                self.queue.push_back((from, q, msg.clone()));
                            }
                        }
                    }
                }
            }
        }

        /// Delivers queued messages FIFO until quiescent.
        ///
        /// # Panics
        ///
        /// Panics after 100 000 deliveries (livelock guard), on duplicate
        /// decision, or on an agreement violation.
        pub fn run(&mut self) {
            let mut steps = 0u64;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                self.deliver(from, to, msg);
                steps += 1;
                assert!(steps < 100_000, "livelock: message churn without progress");
            }
        }

        /// Pops the oldest queued message without delivering it (for
        /// fine-grained test drivers).
        pub fn pop_front(&mut self) -> Option<(ProcessId, ProcessId, ConsMsg<V>)> {
            self.queue.pop_front()
        }

        /// Number of queued (undelivered) messages.
        pub fn queue_len(&self) -> usize {
            self.queue.len()
        }

        /// Removes the `idx`-th queued message (for test schedulers).
        pub fn remove_at(&mut self, idx: usize) -> Option<(ProcessId, ProcessId, ConsMsg<V>)> {
            self.queue.remove(idx)
        }

        /// Delivers one message taken via [`LoopNet::pop_front`].
        pub fn deliver_one(&mut self, from: ProcessId, to: ProcessId, msg: ConsMsg<V>) {
            self.deliver(from, to, msg);
        }

        /// Delivers queued messages in a *seeded-random* order until
        /// quiescent — exploring asynchronous interleavings FIFO delivery
        /// never produces.
        ///
        /// # Panics
        ///
        /// Panics after 200 000 deliveries, on duplicate decision, or on
        /// an agreement violation.
        pub fn run_random(&mut self, seed: u64) {
            // Tiny embedded xorshift so the crate needs no rand dependency.
            let mut state = seed | 1;
            let mut next = |bound: usize| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as usize) % bound
            };
            let mut steps = 0u64;
            while !self.queue.is_empty() {
                let idx = next(self.queue.len());
                let (from, to, msg) = self.queue.remove(idx).expect("index in bounds");
                self.deliver(from, to, msg);
                steps += 1;
                assert!(steps < 200_000, "livelock under random scheduling");
            }
        }

        /// The decision shared by all live processes.
        ///
        /// # Panics
        ///
        /// Panics if some live process is undecided.
        pub fn common_decision(&self) -> V {
            let mut result: Option<V> = None;
            for i in 0..self.n {
                if self.crashed[i] {
                    continue;
                }
                let d = self.decisions[i].clone().unwrap_or_else(|| panic!("p{i} undecided"));
                if let Some(prev) = &result {
                    assert_eq!(prev, &d);
                }
                result = Some(d);
            }
            result.expect("no live process")
        }

        /// Asserts every live process decided exactly `v`.
        pub fn assert_all_decided(&self, v: &V) {
            assert_eq!(&self.common_decision(), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::IdSet;

    #[test]
    fn cons_out_starts_empty() {
        let out: ConsOut<IdSet> = ConsOut::new();
        assert!(out.is_empty());
        assert!(!out.has_effects());
    }

    #[test]
    fn cost_only_output_is_not_protocol_activity() {
        // Regression: a callback that only evaluated rcv() (work > 0,
        // nothing sent, no decision) used to flip is_empty() and look like
        // protocol activity to callers.
        let mut out: ConsOut<IdSet> = ConsOut::new();
        out.work += Duration::from_micros(3);
        assert!(!out.has_effects(), "accounting alone is not activity");
        assert!(!out.is_empty(), "but the buffer is not empty either");
        out.sends.push((ConsDest::All, ConsMsg::CtAck { round: 1 }));
        assert!(out.has_effects());
    }

    #[test]
    fn env_check_rcv_charges_cost() {
        #[derive(Debug)]
        struct Expensive;
        impl RcvOracle<IdSet> for Expensive {
            fn rcv(&self, _v: &IdSet) -> bool {
                true
            }
            fn cost(&self, _v: &IdSet) -> Duration {
                Duration::from_micros(7)
            }
        }
        let env = ConsEnv::new(&Expensive, ProcessSet::new());
        let mut out = ConsOut::new();
        assert!(env.check_rcv(&IdSet::new(), &mut out));
        assert_eq!(out.work, Duration::from_micros(7));
    }
}
