//! Multiplexing of numbered consensus instances.
//!
//! The atomic broadcast reduction (Algorithm 1) executes a *sequence* of
//! consensus instances `k = 1, 2, …`. Processes may be in different
//! instances at the same time, so the manager:
//!
//! * buffers messages for instances this process has not yet proposed in
//!   (they are flushed when `propose(k, …)` happens),
//! * routes messages of running instances to their state machine,
//! * answers messages of already-decided instances with the decision (a
//!   cheap retransmission path for processes that lost the decide relay),
//! * fans failure-detector suspicions out to every running instance.

use std::collections::BTreeMap;

use iabc_types::{Duration, ProcessId, ProcessSet, Time};

use crate::msg::{ConsDest, ConsMsg};
use crate::value::{ConsensusValue, RcvOracle};
use crate::{ConsEnv, ConsOut, SingleConsensus};

/// Output buffer of manager calls: instance-tagged sends and decisions.
#[derive(Debug)]
pub struct MgrOut<V> {
    /// Messages to send, tagged with their instance number.
    pub sends: Vec<(u64, ConsDest, ConsMsg<V>)>,
    /// Instances that decided during this call.
    pub decisions: Vec<(u64, V)>,
    /// Accumulated `rcv()` evaluation cost.
    pub work: Duration,
}

impl<V> MgrOut<V> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        MgrOut { sends: Vec::new(), decisions: Vec::new(), work: Duration::ZERO }
    }

    /// Whether nothing at all was produced — no protocol effects *and* no
    /// accounting. Callers probing for protocol activity almost always want
    /// [`MgrOut::has_effects`] instead: a cost-only call (`work > 0`,
    /// nothing sent, nothing decided) is *not* activity.
    pub fn is_empty(&self) -> bool {
        !self.has_effects() && self.work.is_zero()
    }

    /// Whether the call produced protocol effects (sends or decisions),
    /// ignoring accrued `rcv()` accounting.
    pub fn has_effects(&self) -> bool {
        !self.sends.is_empty() || !self.decisions.is_empty()
    }
}

impl<V> Default for MgrOut<V> {
    fn default() -> Self {
        MgrOut::new()
    }
}

enum Slot<V, A> {
    Running(A),
    Done(V),
}

/// Manages the numbered instances of one consensus algorithm type `A`.
pub struct InstanceManager<V, A> {
    factory: Box<dyn FnMut(u64) -> A + Send>,
    slots: BTreeMap<u64, Slot<V, A>>,
    /// Messages for instances not yet proposed in.
    pending: BTreeMap<u64, Vec<(ProcessId, ConsMsg<V>)>>,
    /// When each instance was proposed locally (see
    /// [`InstanceManager::note_proposed`]) — the basis of per-instance
    /// decision-latency reporting for adaptive pipeline controllers.
    proposed_at: BTreeMap<u64, Time>,
    highest_started: u64,
    /// Instances strictly below this were garbage-collected; their traffic
    /// is dropped (peers learn decisions from each other's relays).
    gc_floor: u64,
}

impl<V, A> std::fmt::Debug for InstanceManager<V, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceManager")
            .field("instances", &self.slots.len())
            .field("highest_started", &self.highest_started)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<V: ConsensusValue, A: SingleConsensus<V>> InstanceManager<V, A> {
    /// Creates a manager that builds instance `k`'s state machine with
    /// `factory(k)`.
    pub fn new(factory: impl FnMut(u64) -> A + Send + 'static) -> Self {
        InstanceManager {
            factory: Box::new(factory),
            slots: BTreeMap::new(),
            pending: BTreeMap::new(),
            proposed_at: BTreeMap::new(),
            highest_started: 0,
            gc_floor: 0,
        }
    }

    /// Records when instance `k` was proposed locally. Callers that want
    /// per-instance decision latency (the adaptive pipeline controller)
    /// call this right after [`InstanceManager::propose`] and read the
    /// elapsed time back with [`InstanceManager::decision_latency`].
    pub fn note_proposed(&mut self, k: u64, at: Time) {
        self.proposed_at.insert(k, at);
    }

    /// Reports how long instance `k` took from its local proposal (see
    /// [`InstanceManager::note_proposed`]) to `decided_at`, consuming the
    /// timestamp. Returns `None` when the proposal instant was never
    /// recorded (or was already consumed / garbage-collected).
    pub fn decision_latency(&mut self, k: u64, decided_at: Time) -> Option<Duration> {
        self.proposed_at.remove(&k).map(|at| decided_at.elapsed_since(at))
    }

    /// Number of proposal timestamps awaiting their decision (for tests
    /// and footprint probes).
    pub fn latency_probes(&self) -> usize {
        self.proposed_at.len()
    }

    /// Highest instance number proposed in so far (0 = none).
    pub fn highest_started(&self) -> u64 {
        self.highest_started
    }

    /// The decision of instance `k`, if it has decided.
    pub fn decision(&self, k: u64) -> Option<&V> {
        match self.slots.get(&k)? {
            Slot::Done(v) => Some(v),
            Slot::Running(a) => {
                debug_assert!(!a.has_decided(), "decided instance still Running");
                None
            }
        }
    }

    /// Whether instance `k` was proposed in and has not decided yet.
    pub fn is_running(&self, k: u64) -> bool {
        matches!(self.slots.get(&k), Some(Slot::Running(_)))
    }

    /// Number of instances proposed in and not yet decided — the manager's
    /// view of the pipeline occupancy.
    pub fn running_count(&self) -> usize {
        self.slots.values().filter(|s| matches!(s, Slot::Running(_))).count()
    }

    /// Instance numbers currently running (proposed, undecided), ascending.
    pub fn running_instances(&self) -> Vec<u64> {
        self.slots
            .iter()
            .filter_map(|(k, s)| matches!(s, Slot::Running(_)).then_some(*k))
            .collect()
    }

    /// Number of messages buffered for instances not yet proposed in.
    pub fn pending_messages(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Proposes in instance `k` (Algorithm 1 line 17), flushing any
    /// buffered messages for it.
    ///
    /// # Panics
    ///
    /// Panics if instance `k` was already proposed in.
    pub fn propose(
        &mut self,
        k: u64,
        v: V,
        rcv: &dyn RcvOracle<V>,
        suspected: ProcessSet,
        out: &mut MgrOut<V>,
    ) {
        assert!(!self.slots.contains_key(&k), "instance {k} already started");
        let mut algo = (self.factory)(k);
        let env = ConsEnv::new(rcv, suspected);
        let mut local = ConsOut::new();
        algo.propose(v, &env, &mut local);
        self.slots.insert(k, Slot::Running(algo));
        self.absorb(k, local, out);
        // Flush messages that arrived before we were ready.
        if let Some(buffered) = self.pending.remove(&k) {
            for (from, msg) in buffered {
                self.on_message(k, from, msg, rcv, suspected, out);
            }
        }
        self.highest_started = self.highest_started.max(k);
    }

    /// Routes a message of instance `k`.
    pub fn on_message(
        &mut self,
        k: u64,
        from: ProcessId,
        msg: ConsMsg<V>,
        rcv: &dyn RcvOracle<V>,
        suspected: ProcessSet,
        out: &mut MgrOut<V>,
    ) {
        match self.slots.get_mut(&k) {
            None => {
                if k < self.gc_floor {
                    return; // collected long ago; the sender will catch up
                }
                // Not started here yet: buffer until Algorithm 1 proposes.
                self.pending.entry(k).or_default().push((from, msg));
            }
            Some(Slot::Done(v)) => {
                // Help stragglers: answer anything but a Decide with the
                // decision (the sender is evidently still working on k).
                if !matches!(msg, ConsMsg::Decide { .. }) {
                    out.sends.push((k, ConsDest::To(from), ConsMsg::Decide { value: v.clone() }));
                }
            }
            Some(Slot::Running(algo)) => {
                let env = ConsEnv::new(rcv, suspected);
                let mut local = ConsOut::new();
                algo.on_message(from, msg, &env, &mut local);
                self.absorb(k, local, out);
            }
        }
    }

    /// Fans a new suspicion out to every running instance.
    pub fn on_suspect(
        &mut self,
        p: ProcessId,
        rcv: &dyn RcvOracle<V>,
        suspected: ProcessSet,
        out: &mut MgrOut<V>,
    ) {
        for k in self.running_instances() {
            if let Some(Slot::Running(algo)) = self.slots.get_mut(&k) {
                let env = ConsEnv::new(rcv, suspected);
                let mut local = ConsOut::new();
                algo.on_suspect(p, &env, &mut local);
                self.absorb(k, local, out);
            }
        }
    }

    /// Garbage-collects decided instances strictly below `k`, keeping the
    /// `keep_last` most recent of them as a retransmission cache for
    /// stragglers (their `Done` slots answer late messages with the
    /// decision). Running instances are never collected.
    ///
    /// Returns the number of slots freed. The atomic broadcast layer calls
    /// this as instances complete; in an infinite execution it bounds the
    /// manager's footprint to `O(keep_last)` decided values plus the live
    /// instance.
    pub fn gc_decided_below(&mut self, k: u64, keep_last: u64) -> usize {
        let cutoff = k.saturating_sub(keep_last);
        let doomed: Vec<u64> = self
            .slots
            .range(..cutoff)
            .filter_map(|(i, s)| matches!(s, Slot::Done(_)).then_some(*i))
            .collect();
        for i in &doomed {
            self.slots.remove(i);
            self.pending.remove(i);
        }
        // Timestamps of collected instances can never be read again;
        // running instances keep theirs even below the cutoff.
        let slots = &self.slots;
        self.proposed_at.retain(|i, _| *i >= cutoff || slots.contains_key(i));
        self.gc_floor = self.gc_floor.max(cutoff);
        doomed.len()
    }

    /// Number of slots currently retained (running + cached decided).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Merges a per-instance output buffer into the manager output,
    /// transitioning the slot if the instance decided.
    fn absorb(&mut self, k: u64, local: ConsOut<V>, out: &mut MgrOut<V>) {
        out.work += local.work;
        for (dest, msg) in local.sends {
            out.sends.push((k, dest, msg));
        }
        if let Some(v) = local.decision {
            self.slots.insert(k, Slot::Done(v.clone()));
            out.decisions.push((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ct::CtConsensus;
    use crate::value::AlwaysHeld;
    use iabc_types::{IdSet, MsgId};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ids(seqs: &[u64]) -> IdSet {
        IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(p(0), s)))
    }

    fn mgr(me: u16, n: usize) -> InstanceManager<IdSet, CtConsensus<IdSet>> {
        InstanceManager::new(move |_k| CtConsensus::new(p(me), n))
    }

    #[test]
    fn single_node_system_decides_every_instance() {
        let mut m = mgr(0, 1);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        // n = 1: the proposal loops through self-sends; feed them back.
        let mut guard = 0;
        while let Some((k, dest, msg)) = out.sends.pop() {
            // With n = 1, `Others` expands to nobody.
            if matches!(dest, ConsDest::Others) {
                continue;
            }
            m.on_message(k, p(0), msg, &AlwaysHeld, ProcessSet::new(), &mut out);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(m.decision(1), Some(&ids(&[1])));
        assert!(!m.is_running(1));
    }

    #[test]
    fn messages_before_propose_are_buffered_and_flushed() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        // A decide for instance 1 arrives before we proposed.
        m.on_message(
            1,
            p(2),
            ConsMsg::Decide { value: ids(&[9]) },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        assert!(m.decision(1).is_none());
        assert!(!out.has_effects(), "buffering must look like no protocol activity");
        assert!(out.is_empty());
        assert_eq!(m.pending_messages(), 1);
        // Proposing flushes the buffer: we decide instantly.
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        assert_eq!(m.decision(1), Some(&ids(&[9])));
        assert_eq!(out.decisions, vec![(1, ids(&[9]))]);
    }

    #[test]
    fn done_instances_answer_with_the_decision() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.on_message(
            1,
            p(2),
            ConsMsg::Decide { value: ids(&[7]) },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        assert_eq!(m.decision(1), Some(&ids(&[7])));
        // A straggler's estimate for instance 1 gets the decision back.
        let mut out = MgrOut::new();
        m.on_message(
            1,
            p(1),
            ConsMsg::CtEstimate { round: 2, estimate: ids(&[1]), ts: 0 },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        let (k, dest, msg) = &out.sends[0];
        assert_eq!(*k, 1);
        assert_eq!(*dest, ConsDest::To(p(1)));
        assert!(matches!(msg, ConsMsg::Decide { value } if value == &ids(&[7])));
    }

    #[test]
    #[should_panic(expected = "instance 1 already started")]
    fn double_propose_same_instance_panics() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
    }

    #[test]
    fn suspicions_reach_running_instances_only() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.propose(2, ids(&[2]), &AlwaysHeld, ProcessSet::new(), &mut out);
        // Decide instance 1.
        m.on_message(
            1,
            p(2),
            ConsMsg::Decide { value: ids(&[1]) },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        // Suspect round-1 coordinator p1: only instance 2 should react
        // (instance 1 is done). Instance 2 is waiting for p1's proposal.
        let mut suspected = ProcessSet::new();
        suspected.insert(p(1));
        let mut out = MgrOut::new();
        m.on_suspect(p(1), &AlwaysHeld, suspected, &mut out);
        assert!(out.sends.iter().all(|(k, _, _)| *k == 2));
        assert!(out.sends.iter().any(|(_, _, msg)| matches!(msg, ConsMsg::CtNack { .. })));
    }

    #[test]
    fn gc_prunes_old_decided_slots_only() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        for k in 1..=5u64 {
            m.propose(k, ids(&[k]), &AlwaysHeld, ProcessSet::new(), &mut out);
            if k < 5 {
                // Decide instances 1..4; instance 5 stays running.
                m.on_message(
                    k,
                    p(2),
                    ConsMsg::Decide { value: ids(&[k]) },
                    &AlwaysHeld,
                    ProcessSet::new(),
                    &mut out,
                );
            }
        }
        assert_eq!(m.slot_count(), 5);
        // Keep the 2 most recent decided below 5: instances 3 and 4 stay.
        let freed = m.gc_decided_below(5, 2);
        assert_eq!(freed, 2);
        assert_eq!(m.slot_count(), 3);
        assert!(m.decision(1).is_none(), "pruned");
        assert!(m.decision(3).is_some(), "cached");
        assert!(m.is_running(5), "running instances are never collected");
        // A straggler asking about a pruned instance is simply buffered
        // again (it will learn the decision from its own peers' relays).
        let mut out = MgrOut::new();
        m.on_message(
            1,
            p(1),
            ConsMsg::CtAck { round: 1 },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        assert!(out.sends.is_empty());
    }

    #[test]
    fn cost_only_mgr_output_is_not_protocol_activity() {
        let mut out: MgrOut<IdSet> = MgrOut::new();
        out.work += Duration::from_micros(5);
        assert!(!out.has_effects(), "accounting alone is not activity");
        assert!(!out.is_empty());
        out.decisions.push((1, ids(&[1])));
        assert!(out.has_effects());
    }

    #[test]
    fn running_state_is_reported_per_instance() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.propose(2, ids(&[2]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.propose(3, ids(&[3]), &AlwaysHeld, ProcessSet::new(), &mut out);
        assert_eq!(m.running_count(), 3);
        assert_eq!(m.running_instances(), vec![1, 2, 3]);
        // Decide the middle instance out of order: occupancy shrinks.
        m.on_message(
            2,
            p(2),
            ConsMsg::Decide { value: ids(&[2]) },
            &AlwaysHeld,
            ProcessSet::new(),
            &mut out,
        );
        assert_eq!(m.running_count(), 2);
        assert_eq!(m.running_instances(), vec![1, 3]);
    }

    #[test]
    fn decision_latency_measures_propose_to_decide() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.note_proposed(1, Time::ZERO + Duration::from_millis(10));
        assert_eq!(m.latency_probes(), 1);
        let lat = m.decision_latency(1, Time::ZERO + Duration::from_millis(14));
        assert_eq!(lat, Some(Duration::from_millis(4)));
        // The timestamp is consumed: a second read reports nothing.
        assert_eq!(m.decision_latency(1, Time::ZERO + Duration::from_millis(20)), None);
        // Unrecorded instances report nothing.
        assert_eq!(m.decision_latency(7, Time::ZERO + Duration::from_millis(20)), None);
        assert_eq!(m.latency_probes(), 0);
    }

    #[test]
    fn gc_prunes_stale_latency_probes_but_keeps_running_ones() {
        let mut m = mgr(0, 3);
        let mut out = MgrOut::new();
        for k in 1..=5u64 {
            m.propose(k, ids(&[k]), &AlwaysHeld, ProcessSet::new(), &mut out);
            m.note_proposed(k, Time::ZERO + Duration::from_millis(k));
            if k != 2 && k != 5 {
                m.on_message(
                    k,
                    p(2),
                    ConsMsg::Decide { value: ids(&[k]) },
                    &AlwaysHeld,
                    ProcessSet::new(),
                    &mut out,
                );
            }
        }
        // Cutoff 5 - 1 = 4: decided probes 1 and 3 drop; the running
        // instance 2 keeps its probe even though it is below the cutoff.
        m.gc_decided_below(5, 1);
        assert_eq!(m.decision_latency(1, Time::ZERO + Duration::from_secs(1)), None);
        assert_eq!(m.decision_latency(3, Time::ZERO + Duration::from_secs(1)), None);
        assert!(m.decision_latency(2, Time::ZERO + Duration::from_secs(1)).is_some());
        assert!(m.decision_latency(5, Time::ZERO + Duration::from_secs(1)).is_some());
    }

    #[test]
    fn highest_started_tracks_proposals() {
        let mut m = mgr(0, 3);
        assert_eq!(m.highest_started(), 0);
        let mut out = MgrOut::new();
        m.propose(1, ids(&[1]), &AlwaysHeld, ProcessSet::new(), &mut out);
        m.propose(2, ids(&[2]), &AlwaysHeld, ProcessSet::new(), &mut out);
        assert_eq!(m.highest_started(), 2);
    }
}
