//! The Mostéfaoui–Raynal ◇S consensus algorithm, as a reusable round
//! machine.
//!
//! [`MrMachine`] implements the two-phase quorum skeleton shared by the
//! original algorithm \[7\] and the paper's indirect adaptation
//! (Algorithm 3). The differences — the paper's bold lines — are captured
//! by [`MrPolicy`]:
//!
//! * **Phase 1** (Algorithm 3 lines 16–19): what a process forwards when it
//!   receives the coordinator's estimate `v`. The original forwards `v`
//!   unconditionally; the indirect algorithm forwards ⊥ unless `rcv(v)`.
//! * **Phase 2 quorum** (lines 21–22): majority (original) vs `⌈(2n+1)/3⌉`
//!   (indirect) — the resilience drop from `f < n/2` to `f < n/3` that is
//!   one of the paper's main findings.
//! * **Phase 2 adoption** (lines 27–29): on a mixed `{v, ⊥}` view the
//!   original adopts `v` always; the indirect algorithm adopts only if
//!   `rcv(v)` holds or `v` was echoed by `⌈(n+1)/3⌉` processes (proof that
//!   a correct process holds `msgs(v)`).

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

use iabc_types::{quorum, ProcessId, ProcessSet};

use crate::msg::{ConsDest, ConsMsg};
use crate::value::ConsensusValue;
use crate::{ConsEnv, ConsOut, SingleConsensus};

/// The variation points between the original MR algorithm and Algorithm 3.
pub trait MrPolicy: fmt::Debug + Default + 'static {
    /// Phase 1: the value to echo after receiving the coordinator's
    /// estimate `v` (`Some(v)` to forward it, `None` for ⊥).
    fn phase1_take<V: ConsensusValue>(
        v: V,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> Option<V>;

    /// Phase 2: whether to adopt `v` out of a mixed `{v, ⊥}` view, given
    /// how many of the quorum echoes carried `v`.
    fn phase2_adopt<V: ConsensusValue>(
        v: &V,
        count: usize,
        n: usize,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> bool;

    /// The Phase 2 wait quorum.
    fn quorum(n: usize) -> usize;

    /// Human-readable algorithm name.
    const NAME: &'static str;
}

/// Policy of the original (unmodified) Mostéfaoui–Raynal algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectMr;

impl MrPolicy for DirectMr {
    fn phase1_take<V: ConsensusValue>(
        v: V,
        _env: &ConsEnv<'_, V>,
        _out: &mut ConsOut<V>,
    ) -> Option<V> {
        Some(v) // the original always forwards the coordinator's estimate
    }

    fn phase2_adopt<V: ConsensusValue>(
        _v: &V,
        _count: usize,
        _n: usize,
        _env: &ConsEnv<'_, V>,
        _out: &mut ConsOut<V>,
    ) -> bool {
        true // the original always adopts a valid estimate
    }

    fn quorum(n: usize) -> usize {
        quorum::majority(n)
    }

    const NAME: &'static str = "mr";
}

/// The original Mostéfaoui–Raynal ◇S consensus: majority quorum,
/// `f < n/2`, decisions in two communication steps in good runs.
///
/// Run on identifier sets this is the second **faulty** baseline: §3.3.2
/// shows no trivial fix exists without changing the quorum.
pub type MrConsensus<V> = MrMachine<V, DirectMr>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    NotStarted,
    /// Waiting for the coordinator's Phase 1 broadcast (or its suspicion).
    Phase1,
    /// Waiting for a quorum of Phase 2 echoes.
    Phase2,
    Done,
}

/// The Mostéfaoui–Raynal round machine, parameterized by an [`MrPolicy`].
pub struct MrMachine<V, P: MrPolicy> {
    me: ProcessId,
    n: usize,
    /// Round-offset for coordinator rotation across instances (see
    /// [`crate::ct::CtMachine::with_coord_offset`]).
    coord_offset: u64,
    /// Processes that never participate in consensus (learners / read
    /// replicas); see [`crate::ct::CtMachine::with_membership`].
    passive: ProcessSet,
    round: u64,
    /// `estimate_p`.
    estimate: Option<V>,
    wait: Wait,
    decided: bool,
    /// Coordinator Phase 1 broadcasts, per round.
    phase1: BTreeMap<u64, V>,
    /// Phase 2 echoes, per round: sender → forwarded value (`None` = ⊥).
    phase2: BTreeMap<u64, BTreeMap<ProcessId, Option<V>>>,
    _policy: PhantomData<P>,
}

impl<V: ConsensusValue, P: MrPolicy> fmt::Debug for MrMachine<V, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MrMachine")
            .field("policy", &P::NAME)
            .field("me", &self.me)
            .field("round", &self.round)
            .field("wait", &self.wait)
            .field("decided", &self.decided)
            .finish()
    }
}

impl<V: ConsensusValue, P: MrPolicy> MrMachine<V, P> {
    /// Creates an instance for process `me` in a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self::with_coord_offset(me, n, 0)
    }

    /// Like [`MrMachine::new`], with the coordinator rotation shifted by
    /// `offset` rounds (instance managers pass the instance number).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_coord_offset(me: ProcessId, n: usize, offset: u64) -> Self {
        Self::with_membership(me, n, offset, ProcessSet::new())
    }

    /// Like [`MrMachine::with_coord_offset`], with `passive` processes
    /// (learners / read replicas) excluded from the protocol: never
    /// selected as coordinator, and Phase 2 quorums are computed over the
    /// *active* processes only. With an empty `passive` set this is
    /// byte-identical to the classic algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if `passive` names a process outside the
    /// system, or if no active process remains.
    pub fn with_membership(me: ProcessId, n: usize, offset: u64, passive: ProcessSet) -> Self {
        assert!(n > 0, "system must have at least one process");
        assert!(
            passive.difference(ProcessSet::full(n)).is_empty(),
            "passive set names processes outside the system"
        );
        assert!(passive.len() < n, "at least one process must stay active");
        MrMachine {
            me,
            n,
            coord_offset: offset,
            passive,
            round: 0,
            estimate: None,
            wait: Wait::NotStarted,
            decided: false,
            phase1: BTreeMap::new(),
            phase2: BTreeMap::new(),
            _policy: PhantomData,
        }
    }

    fn coord(&self, round: u64) -> ProcessId {
        if self.passive.is_empty() {
            return ProcessId::coordinator_of_round(round + self.coord_offset, self.n);
        }
        // Rotate over the sorted active ids only (see CtMachine::coord).
        let actives = self.active_n();
        let idx = ((round + self.coord_offset) % actives as u64) as usize;
        ProcessId::all(self.n)
            .filter(|p| !self.passive.contains(*p))
            .nth(idx)
            // lint:allow(P1): local invariant, not remote data — the constructor asserts at least one active process
            .expect("at least one active process")
    }

    /// Number of active (non-passive) processes: the `n` every quorum and
    /// adoption threshold is computed over.
    fn active_n(&self) -> usize {
        self.n - self.passive.len()
    }

    /// Current round (for tests and debugging).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current `estimate_p` (for tests and debugging).
    pub fn estimate(&self) -> Option<&V> {
        self.estimate.as_ref()
    }

    fn decide(&mut self, value: V, out: &mut ConsOut<V>) {
        if self.decided {
            return;
        }
        self.decided = true;
        self.wait = Wait::Done;
        out.sends.push((ConsDest::Others, ConsMsg::Decide { value: value.clone() }));
        out.decision = Some(value);
        self.phase1.clear();
        self.phase2.clear();
    }

    fn enter_next_round(&mut self, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        loop {
            if self.decided {
                return;
            }
            self.round += 1;
            let r = self.round;
            let c = self.coord(r);

            if c == self.me {
                // Phase 1, coordinator: broadcast the estimate (lines 10–12),
                // which is also our own Phase 2 echo (line 20).
                // lint:allow(P1): local invariant, not remote data — propose() sets the estimate before any round is entered
                let est = self.estimate.clone().expect("estimate set at propose");
                out.sends.push((ConsDest::Others, ConsMsg::MrPhase1 { round: r, estimate: est.clone() }));
                self.echo(Some(est), out);
                if self.evaluate_phase2(env, out) {
                    continue; // round failed immediately (n = 1 cannot)
                }
                return;
            }

            // Phase 1, non-coordinator: wait for the coordinator or suspect it.
            self.wait = Wait::Phase1;
            if let Some(v) = self.phase1.get(&r).cloned() {
                if self.handle_phase1(v, env, out) {
                    continue;
                }
                return;
            }
            if env.suspected.contains(c) {
                // Suspicion: forward ⊥ (line 14, suspicion arm → line 19).
                self.echo(None, out);
                if self.evaluate_phase2(env, out) {
                    continue;
                }
                return;
            }
            return;
        }
    }

    /// Records our own Phase 2 echo and multicasts it (line 20).
    fn echo(&mut self, est: Option<V>, out: &mut ConsOut<V>) {
        let r = self.round;
        out.sends.push((ConsDest::Others, ConsMsg::MrPhase2 { round: r, est: est.clone() }));
        self.phase2.entry(r).or_default().insert(self.me, est);
        self.wait = Wait::Phase2;
    }

    /// Phase 1 resolution with the coordinator's estimate. Returns `true`
    /// if the round also finished (caller should advance).
    fn handle_phase1(&mut self, v: V, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) -> bool {
        // Lines 15–19: forward v, or ⊥ if the policy refuses it.
        let take = P::phase1_take(v, env, out);
        self.echo(take, out);
        self.evaluate_phase2(env, out)
    }

    /// Phase 2 evaluation (lines 22–29). Returns `true` if the round ended
    /// without a decision (caller advances to the next round).
    fn evaluate_phase2(&mut self, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) -> bool {
        if self.wait != Wait::Phase2 {
            return false;
        }
        let r = self.round;
        let Some(echoes) = self.phase2.get(&r) else { return false };
        if echoes.len() < P::quorum(self.active_n()) {
            return false;
        }
        // rec_p over exactly the quorum received.
        let mut valid: Option<&V> = None;
        let mut valid_count = 0usize;
        let mut bottom_count = 0usize;
        for est in echoes.values() {
            match est {
                Some(v) => {
                    // In a crash-only model one round carries one valid value;
                    // assert it defensively.
                    if let Some(prev) = valid {
                        debug_assert_eq!(prev, v, "two distinct valid estimates in round {r}");
                    }
                    valid = Some(v);
                    valid_count += 1;
                }
                None => bottom_count += 1,
            }
        }
        match (valid.cloned(), bottom_count) {
            (Some(v), 0) => {
                // rec_p = {v}: adopt and decide (lines 24–26).
                self.estimate = Some(v.clone());
                self.decide(v, out);
                false
            }
            (Some(v), _) => {
                // rec_p = {v, ⊥}: adopt if the policy allows (lines 27–29).
                if P::phase2_adopt(&v, valid_count, self.active_n(), env, out) {
                    self.estimate = Some(v);
                }
                true // next round
            }
            (None, _) => true, // rec_p = {⊥}: keep estimate, next round
        }
    }
}

impl<V: ConsensusValue, P: MrPolicy> SingleConsensus<V> for MrMachine<V, P> {
    fn propose(&mut self, v: V, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        assert_eq!(self.wait, Wait::NotStarted, "propose may be called only once");
        self.estimate = Some(v);
        self.enter_next_round(env, out);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ConsMsg<V>,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) {
        if self.decided {
            return;
        }
        match msg {
            ConsMsg::Decide { value } => self.decide(value, out),
            ConsMsg::MrPhase1 { round, estimate } => {
                if round < self.round || from != self.coord(round) {
                    return; // stale or not from that round's coordinator
                }
                if round == self.round && self.wait == Wait::Phase1 {
                    if self.handle_phase1(estimate, env, out) {
                        self.enter_next_round(env, out);
                    }
                } else {
                    self.phase1.insert(round, estimate);
                }
            }
            ConsMsg::MrPhase2 { round, est } => {
                if round < self.round {
                    return;
                }
                self.phase2.entry(round).or_default().insert(from, est);
                if round == self.round && self.wait == Wait::Phase2 && self.evaluate_phase2(env, out)
                {
                    self.enter_next_round(env, out);
                }
            }
            // CT traffic does not belong to this algorithm.
            ConsMsg::CtEstimate { .. }
            | ConsMsg::CtProposal { .. }
            | ConsMsg::CtAck { .. }
            | ConsMsg::CtNack { .. } => {}
        }
    }

    fn on_suspect(&mut self, p: ProcessId, env: &ConsEnv<'_, V>, out: &mut ConsOut<V>) {
        if self.decided || self.wait != Wait::Phase1 {
            return;
        }
        if p == self.coord(self.round) {
            self.echo(None, out);
            if self.evaluate_phase2(env, out) {
                self.enter_next_round(env, out);
            }
        }
    }

    fn has_decided(&self) -> bool {
        self.decided
    }

    fn name(&self) -> &'static str {
        P::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::LoopNet;
    use crate::value::AlwaysHeld;
    use iabc_types::{IdSet, MsgId};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ids(seqs: &[u64]) -> IdSet {
        IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(p(0), s)))
    }

    fn net(n: usize) -> LoopNet<IdSet, MrConsensus<IdSet>> {
        LoopNet::new(n, |q| MrConsensus::new(q, n), || Box::new(AlwaysHeld))
    }

    #[test]
    fn good_run_decides_coordinator_value() {
        let mut net = net(3);
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        // Round-1 coordinator is p1: everyone echoes {1}, unanimity, decide.
        assert_eq!(net.common_decision(), ids(&[1]));
    }

    #[test]
    fn single_process_decides_immediately() {
        let mut net = net(1);
        net.propose(p(0), ids(&[3]));
        net.run();
        net.assert_all_decided(&ids(&[3]));
    }

    #[test]
    fn crashed_coordinator_is_survived() {
        let mut net = net(3);
        net.crash(p(1));
        net.propose(p(0), ids(&[0]));
        net.propose(p(2), ids(&[2]));
        net.run();
        assert!(!net.algos[0].has_decided());
        net.suspect_at(p(0), p(1));
        net.suspect_at(p(2), p(1));
        net.run();
        // Round 2's coordinator p2 drives its estimate through.
        assert_eq!(net.decisions[0], Some(ids(&[2])));
        assert_eq!(net.decisions[2], Some(ids(&[2])));
    }

    #[test]
    fn mixed_view_adopts_coordinator_value() {
        // p0 suspects the coordinator p1 (false suspicion) and echoes ⊥,
        // but p1 and p2 echo {1}. p0's quorum view is mixed; the original
        // algorithm adopts {1} unconditionally, so agreement holds when a
        // later round decides.
        let mut net = net(3);
        net.suspect_at(p(0), p(1));
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        let d = net.common_decision();
        assert_eq!(d, ids(&[1]));
    }

    #[test]
    fn five_processes_two_crashes() {
        let n = 5;
        let mut net = LoopNet::new(n, |q| MrConsensus::<IdSet>::new(q, n), || Box::new(AlwaysHeld));
        net.crash(p(1));
        net.crash(p(3));
        for q in [0u16, 2, 4] {
            net.propose(p(q), ids(&[q as u64]));
        }
        net.run();
        for q in [0u16, 2, 4] {
            net.suspect_at(p(q), p(1));
            net.suspect_at(p(q), p(3));
        }
        net.run();
        let d = net.common_decision();
        assert!([ids(&[0]), ids(&[2]), ids(&[4])].contains(&d));
    }

    #[test]
    fn late_proposer_decides_via_relay() {
        let mut net = net(3);
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        // majority(3) = 2: p1+p2 decide without p0.
        assert!(net.algos[1].has_decided());
        net.propose(p(0), ids(&[0]));
        net.run();
        assert_eq!(net.decisions[0], net.decisions[1]);
    }

    #[test]
    fn decision_takes_two_steps_in_good_runs() {
        // Structural check: in a fault-free run the only message types are
        // one Phase1 broadcast, Phase2 echoes, and Decide relays — no
        // second round.
        let mut net = net(3);
        net.propose(p(0), ids(&[0]));
        net.propose(p(1), ids(&[1]));
        net.propose(p(2), ids(&[2]));
        net.run();
        for a in &net.algos {
            assert_eq!(a.round(), 1, "no algorithm should pass round 1");
        }
    }

    #[test]
    fn membership_rotation_skips_passive_and_shrinks_quorum() {
        let mut passive = ProcessSet::new();
        passive.insert(p(1));
        let m: MrConsensus<IdSet> = MrMachine::with_membership(p(0), 4, 0, passive);
        // Rounds rotate over the sorted actives {p0, p2, p3} only.
        let coords: Vec<_> = (1..=6).map(|r| m.coord(r)).collect();
        assert_eq!(coords, vec![p(2), p(3), p(0), p(2), p(3), p(0)]);
        assert_eq!(m.active_n(), 3);
        assert_eq!(DirectMr::quorum(m.active_n()), 2, "majority of the 3 actives");
    }

    #[test]
    fn empty_passive_set_matches_the_classic_rotation() {
        for offset in 0..5u64 {
            let classic: MrConsensus<IdSet> = MrMachine::with_coord_offset(p(1), 4, offset);
            let member: MrConsensus<IdSet> =
                MrMachine::with_membership(p(1), 4, offset, ProcessSet::new());
            for r in 1..=9 {
                assert_eq!(classic.coord(r), member.coord(r));
            }
            assert_eq!(classic.active_n(), member.active_n());
        }
    }

    #[test]
    #[should_panic(expected = "at least one process must stay active")]
    fn all_passive_membership_panics() {
        let _: MrConsensus<IdSet> =
            MrMachine::with_membership(p(0), 2, 0, ProcessSet::full(2));
    }
}
