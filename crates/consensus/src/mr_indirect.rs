//! **Algorithm 3**: the Mostéfaoui–Raynal ◇S *indirect consensus*
//! algorithm.
//!
//! The paper's §3.3.2 shows that the MR algorithm cannot be adapted to
//! message identifiers by a local check alone: a process may face two
//! indistinguishable executions, one where it must adopt the coordinator's
//! value (for Uniform agreement) and one where it must not (for No loss).
//! The resolution changes the quorum structure — and the resilience:
//!
//! * **Phase 1** (lines 16–19): forward the coordinator's estimate only if
//!   `rcv(v)` holds, else ⊥. A valid Phase 2 echo therefore *witnesses*
//!   that its sender holds `msgs(v)`.
//! * **Phase 2** (lines 21–22): wait for `⌈(2n+1)/3⌉` echoes instead of a
//!   majority.
//! * **Adoption rule** (lines 27–29): on a mixed `{v, ⊥}` view adopt `v`
//!   iff `rcv(v)` holds **or** `v` was echoed `⌈(n+1)/3⌉` times (at least
//!   one *correct* process holds `msgs(v)`, by quorum intersection —
//!   Figure 2).
//!
//! Resilience drops from `f < n/2` to **`f < n/3`** — the price of
//! indirectness for this algorithm family.

use iabc_types::quorum;

use crate::mr::{MrMachine, MrPolicy};
use crate::value::ConsensusValue;
use crate::{ConsEnv, ConsOut};

/// Policy implementing Algorithm 3's bold lines.
#[derive(Debug, Default, Clone, Copy)]
pub struct IndirectMr;

impl MrPolicy for IndirectMr {
    fn phase1_take<V: ConsensusValue>(
        v: V,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> Option<V> {
        // Lines 16–19: forward only what we can vouch for.
        if env.check_rcv(&v, out) {
            Some(v)
        } else {
            None
        }
    }

    fn phase2_adopt<V: ConsensusValue>(
        v: &V,
        count: usize,
        n: usize,
        env: &ConsEnv<'_, V>,
        out: &mut ConsOut<V>,
    ) -> bool {
        // Lines 28–29: rcv(v) or v received ⌈(n+1)/3⌉ times.
        count >= quorum::one_third(n) || env.check_rcv(v, out)
    }

    fn quorum(n: usize) -> usize {
        // Line 22: wait for ⌈(2n+1)/3⌉ echoes.
        quorum::two_thirds(n)
    }

    const NAME: &'static str = "mr-indirect";
}

/// The Mostéfaoui–Raynal-based ◇S indirect consensus algorithm
/// (Algorithm 3): `⌈(2n+1)/3⌉` quorum, resilience `f < n/3`, No loss
/// guaranteed through witnessing echoes.
pub type MrIndirect<V> = MrMachine<V, IndirectMr>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::LoopNet;
    use crate::value::{HeldIds, RcvOracle};
    use crate::SingleConsensus;
    use iabc_types::{Duration, IdSet, MsgId, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ids(seqs: &[u64]) -> IdSet {
        IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(p(0), s)))
    }

    fn held(seqs: &[u64]) -> Box<dyn RcvOracle<IdSet>> {
        Box::new(HeldIds { held: ids(seqs), cost_per_id: Duration::ZERO })
    }

    #[test]
    fn good_run_decides_in_one_round() {
        let n = 4; // f < n/3 needs n ≥ 4 for any resilience
        let mut net = LoopNet::new(n, |q| MrIndirect::<IdSet>::new(q, n), || held(&[0, 1, 2, 3]));
        for q in 0..4u16 {
            net.propose(p(q), ids(&[q as u64]));
        }
        net.run();
        // Round-1 coordinator p1: everyone holds msgs({1}) → unanimous echo.
        assert_eq!(net.common_decision(), ids(&[1]));
        for a in &net.algos {
            assert_eq!(a.round(), 1);
        }
    }

    #[test]
    fn unheld_coordinator_value_is_echoed_as_bottom() {
        // Nobody but the coordinator holds message 9, so the coordinator's
        // estimate dies in round 1; a later round decides a held value.
        let n = 4;
        let mut net = LoopNet::new(n, |q| MrIndirect::<IdSet>::new(q, n), || held(&[1]));
        net.set_oracle(p(1), held(&[1, 9]));
        net.propose(p(0), ids(&[1]));
        net.propose(p(1), ids(&[9])); // round-1 coordinator, unheld value
        net.propose(p(2), ids(&[1]));
        net.propose(p(3), ids(&[1]));
        net.run();
        let d = net.common_decision();
        assert_eq!(d, ids(&[1]), "the unheld value must not be decided");
    }

    #[test]
    fn adoption_by_witness_count() {
        // Algorithm 3's condition (2): a process adopts v without holding
        // msgs(v) when ⌈(n+1)/3⌉ processes echoed v. n = 4 → threshold 2.
        // p3 lacks msgs({1}); p0/p1/p2 hold it. Everyone still decides {1}.
        let n = 4;
        let mut net = LoopNet::new(n, |q| MrIndirect::<IdSet>::new(q, n), || held(&[1]));
        net.set_oracle(p(3), held(&[])); // p3 holds nothing
        for q in 0..4u16 {
            net.propose(p(q), ids(&[1]));
        }
        net.run();
        // All processes (including p3) decide {1}: p3 saw ≥ 2 echoes of {1}.
        net.assert_all_decided(&ids(&[1]));
    }

    #[test]
    fn crashed_coordinator_is_survived_with_f_lt_n_over_3() {
        let n = 4;
        let mut net = LoopNet::new(n, |q| MrIndirect::<IdSet>::new(q, n), || held(&[0, 2, 3]));
        net.crash(p(1)); // round-1 coordinator
        net.propose(p(0), ids(&[0]));
        net.propose(p(2), ids(&[2]));
        net.propose(p(3), ids(&[3]));
        net.run();
        for q in [0usize, 2, 3] {
            assert!(!net.algos[q].has_decided());
        }
        for q in [0u16, 2, 3] {
            net.suspect_at(p(q), p(1));
        }
        net.run();
        // quorum(4) = 3 echoes available from the three live processes.
        let d = net.common_decision();
        assert!([ids(&[0]), ids(&[2]), ids(&[3])].contains(&d));
    }

    #[test]
    fn quorum_is_two_thirds() {
        assert_eq!(<IndirectMr as MrPolicy>::quorum(3), 3);
        assert_eq!(<IndirectMr as MrPolicy>::quorum(4), 3);
        assert_eq!(<IndirectMr as MrPolicy>::quorum(7), 5);
    }

    #[test]
    fn rcv_cost_is_charged_in_phase1() {
        use crate::msg::ConsMsg;
        use crate::{ConsEnv, ConsOut};
        use iabc_types::ProcessSet;

        let n = 4;
        let oracle = HeldIds { held: ids(&[5]), cost_per_id: Duration::from_micros(4) };
        let mut algo = MrIndirect::<IdSet>::new(p(0), n);
        let env = ConsEnv::new(&oracle, ProcessSet::new());
        let mut out = ConsOut::new();
        algo.propose(ids(&[5]), &env, &mut out);
        let mut out = ConsOut::new();
        algo.on_message(
            p(1),
            ConsMsg::MrPhase1 { round: 1, estimate: ids(&[5]) },
            &env,
            &mut out,
        );
        assert_eq!(out.work, Duration::from_micros(4));
        // And the echo is valid since we hold msg 5.
        assert!(out
            .sends
            .iter()
            .any(|(_, m)| matches!(m, ConsMsg::MrPhase2 { est: Some(_), .. })));
    }

    #[test]
    fn phase1_without_the_messages_echoes_bottom() {
        use crate::msg::ConsMsg;
        use crate::{ConsEnv, ConsOut};
        use iabc_types::ProcessSet;

        let n = 4;
        let oracle = HeldIds { held: IdSet::new(), cost_per_id: Duration::ZERO };
        let mut algo = MrIndirect::<IdSet>::new(p(0), n);
        let env = ConsEnv::new(&oracle, ProcessSet::new());
        let mut out = ConsOut::new();
        algo.propose(ids(&[5]), &env, &mut out);
        let mut out = ConsOut::new();
        algo.on_message(
            p(1),
            ConsMsg::MrPhase1 { round: 1, estimate: ids(&[7]) },
            &env,
            &mut out,
        );
        assert!(out
            .sends
            .iter()
            .any(|(_, m)| matches!(m, ConsMsg::MrPhase2 { est: None, .. })));
    }
}
