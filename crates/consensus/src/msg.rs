//! Wire messages of the consensus layer.

use iabc_types::{CodecError, Decode, Encode, ProcessId, TrafficClass, WireSize};

/// Destination of a consensus message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsDest {
    /// A single process.
    To(ProcessId),
    /// Every process, **including** the sender (the paper's `send to all`;
    /// the self-copy travels over the executor loop-back).
    All,
    /// Every process except the sender.
    Others,
}

/// Messages of all four consensus algorithms over value type `V`.
///
/// `Ct*` variants belong to the Chandra–Toueg family (Algorithm 2 and its
/// original), `Mr*` to the Mostéfaoui–Raynal family (Algorithm 3 and its
/// original); `Decide` is shared (the R-broadcast decision dissemination).
/// Rounds are 1-based, matching the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsMsg<V> {
    /// Phase 1 of CT: a process sends its timestamped estimate to the
    /// coordinator of round `round` (only for rounds > 1).
    CtEstimate {
        /// Round this estimate is for.
        round: u64,
        /// The sender's current estimate.
        estimate: V,
        /// Last round in which the sender adopted this estimate (0 = initial).
        ts: u64,
    },
    /// Phase 2 of CT: the coordinator's proposal for the round.
    CtProposal {
        /// Round of the proposal.
        round: u64,
        /// The proposed value (`estimate_c` in Algorithm 2).
        estimate: V,
    },
    /// Phase 3 of CT: positive acknowledgement.
    CtAck {
        /// Round being acknowledged.
        round: u64,
    },
    /// Phase 3 of CT: negative acknowledgement (suspicion, or — in the
    /// indirect algorithm — a failed `rcv` check).
    CtNack {
        /// Round being refused.
        round: u64,
    },
    /// Phase 1 of MR: the coordinator's estimate broadcast.
    MrPhase1 {
        /// Round of the broadcast.
        round: u64,
        /// The coordinator's estimate.
        estimate: V,
    },
    /// Phase 2 of MR: each process echoes the value it took from the
    /// coordinator — `None` encodes ⊥ (suspicion, or — in the indirect
    /// algorithm — a failed `rcv` check).
    MrPhase2 {
        /// Round of the echo.
        round: u64,
        /// The echoed estimate, or ⊥.
        est: Option<V>,
    },
    /// R-broadcast decision notification (relayed on first receipt).
    Decide {
        /// The decided value.
        value: V,
    },
}

impl<V> ConsMsg<V> {
    /// The round this message belongs to (`None` for `Decide`, which is
    /// round-independent).
    pub fn round(&self) -> Option<u64> {
        match self {
            ConsMsg::CtEstimate { round, .. }
            | ConsMsg::CtProposal { round, .. }
            | ConsMsg::CtAck { round }
            | ConsMsg::CtNack { round }
            | ConsMsg::MrPhase1 { round, .. }
            | ConsMsg::MrPhase2 { round, .. } => Some(*round),
            ConsMsg::Decide { .. } => None,
        }
    }

    /// Whether this message *refuses* a coordinator value: a CT nack, or an
    /// MR phase-2 echo of ⊥. Refusals are what a round burned on an
    /// unflooded proposal looks like on the wire — the indirect algorithms
    /// send one exactly when `rcv(v)` fails (or on a suspicion) — so the
    /// atomic broadcast layer counts them as its nack-churn diagnostic.
    pub fn is_refusal(&self) -> bool {
        matches!(self, ConsMsg::CtNack { .. } | ConsMsg::MrPhase2 { est: None, .. })
    }

    fn tag(&self) -> u8 {
        match self {
            ConsMsg::CtEstimate { .. } => 0,
            ConsMsg::CtProposal { .. } => 1,
            ConsMsg::CtAck { .. } => 2,
            ConsMsg::CtNack { .. } => 3,
            ConsMsg::MrPhase1 { .. } => 4,
            ConsMsg::MrPhase2 { .. } => 5,
            ConsMsg::Decide { .. } => 6,
        }
    }
}

impl<V: WireSize> WireSize for ConsMsg<V> {
    fn wire_size(&self) -> usize {
        1 + match self {
            ConsMsg::CtEstimate { estimate, .. } => 8 + 8 + estimate.wire_size(),
            ConsMsg::CtProposal { estimate, .. } => 8 + estimate.wire_size(),
            ConsMsg::CtAck { .. } | ConsMsg::CtNack { .. } => 8,
            ConsMsg::MrPhase1 { estimate, .. } => 8 + estimate.wire_size(),
            ConsMsg::MrPhase2 { est, .. } => 8 + est.wire_size(),
            ConsMsg::Decide { value } => value.wire_size(),
        }
    }

    fn traffic_class(&self) -> TrafficClass {
        // Consensus frames are the ordering traffic the priority lane
        // exists for. Note this covers the *direct* stacks too, whose
        // estimates embed whole message sets — there the "ordering" frames
        // are payload-sized, which is exactly the paper's argument against
        // consensus on messages.
        TrafficClass::Ordering
    }
}

impl<V: Encode> Encode for ConsMsg<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        match self {
            ConsMsg::CtEstimate { round, estimate, ts } => {
                round.encode(buf);
                ts.encode(buf);
                estimate.encode(buf);
            }
            ConsMsg::CtProposal { round, estimate } => {
                round.encode(buf);
                estimate.encode(buf);
            }
            ConsMsg::CtAck { round } | ConsMsg::CtNack { round } => round.encode(buf),
            ConsMsg::MrPhase1 { round, estimate } => {
                round.encode(buf);
                estimate.encode(buf);
            }
            ConsMsg::MrPhase2 { round, est } => {
                round.encode(buf);
                est.encode(buf);
            }
            ConsMsg::Decide { value } => value.encode(buf),
        }
    }
}

impl<V: Decode + WireSize> Decode for ConsMsg<V> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => {
                let round = u64::decode(buf)?;
                let ts = u64::decode(buf)?;
                let estimate = V::decode(buf)?;
                ConsMsg::CtEstimate { round, estimate, ts }
            }
            1 => {
                let round = u64::decode(buf)?;
                let estimate = V::decode(buf)?;
                ConsMsg::CtProposal { round, estimate }
            }
            2 => ConsMsg::CtAck { round: u64::decode(buf)? },
            3 => ConsMsg::CtNack { round: u64::decode(buf)? },
            4 => {
                let round = u64::decode(buf)?;
                let estimate = V::decode(buf)?;
                ConsMsg::MrPhase1 { round, estimate }
            }
            5 => {
                let round = u64::decode(buf)?;
                let est = Option::<V>::decode(buf)?;
                ConsMsg::MrPhase2 { round, est }
            }
            6 => ConsMsg::Decide { value: V::decode(buf)? },
            t => return Err(CodecError::InvalidTag { tag: t, context: "ConsMsg" }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;
    use iabc_types::{IdSet, MsgId};

    fn ids() -> IdSet {
        IdSet::from_ids((0..4).map(|s| MsgId::new(ProcessId::new(1), s)))
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs: Vec<ConsMsg<IdSet>> = vec![
            ConsMsg::CtEstimate { round: 3, estimate: ids(), ts: 2 },
            ConsMsg::CtProposal { round: 3, estimate: ids() },
            ConsMsg::CtAck { round: 3 },
            ConsMsg::CtNack { round: 9 },
            ConsMsg::MrPhase1 { round: 1, estimate: ids() },
            ConsMsg::MrPhase2 { round: 1, est: Some(ids()) },
            ConsMsg::MrPhase2 { round: 2, est: None },
            ConsMsg::Decide { value: ids() },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn refusals_are_ct_nacks_and_mr_bottom_echoes() {
        assert!(ConsMsg::<IdSet>::CtNack { round: 1 }.is_refusal());
        assert!(ConsMsg::<IdSet>::MrPhase2 { round: 1, est: None }.is_refusal());
        assert!(!ConsMsg::<IdSet>::CtAck { round: 1 }.is_refusal());
        assert!(!ConsMsg::MrPhase2 { round: 1, est: Some(ids()) }.is_refusal());
        assert!(!ConsMsg::Decide { value: ids() }.is_refusal());
        assert!(!ConsMsg::CtProposal { round: 1, estimate: ids() }.is_refusal());
    }

    #[test]
    fn round_accessor() {
        let m: ConsMsg<IdSet> = ConsMsg::CtAck { round: 5 };
        assert_eq!(m.round(), Some(5));
        let d: ConsMsg<IdSet> = ConsMsg::Decide { value: ids() };
        assert_eq!(d.round(), None);
    }

    #[test]
    fn id_messages_are_small_and_payload_independent() {
        // The heart of the paper: consensus traffic on identifiers is tiny
        // and does not grow with application payload size.
        let m: ConsMsg<IdSet> = ConsMsg::CtProposal { round: 1, estimate: ids() };
        assert!(m.wire_size() < 64, "got {}", m.wire_size());
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf: &[u8] = &[42, 0, 0];
        assert!(ConsMsg::<IdSet>::decode(&mut buf).is_err());
    }
}
