//! Consensus values and the `rcv` oracle.

use std::fmt;

use iabc_types::{Duration, IdSet, WireSize};

/// A value that consensus can decide on.
///
/// The paper's two instantiations are:
/// * sets of **full messages** (the classic reduction — heavyweight), and
/// * sets of **message identifiers** (indirect consensus — 10 bytes/id).
///
/// Blanket-implemented for every `Clone + Eq + Debug + WireSize` type.
pub trait ConsensusValue: Clone + Eq + fmt::Debug + WireSize {}

impl<T: Clone + Eq + fmt::Debug + WireSize> ConsensusValue for T {}

/// The paper's `rcv` function (Algorithm 1 lines 9–10): given a proposal
/// `v`, reports whether this process currently holds all of `msgs(v)`.
///
/// Indirect consensus algorithms consult the oracle before adopting any
/// estimate; that check is what turns v-valence into v-stability and makes
/// the *No loss* property hold. The oracle also reports the (simulated) CPU
/// cost of each evaluation, which the paper identifies as the overhead of
/// indirect consensus over the faulty direct implementation (Figure 3).
///
/// **Hypothesis A** (required for Termination): if `rcv(v)` holds at a
/// correct process, it must eventually hold at every correct process. The
/// atomic broadcast reduction satisfies it by construction because payloads
/// travel by reliable broadcast.
pub trait RcvOracle<V>: fmt::Debug {
    /// `rcv(v)`: whether all messages identified by `v` are held locally.
    fn rcv(&self, v: &V) -> bool;

    /// Simulated CPU cost of evaluating `rcv(v)` (default: free).
    fn cost(&self, v: &V) -> Duration {
        let _ = v;
        Duration::ZERO
    }
}

/// The trivial oracle: everything is always held, at zero cost.
///
/// This is what the *direct* consensus algorithms run with — either
/// legitimately (consensus on full messages: the value **is** the payload)
/// or illegitimately (the faulty consensus-on-identifiers baseline of
/// §2.2, which skips the check it ought to perform).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysHeld;

impl<V> RcvOracle<V> for AlwaysHeld {
    fn rcv(&self, _v: &V) -> bool {
        true
    }
}

/// Convenience oracle over an [`IdSet`] of held identifiers with a linear
/// per-identifier evaluation cost. Used by tests and by the atomic
/// broadcast stacks (which wrap their received-message store).
#[derive(Debug, Clone, Default)]
pub struct HeldIds {
    /// Identifiers currently held.
    pub held: IdSet,
    /// CPU cost per identifier checked.
    pub cost_per_id: Duration,
}

impl RcvOracle<IdSet> for HeldIds {
    fn rcv(&self, v: &IdSet) -> bool {
        v.iter().all(|id| self.held.contains(id))
    }

    fn cost(&self, v: &IdSet) -> Duration {
        self.cost_per_id * v.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{MsgId, ProcessId};

    fn id(p: u16, s: u64) -> MsgId {
        MsgId::new(ProcessId::new(p), s)
    }

    #[test]
    fn always_held_is_true_and_free() {
        let oracle = AlwaysHeld;
        let v = IdSet::from_ids(vec![id(0, 0)]);
        assert!(oracle.rcv(&v));
        assert_eq!(RcvOracle::cost(&oracle, &v), Duration::ZERO);
    }

    #[test]
    fn held_ids_checks_subset() {
        let oracle = HeldIds {
            held: IdSet::from_ids(vec![id(0, 0), id(1, 1)]),
            cost_per_id: Duration::from_micros(2),
        };
        assert!(oracle.rcv(&IdSet::from_ids(vec![id(0, 0)])));
        assert!(oracle.rcv(&IdSet::from_ids(vec![id(0, 0), id(1, 1)])));
        assert!(!oracle.rcv(&IdSet::from_ids(vec![id(2, 0)])));
        assert!(oracle.rcv(&IdSet::new())); // vacuous
    }

    #[test]
    fn held_ids_cost_is_linear() {
        let oracle = HeldIds { held: IdSet::new(), cost_per_id: Duration::from_micros(3) };
        let v = IdSet::from_ids((0..5).map(|s| id(0, s)));
        assert_eq!(oracle.cost(&v), Duration::from_micros(15));
    }
}
