//! Property-based tests of the four consensus algorithms under randomized
//! asynchronous schedules, crashes and suspicion patterns.
//!
//! The key property checked for the indirect algorithms is the paper's
//! **No loss**: whenever a decision `v` is reached, the live processes hold
//! `msgs(v)` — even when crashed processes *poison* the run by proposing
//! values only they hold (the §2.2 pattern), with the delivery schedule
//! chosen adversarially at random.
//!
//! Termination is only asserted under the paper's **Hypothesis A** (if
//! `rcv(v)` holds at a correct process it eventually holds at all correct
//! processes); we satisfy it the simple way, by giving all live processes
//! the same held set. A dedicated test documents what happens when
//! Hypothesis A is dropped: the indirect algorithm may honestly never
//! terminate — exactly the conditional Termination of the paper's
//! specification.

use iabc_consensus::testing::LoopNet;
use iabc_consensus::value::{HeldIds, RcvOracle};
use iabc_consensus::{CtConsensus, CtIndirect, MrConsensus, MrIndirect, SingleConsensus};
use iabc_types::{quorum, Duration, IdSet, MsgId, ProcessId};
use proptest::prelude::*;

fn ids(seqs: &[u64]) -> IdSet {
    IdSet::from_ids(seqs.iter().map(|&s| MsgId::new(ProcessId::new(0), s)))
}

fn held_oracle(seqs: &[u64]) -> Box<dyn RcvOracle<IdSet>> {
    Box::new(HeldIds { held: ids(seqs), cost_per_id: Duration::ZERO })
}

/// A randomized single-instance scenario.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    /// The set all live processes hold (Hypothesis A holds trivially).
    common_held: Vec<u64>,
    /// Per-live-process proposal subset sizes.
    proposal_len: Vec<usize>,
    /// Crashing processes: they propose a *poison* value only they hold,
    /// then crash (crash-after-send).
    crashed: Vec<usize>,
    /// Schedule seed.
    seed: u64,
}

fn scenario(n: usize, max_f: usize) -> impl Strategy<Value = Scenario> {
    let common_held = proptest::collection::vec(0u64..16, 1..6);
    let plen = proptest::collection::vec(1usize..5, n..=n);
    let crashed = proptest::collection::vec(0usize..n, 0..=max_f);
    (common_held, plen, crashed, any::<u64>()).prop_map(
        move |(common_held, proposal_len, crashed, seed)| {
            let mut crashed: Vec<usize> = crashed;
            crashed.sort_unstable();
            crashed.dedup();
            crashed.truncate(max_f);
            Scenario { n, common_held, proposal_len, crashed, seed }
        },
    )
}

/// Poison ids held only by crashed process `i`.
fn poison(i: usize) -> Vec<u64> {
    vec![200 + i as u64, 300 + i as u64]
}

fn live_proposal(s: &Scenario, i: usize) -> IdSet {
    let take = s.proposal_len[i].min(s.common_held.len()).max(1);
    ids(&s.common_held[..take])
}

/// Runs a scenario; checks agreement (built into LoopNet), validity,
/// termination of live processes, and — when `check_no_loss` — that the
/// decision is held by the live processes (No loss).
fn run_scenario<A: SingleConsensus<IdSet>>(
    s: &Scenario,
    make: impl Fn(ProcessId, usize) -> A,
    check_no_loss: bool,
) -> Result<(), TestCaseError> {
    let n = s.n;
    let mut net = LoopNet::new(n, |q| make(q, n), || held_oracle(&[]));
    let mut proposals: Vec<IdSet> = Vec::with_capacity(n);
    for i in 0..n {
        if s.crashed.contains(&i) {
            // The doomed process holds the common set plus its poison, and
            // proposes the poison — the §2.2 pattern.
            let mut all = s.common_held.clone();
            all.extend(poison(i));
            net.set_oracle(ProcessId::new(i as u16), held_oracle(&all));
            proposals.push(ids(&poison(i)));
        } else {
            net.set_oracle(ProcessId::new(i as u16), held_oracle(&s.common_held));
            proposals.push(live_proposal(s, i));
        }
    }
    for (i, proposal) in proposals.iter().enumerate() {
        net.propose(ProcessId::new(i as u16), proposal.clone());
    }
    // Crash-after-send: messages already queued still deliver.
    for &c in &s.crashed {
        net.crash(ProcessId::new(c as u16));
    }
    net.run_random(s.seed);
    // ◇S completeness: everyone eventually suspects the crashed processes.
    for i in 0..n {
        for &c in &s.crashed {
            if i != c {
                net.suspect_at(ProcessId::new(i as u16), ProcessId::new(c as u16));
            }
        }
    }
    net.run_random(s.seed.wrapping_add(1));

    // Termination: all live processes decide (Hypothesis A holds because
    // live processes share the held set).
    for i in 0..n {
        if !s.crashed.contains(&i) {
            prop_assert!(net.algos[i].has_decided(), "p{i} undecided");
        }
    }
    let decision = net.common_decision();

    // Uniform validity: the decision was proposed by someone.
    prop_assert!(
        proposals.iter().any(|p| p == &decision),
        "decision {decision:?} was never proposed"
    );

    if check_no_loss {
        // No loss: the live processes hold msgs(decision) — the poison of a
        // crashed proposer must never survive.
        let live_holds = HeldIds { held: ids(&s.common_held), cost_per_id: Duration::ZERO };
        prop_assert!(
            live_holds.rcv(&decision),
            "No loss violated: decision {decision:?} not held by live processes"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Indirect CT: agreement + validity + termination + No loss, with up
    /// to f < n/2 crash-after-propose poisoners, n = 3.
    #[test]
    fn ct_indirect_no_loss_n3(s in scenario(3, quorum::max_faults_majority(3))) {
        run_scenario(&s, |q, n| CtIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
    }

    /// Indirect CT at n = 5 with up to two poisoners.
    #[test]
    fn ct_indirect_no_loss_n5(s in scenario(5, quorum::max_faults_majority(5))) {
        run_scenario(&s, |q, n| CtIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
    }

    /// Indirect MR within its f < n/3 bound (n = 4, one poisoner).
    #[test]
    fn mr_indirect_no_loss_n4(s in scenario(4, quorum::max_faults_third(4))) {
        run_scenario(&s, |q, n| MrIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
    }

    /// Indirect MR at n = 7 with up to two poisoners.
    #[test]
    fn mr_indirect_no_loss_n7(s in scenario(7, quorum::max_faults_third(7))) {
        run_scenario(&s, |q, n| MrIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
    }

    /// The original CT keeps agreement/validity under the same adversarial
    /// schedules — but makes no No-loss promise (it may well decide the
    /// poison; that is the §2.2 bug).
    #[test]
    fn ct_original_agreement_n3(s in scenario(3, quorum::max_faults_majority(3))) {
        run_scenario(&s, |q, n| CtConsensus::<IdSet>::with_coord_offset(q, n, 0), false)?;
    }

    /// Same for the original MR.
    #[test]
    fn mr_original_agreement_n3(s in scenario(3, quorum::max_faults_majority(3))) {
        run_scenario(&s, |q, n| MrConsensus::<IdSet>::with_coord_offset(q, n, 0), false)?;
    }

    /// Fault-free runs decide under arbitrary delivery interleavings, for
    /// all four algorithms.
    #[test]
    fn all_algorithms_decide_fault_free(s in scenario(4, 0)) {
        run_scenario(&s, |q, n| CtConsensus::<IdSet>::with_coord_offset(q, n, 0), false)?;
        run_scenario(&s, |q, n| CtIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
        run_scenario(&s, |q, n| MrConsensus::<IdSet>::with_coord_offset(q, n, 0), false)?;
        run_scenario(&s, |q, n| MrIndirect::<IdSet>::with_coord_offset(q, n, 0), true)?;
    }

    /// Coordinator-offset rotation must not affect correctness.
    #[test]
    fn coord_offsets_preserve_correctness(
        s in scenario(3, 1),
        offset in 0u64..17,
    ) {
        run_scenario(&s, |q, n| CtIndirect::<IdSet>::with_coord_offset(q, n, offset), true)?;
    }
}

/// Without Hypothesis A the indirect algorithm's Termination is void — and
/// our implementation honestly exhibits that: two live processes with
/// permanently disjoint held sets can nack each other's proposals forever.
/// This test documents the behaviour (bounded round churn, no decision, no
/// safety violation) rather than asserting termination.
#[test]
fn without_hypothesis_a_termination_is_conditional() {
    let n = 3;
    let mut net =
        LoopNet::new(n, |q| CtIndirect::<IdSet>::with_coord_offset(q, n, 0), || held_oracle(&[]));
    net.set_oracle(ProcessId::new(1), held_oracle(&[0]));
    net.set_oracle(ProcessId::new(2), held_oracle(&[1]));
    net.crash(ProcessId::new(0));
    net.propose(ProcessId::new(1), ids(&[0]));
    net.propose(ProcessId::new(2), ids(&[1]));
    net.run(); // FIFO drain: stalls in a round coordinated by the dead p0
    net.suspect_at(ProcessId::new(1), ProcessId::new(0));
    net.suspect_at(ProcessId::new(2), ProcessId::new(0));
    // Drive a bounded number of deliveries: rounds churn (each proposal is
    // nacked by the process that lacks its messages) without ever deciding
    // — and without ever deciding *wrongly*.
    let mut steps = 0;
    while net.queue_len() > 0 && steps < 5_000 {
        let (from, to, msg) = net.pop_front().expect("nonempty");
        net.deliver_one(from, to, msg);
        steps += 1;
    }
    assert!(!net.algos[1].has_decided(), "no decidable value exists");
    assert!(!net.algos[2].has_decided(), "no decidable value exists");
    assert!(steps > 100, "rounds should churn while rcv never stabilizes");
}
