//! The decided log: durable storage for the decision sequence.
//!
//! A process only learns decision `k` by participating in consensus
//! instance `k`, so a laggard or restarted process can never recover the
//! prefix it missed from the protocol alone. The [`DecidedLog`] closes
//! that hole: every fully a-delivered instance is appended here (value
//! plus payloads), the log's *frontier* is piggybacked on outgoing
//! traffic, and peers behind the frontier fetch ranges of entries via
//! the catch-up protocol (`CatchUpRequest`/`CatchUpReply` in
//! [`crate::envelope`]).
//!
//! Two implementations:
//!
//! * [`MemDecidedLog`] — in-memory, for simulations and learners that do
//!   not need to survive a restart.
//! * [`DurableDecidedLog`] — an append-only file of length-prefixed
//!   records reusing the `wire.rs` codec. Crash-truncation-safe: a torn
//!   tail record (partial write at the moment of a crash) is detected
//!   and dropped on open, recovering the longest valid prefix.
//!
//! On-disk record format (all integers little-endian, as everywhere on
//! the wire):
//!
//! ```text
//! ┌────────────┬─────────┬──────────┬───────────────────┐
//! │ len: u32   │ k: u64  │ value: V │ Vec<AppMessage>   │
//! ├────────────┼─────────┴──────────┴───────────────────┤
//! │ 4 bytes    │ body: exactly `len` bytes              │
//! └────────────┴────────────────────────────────────────┘
//! ```
//!
//! Records are strictly contiguous: record `i` (0-based) holds instance
//! `k = i + 1`. Any violation — short length prefix, body shorter than
//! `len`, codec error, trailing bytes inside the body, or a
//! non-contiguous `k` — marks the end of the valid prefix; everything
//! from there on is discarded and the file truncated.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use iabc_types::{AppMessage, CodecError, Decode, Encode, WireSize};

/// Upper bound on a single record body, mirroring the network layer's
/// frame cap (`iabc-net`'s `MAX_FRAME`): a length prefix beyond this is
/// corruption, not a real record.
pub const MAX_RECORD: usize = 16 << 20;

/// One fully a-delivered consensus instance: the decided value plus the
/// payloads of every message it ordered (in delivery order). Carrying
/// the payloads makes a log entry self-contained: a catch-up reply built
/// from it lets the receiver both apply the decision *and* deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidedEntry<V> {
    /// The consensus instance number (1-based).
    pub k: u64,
    /// The decided value (identifier or message set).
    pub value: V,
    /// Payloads of the ordered messages, in delivery order.
    pub payloads: Vec<AppMessage>,
}

impl<V: WireSize> WireSize for DecidedEntry<V> {
    fn wire_size(&self) -> usize {
        8 + self.value.wire_size() + self.payloads.wire_size()
    }
}

impl<V: Encode> Encode for DecidedEntry<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.k.encode(buf);
        self.value.encode(buf);
        self.payloads.encode(buf);
    }
}

impl<V: Decode> Decode for DecidedEntry<V> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let k = u64::decode(buf)?;
        let value = V::decode(buf)?;
        let payloads = Vec::<AppMessage>::decode(buf)?;
        Ok(DecidedEntry { k, value, payloads })
    }
}

/// Append-only storage for the decision sequence, indexed by instance.
///
/// Entries are strictly contiguous from instance 1; the *frontier* is
/// the highest instance stored (0 when empty). The node appends an
/// instance once it is fully a-delivered, so the frontier is exactly
/// the prefix this process can serve to others — and, for a durable
/// log, the prefix it resumes from after a restart.
pub trait DecidedLog<V>: Send {
    /// Re-synchronizes the in-memory view with the backing store (a
    /// no-op for memory-only logs). Called once at node start, before
    /// recovery, so a pre-built replacement node picks up what the
    /// previous incarnation wrote.
    fn reload(&mut self);

    /// Appends the next entry. Returns `false` (and stores nothing) if
    /// `entry.k` is not exactly `frontier() + 1` — the log never holds
    /// gaps, so an out-of-order append is a caller bug surfaced softly
    /// rather than a panic on the message path.
    fn append(&mut self, entry: DecidedEntry<V>) -> bool;

    /// The highest instance stored (0 when empty).
    fn frontier(&self) -> u64;

    /// The entry for instance `k`, if stored.
    fn get(&self, k: u64) -> Option<&DecidedEntry<V>>;

    /// The stored entries with `from_k <= k <= to_k` (clamped to what
    /// exists; empty on an inverted or out-of-range request).
    fn range(&self, from_k: u64, to_k: u64) -> &[DecidedEntry<V>];
}

/// Slices `entries` (contiguous from instance 1) to `from_k..=to_k`.
fn slice_range<V>(entries: &[DecidedEntry<V>], from_k: u64, to_k: u64) -> &[DecidedEntry<V>] {
    let frontier = entries.len() as u64;
    let lo = from_k.max(1);
    let hi = to_k.min(frontier);
    if lo > hi {
        return &[];
    }
    // lo >= 1 and hi <= entries.len(), so the index math stays in range.
    let start = usize::try_from(lo - 1).unwrap_or(usize::MAX).min(entries.len());
    let end = usize::try_from(hi).unwrap_or(usize::MAX).min(entries.len());
    &entries[start..end]
}

/// An in-memory decided log (no durability).
#[derive(Debug, Default)]
pub struct MemDecidedLog<V> {
    entries: Vec<DecidedEntry<V>>,
}

impl<V> MemDecidedLog<V> {
    /// Creates an empty log.
    pub fn new() -> Self {
        MemDecidedLog { entries: Vec::new() }
    }
}

impl<V: Send> DecidedLog<V> for MemDecidedLog<V> {
    fn reload(&mut self) {}

    fn append(&mut self, entry: DecidedEntry<V>) -> bool {
        if entry.k != self.entries.len() as u64 + 1 {
            return false;
        }
        self.entries.push(entry);
        true
    }

    fn frontier(&self) -> u64 {
        self.entries.len() as u64
    }

    fn get(&self, k: u64) -> Option<&DecidedEntry<V>> {
        self.range(k, k).first()
    }

    fn range(&self, from_k: u64, to_k: u64) -> &[DecidedEntry<V>] {
        slice_range(&self.entries, from_k, to_k)
    }
}

/// A durable decided log: an append-only file of length-prefixed
/// records (see the module docs for the format), mirrored in memory for
/// reads.
///
/// Write failures degrade durability, not availability: the in-memory
/// mirror keeps growing and [`DurableDecidedLog::io_error`] reports the
/// first failure. By default writes go through the OS (`write_all`, no
/// fsync), so the log survives process crashes but a power loss can lose
/// the OS-buffered suffix — recovery then trims to the longest valid
/// prefix, exactly like a torn write. [`DurableDecidedLog::sync_every`]
/// tightens that window: every `n`-th append additionally waits on
/// `fdatasync(2)`, bounding power-loss data loss to at most `n - 1`
/// appends at the cost of a disk round-trip per `n` records.
pub struct DurableDecidedLog<V> {
    path: PathBuf,
    file: Option<File>,
    entries: Vec<DecidedEntry<V>>,
    io_error: Option<String>,
    /// `0` = never fsync (default); `n` = fdatasync every `n`-th append.
    sync_every: u64,
    appends_since_sync: u64,
}

impl<V> std::fmt::Debug for DurableDecidedLog<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDecidedLog")
            .field("path", &self.path)
            .field("frontier", &self.entries.len())
            .field("io_error", &self.io_error)
            .finish()
    }
}

impl<V: Encode + Decode + WireSize + Send> DurableDecidedLog<V> {
    /// Opens (creating if absent) the log at `path` and recovers the
    /// longest valid record prefix, truncating the file past it. Never
    /// panics on corrupt contents — a torn or garbage tail is data loss
    /// already; recovery keeps what is provably intact.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut log = DurableDecidedLog {
            path: path.as_ref().to_path_buf(),
            file: None,
            entries: Vec::new(),
            io_error: None,
            sync_every: 0,
            appends_since_sync: 0,
        };
        log.recover()?;
        Ok(log)
    }

    /// Sets the fsync policy: every `n`-th append also waits on
    /// `fdatasync(2)`, so a power loss forfeits at most `n - 1` appends.
    /// `n = 0` (the default) never syncs — crash-safe via the OS page
    /// cache, power-loss-safe only up to what the OS flushed. Sync
    /// failures surface through [`DurableDecidedLog::io_error`] like any
    /// other write failure.
    #[must_use]
    pub fn sync_every(mut self, n: u64) -> Self {
        self.sync_every = n;
        self
    }

    /// The first append/IO failure since open, if any.
    pub fn io_error(&self) -> Option<&str> {
        self.io_error.as_deref()
    }

    fn recover(&mut self) -> std::io::Result<()> {
        // truncate(false): recovery keeps the valid prefix of an existing
        // log; only the torn tail (if any) is cut below, via `set_len`.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        self.entries.clear();
        let mut offset = 0usize;
        // Fixed 4-byte little-endian length prefix, as written below.
        while let Some(header) = raw.get(offset..offset + 4) {
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            if len > MAX_RECORD {
                break; // corrupt length — end of valid prefix
            }
            let Some(body) = raw.get(offset + 4..offset + 4 + len) else {
                break; // torn tail: record body shorter than its prefix
            };
            let Ok(entry) = DecidedEntry::<V>::from_bytes(body) else {
                break; // undecodable body (from_bytes also rejects trailing bytes)
            };
            if entry.k != self.entries.len() as u64 + 1 {
                break; // non-contiguous instance — corruption, not a gap
            }
            self.entries.push(entry);
            offset += 4 + len;
        }

        if offset < raw.len() {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        self.file = Some(file);
        Ok(())
    }

    fn write_record(&mut self, entry: &DecidedEntry<V>) {
        let body = entry.to_bytes();
        let Ok(len) = u32::try_from(body.len()) else {
            self.note_io_error("record body exceeds u32 length prefix");
            return;
        };
        if body.len() > MAX_RECORD {
            self.note_io_error("record body exceeds MAX_RECORD");
            return;
        }
        let mut rec = Vec::with_capacity(4 + body.len());
        rec.extend_from_slice(&len.to_le_bytes());
        rec.extend_from_slice(&body);
        match self.file.as_mut() {
            Some(file) => {
                if let Err(e) = file.write_all(&rec) {
                    self.note_io_error(&e.to_string());
                    return;
                }
                if self.sync_every > 0 {
                    self.appends_since_sync += 1;
                    if self.appends_since_sync >= self.sync_every {
                        self.appends_since_sync = 0;
                        // sync_data = fdatasync: flushes the record bytes
                        // without forcing a metadata (mtime) write per
                        // append. File length changes are data here —
                        // POSIX fdatasync flushes the size when needed
                        // for the data to be readable after a crash.
                        if let Err(e) = file.sync_data() {
                            self.note_io_error(&e.to_string());
                        }
                    }
                }
            }
            None => self.note_io_error("log file not open"),
        }
    }

    fn note_io_error(&mut self, msg: &str) {
        if self.io_error.is_none() {
            self.io_error = Some(msg.to_string());
        }
    }
}

impl<V: Encode + Decode + WireSize + Send> DecidedLog<V> for DurableDecidedLog<V> {
    fn reload(&mut self) {
        if let Err(e) = self.recover() {
            self.note_io_error(&e.to_string());
        }
    }

    fn append(&mut self, entry: DecidedEntry<V>) -> bool {
        if entry.k != self.entries.len() as u64 + 1 {
            return false;
        }
        self.write_record(&entry);
        self.entries.push(entry);
        true
    }

    fn frontier(&self) -> u64 {
        self.entries.len() as u64
    }

    fn get(&self, k: u64) -> Option<&DecidedEntry<V>> {
        self.range(k, k).first()
    }

    fn range(&self, from_k: u64, to_k: u64) -> &[DecidedEntry<V>] {
        slice_range(&self.entries, from_k, to_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{IdSet, MsgId, Payload, ProcessId, Time};

    fn entry(k: u64) -> DecidedEntry<IdSet> {
        let id = MsgId::new(ProcessId::new(0), k);
        DecidedEntry {
            k,
            value: IdSet::from_ids([id]),
            payloads: vec![AppMessage::new(id, Payload::zeroed(8), Time::ZERO)],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("iabc-decided-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn mem_log_appends_contiguously() {
        let mut log = MemDecidedLog::new();
        assert_eq!(log.frontier(), 0);
        assert!(log.append(entry(1)));
        assert!(!log.append(entry(3)), "gap must be refused");
        assert!(!log.append(entry(1)), "duplicate must be refused");
        assert!(log.append(entry(2)));
        assert_eq!(log.frontier(), 2);
        assert_eq!(log.get(2).map(|e| e.k), Some(2));
        assert_eq!(log.range(1, 2).len(), 2);
        assert_eq!(log.range(2, 9).len(), 1);
        assert_eq!(log.range(3, 9).len(), 0);
        assert_eq!(log.range(2, 1).len(), 0);
        assert_eq!(log.range(0, u64::MAX).len(), 2);
    }

    #[test]
    fn durable_log_survives_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableDecidedLog::open(&path).unwrap();
            for k in 1..=5 {
                assert!(log.append(entry(k)));
            }
            assert!(log.io_error().is_none());
        }
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert_eq!(log.frontier(), 5);
        for k in 1..=5 {
            assert_eq!(log.get(k).unwrap(), &entry(k));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableDecidedLog::open(&path).unwrap();
            for k in 1..=3 {
                assert!(log.append(entry(k)));
            }
        }
        // Tear the last record: drop its final byte.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1]).unwrap();

        let mut log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert_eq!(log.frontier(), 2, "torn record 3 must be dropped");
        // The torn bytes are gone from disk: appending record 3 again and
        // reopening yields the intact 3-entry log.
        assert!(log.append(entry(3)));
        drop(log);
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert_eq!(log.frontier(), 3);
        assert_eq!(log.get(3).unwrap(), &entry(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_every_policy_appends_and_survives_reopen() {
        // fsync success is not observable from userspace beyond "no
        // error"; this pins the policy's behavior contract — counting,
        // no io_error, and unchanged on-disk format — for n = 1 (every
        // append) and a batching n that leaves a partial window open.
        let path = tmp("sync");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = DurableDecidedLog::open(&path).unwrap().sync_every(1);
            for k in 1..=3 {
                assert!(log.append(entry(k)));
            }
            assert!(log.io_error().is_none());
        }
        {
            let mut log = DurableDecidedLog::<IdSet>::open(&path).unwrap().sync_every(4);
            assert_eq!(log.frontier(), 3, "synced log must reopen intact");
            for k in 4..=9 {
                assert!(log.append(entry(k)));
            }
            assert!(log.io_error().is_none());
        }
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert_eq!(log.frontier(), 9, "partial sync window must still be on disk");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_recovers_empty() {
        let path = tmp("garbage");
        std::fs::write(&path, [0xFFu8; 37]).unwrap();
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert_eq!(log.frontier(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0, "garbage must be truncated");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_picks_up_external_appends() {
        let path = tmp("reload");
        let _ = std::fs::remove_file(&path);
        // A second handle (the "previous incarnation") writes two entries.
        let mut stale = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        let mut writer = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        assert!(writer.append(entry(1)));
        assert!(writer.append(entry(2)));
        drop(writer);
        assert_eq!(stale.frontier(), 0);
        stale.reload();
        assert_eq!(stale.frontier(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
