//! The top-level wire envelope multiplexing all protocol layers.

use iabc_broadcast::BcastMsg;
use iabc_consensus::ConsMsg;
use iabc_fd::FdMsg;
use iabc_types::{CodecError, Decode, Encode, TrafficClass, WireSize};

use crate::decided::DecidedEntry;

/// Everything an atomic broadcast stack puts on the wire: broadcast-layer
/// frames (carrying payloads), instance-tagged consensus frames,
/// failure-detector heartbeats, and the catch-up protocol (range requests,
/// entry batches, and the frontier-piggyback wrapper).
///
/// `V` is the consensus value type: [`IdSet`](iabc_types::IdSet) for the
/// indirect / faulty / URB stacks, [`MsgSet`](crate::MsgSet) for the
/// classic full-message reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope<V> {
    /// Broadcast layer (reliable / uniform reliable broadcast).
    Bcast(BcastMsg),
    /// Consensus layer, tagged with its instance number `k`.
    Cons {
        /// Instance number (Algorithm 1's serial number `k`).
        k: u64,
        /// The consensus message.
        msg: ConsMsg<V>,
    },
    /// Failure-detector layer.
    Fd(FdMsg),
    /// Catch-up: asks the receiver for its decided entries in
    /// `from_k..=to_k` (the receiver clamps the range to what it holds).
    CatchUpRequest {
        /// First wanted instance (inclusive).
        from_k: u64,
        /// Last wanted instance (inclusive).
        to_k: u64,
    },
    /// Catch-up: a batch of decided entries, contiguous and in instance
    /// order. May be empty when the server holds nothing in the requested
    /// range — the requester still learns the server's frontier from the
    /// [`Envelope::WithFrontier`] wrapper around every frame.
    CatchUpReply {
        /// The served entries (each self-tagged with its instance `k`).
        entries: Vec<DecidedEntry<V>>,
    },
    /// Frontier piggyback: wraps any other arm with the sender's decided
    /// frontier, so frontier propagation rides on whatever traffic already
    /// flows (RB data, consensus, heartbeats) instead of needing its own
    /// schedule. Nesting is rejected at decode time.
    WithFrontier {
        /// The sender's decided frontier (highest contiguous instance it
        /// can serve; 0 when it has nothing).
        frontier: u64,
        /// The wrapped frame.
        inner: Box<Envelope<V>>,
    },
}

impl<V: WireSize> WireSize for Envelope<V> {
    fn wire_size(&self) -> usize {
        1 + match self {
            Envelope::Bcast(m) => m.wire_size(),
            Envelope::Cons { msg, .. } => 8 + msg.wire_size(),
            Envelope::Fd(m) => m.wire_size(),
            Envelope::CatchUpRequest { .. } => 16,
            Envelope::CatchUpReply { entries } => entries.wire_size(),
            Envelope::WithFrontier { inner, .. } => 8 + inner.wire_size(),
        }
    }

    /// Two-class scheduling: broadcast frames (the payload flood) are
    /// [`TrafficClass::Bulk`]; consensus and failure-detector frames are
    /// [`TrafficClass::Ordering`] and may jump the bulk backlog wherever a
    /// transport runs the priority lane. Catch-up requests are small and
    /// latency-sensitive (Ordering); replies carry payload batches (Bulk).
    /// The frontier wrapper inherits the class of what it wraps.
    fn traffic_class(&self) -> TrafficClass {
        match self {
            Envelope::Bcast(m) => m.traffic_class(),
            Envelope::Cons { msg, .. } => msg.traffic_class(),
            Envelope::Fd(m) => m.traffic_class(),
            Envelope::CatchUpRequest { .. } => TrafficClass::Ordering,
            Envelope::CatchUpReply { .. } => TrafficClass::Bulk,
            Envelope::WithFrontier { inner, .. } => inner.traffic_class(),
        }
    }
}

impl<V: Encode> Encode for Envelope<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Envelope::Bcast(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Envelope::Cons { k, msg } => {
                buf.push(1);
                k.encode(buf);
                msg.encode(buf);
            }
            Envelope::Fd(m) => {
                buf.push(2);
                m.encode(buf);
            }
            Envelope::CatchUpRequest { from_k, to_k } => {
                buf.push(3);
                from_k.encode(buf);
                to_k.encode(buf);
            }
            Envelope::CatchUpReply { entries } => {
                buf.push(4);
                entries.encode(buf);
            }
            Envelope::WithFrontier { frontier, inner } => {
                buf.push(5);
                frontier.encode(buf);
                inner.encode(buf);
            }
        }
    }
}

impl<V: Decode + WireSize> Envelope<V> {
    /// Decodes one envelope. `allow_frontier` is cleared for the inner
    /// frame of a [`Envelope::WithFrontier`]: nesting carries no extra
    /// information and would hand remote input an unbounded recursion, so
    /// a nested wrapper is rejected as an invalid tag.
    fn decode_with_nesting(buf: &mut &[u8], allow_frontier: bool) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Envelope::Bcast(BcastMsg::decode(buf)?)),
            1 => {
                let k = u64::decode(buf)?;
                let msg = ConsMsg::decode(buf)?;
                Ok(Envelope::Cons { k, msg })
            }
            2 => Ok(Envelope::Fd(FdMsg::decode(buf)?)),
            3 => {
                let from_k = u64::decode(buf)?;
                let to_k = u64::decode(buf)?;
                Ok(Envelope::CatchUpRequest { from_k, to_k })
            }
            4 => Ok(Envelope::CatchUpReply { entries: Vec::decode(buf)? }),
            5 if allow_frontier => {
                let frontier = u64::decode(buf)?;
                let inner = Box::new(Self::decode_with_nesting(buf, false)?);
                Ok(Envelope::WithFrontier { frontier, inner })
            }
            tag => Err(CodecError::InvalidTag { tag, context: "Envelope" }),
        }
    }
}

impl<V: Decode + WireSize> Decode for Envelope<V> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Self::decode_with_nesting(buf, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;
    use iabc_types::{AppMessage, IdSet, MsgId, Payload, ProcessId, Time};

    fn app_msg() -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(0), 1), Payload::zeroed(16), Time::ZERO)
    }

    fn entry(k: u64) -> DecidedEntry<IdSet> {
        DecidedEntry {
            k,
            value: IdSet::from_ids([app_msg().id()]),
            payloads: vec![app_msg()],
        }
    }

    #[test]
    fn all_arms_roundtrip() {
        let envs: Vec<Envelope<IdSet>> = vec![
            Envelope::Bcast(BcastMsg::Data(app_msg())),
            Envelope::Cons { k: 9, msg: ConsMsg::CtAck { round: 2 } },
            Envelope::Fd(FdMsg::Heartbeat(3)),
            Envelope::CatchUpRequest { from_k: 4, to_k: 67 },
            Envelope::CatchUpReply { entries: vec![entry(4), entry(5)] },
            Envelope::CatchUpReply { entries: Vec::new() },
            Envelope::WithFrontier {
                frontier: 12,
                inner: Box::new(Envelope::Fd(FdMsg::Heartbeat(3))),
            },
            Envelope::WithFrontier {
                frontier: 0,
                inner: Box::new(Envelope::CatchUpReply { entries: vec![entry(1)] }),
            },
        ];
        for e in envs {
            assert_eq!(roundtrip(&e).unwrap(), e);
        }
    }

    #[test]
    fn nested_frontier_wrapper_rejected() {
        // A hand-crafted WithFrontier(WithFrontier(...)) must not decode:
        // nesting is meaningless and would be remote-controlled recursion.
        let nested: Envelope<IdSet> = Envelope::WithFrontier {
            frontier: 1,
            inner: Box::new(Envelope::WithFrontier {
                frontier: 2,
                inner: Box::new(Envelope::Fd(FdMsg::Heartbeat(0))),
            }),
        };
        let bytes = nested.to_bytes();
        let mut buf: &[u8] = &bytes;
        assert!(matches!(
            Envelope::<IdSet>::decode(&mut buf),
            Err(CodecError::InvalidTag { tag: 5, .. })
        ));
    }

    #[test]
    fn consensus_frames_on_ids_stay_small_while_payload_grows() {
        // Core claim of the paper, at the envelope level: the broadcast
        // frame grows with the payload, the consensus frame does not.
        let big_payload = AppMessage::new(
            MsgId::new(ProcessId::new(0), 1),
            Payload::zeroed(5000),
            Time::ZERO,
        );
        let bcast: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Data(big_payload));
        let cons: Envelope<IdSet> = Envelope::Cons {
            k: 1,
            msg: ConsMsg::CtProposal {
                round: 1,
                estimate: IdSet::from_ids([MsgId::new(ProcessId::new(0), 1)]),
            },
        };
        assert!(bcast.wire_size() > 5000);
        assert!(cons.wire_size() < 64);
    }

    #[test]
    fn classes_split_ordering_from_bulk() {
        let bcast: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Data(app_msg()));
        let relay: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Relay(app_msg()));
        let cons: Envelope<IdSet> = Envelope::Cons { k: 1, msg: ConsMsg::CtAck { round: 1 } };
        let decide: Envelope<IdSet> =
            Envelope::Cons { k: 2, msg: ConsMsg::Decide { value: IdSet::new() } };
        let fd: Envelope<IdSet> = Envelope::Fd(FdMsg::Heartbeat(9));
        assert_eq!(bcast.traffic_class(), TrafficClass::Bulk);
        assert_eq!(relay.traffic_class(), TrafficClass::Bulk);
        assert_eq!(cons.traffic_class(), TrafficClass::Ordering);
        assert_eq!(decide.traffic_class(), TrafficClass::Ordering);
        assert_eq!(fd.traffic_class(), TrafficClass::Ordering);

        // Catch-up: requests are latency-sensitive, replies move payload
        // batches; the wrapper takes the class of what it wraps.
        let req: Envelope<IdSet> = Envelope::CatchUpRequest { from_k: 1, to_k: 2 };
        let reply: Envelope<IdSet> = Envelope::CatchUpReply { entries: vec![entry(1)] };
        assert_eq!(req.traffic_class(), TrafficClass::Ordering);
        assert_eq!(reply.traffic_class(), TrafficClass::Bulk);
        let wrapped_fd: Envelope<IdSet> =
            Envelope::WithFrontier { frontier: 1, inner: Box::new(fd) };
        let wrapped_reply: Envelope<IdSet> =
            Envelope::WithFrontier { frontier: 1, inner: Box::new(reply) };
        assert_eq!(wrapped_fd.traffic_class(), TrafficClass::Ordering);
        assert_eq!(wrapped_reply.traffic_class(), TrafficClass::Bulk);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf: &[u8] = &[9];
        assert!(Envelope::<IdSet>::decode(&mut buf).is_err());
    }
}
