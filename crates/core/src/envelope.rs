//! The top-level wire envelope multiplexing all protocol layers.

use iabc_broadcast::BcastMsg;
use iabc_consensus::ConsMsg;
use iabc_fd::FdMsg;
use iabc_types::{CodecError, Decode, Encode, TrafficClass, WireSize};

/// Everything an atomic broadcast stack puts on the wire: broadcast-layer
/// frames (carrying payloads), instance-tagged consensus frames, and
/// failure-detector heartbeats.
///
/// `V` is the consensus value type: [`IdSet`](iabc_types::IdSet) for the
/// indirect / faulty / URB stacks, [`MsgSet`](crate::MsgSet) for the
/// classic full-message reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope<V> {
    /// Broadcast layer (reliable / uniform reliable broadcast).
    Bcast(BcastMsg),
    /// Consensus layer, tagged with its instance number `k`.
    Cons {
        /// Instance number (Algorithm 1's serial number `k`).
        k: u64,
        /// The consensus message.
        msg: ConsMsg<V>,
    },
    /// Failure-detector layer.
    Fd(FdMsg),
}

impl<V: WireSize> WireSize for Envelope<V> {
    fn wire_size(&self) -> usize {
        1 + match self {
            Envelope::Bcast(m) => m.wire_size(),
            Envelope::Cons { msg, .. } => 8 + msg.wire_size(),
            Envelope::Fd(m) => m.wire_size(),
        }
    }

    /// Two-class scheduling: broadcast frames (the payload flood) are
    /// [`TrafficClass::Bulk`]; consensus and failure-detector frames are
    /// [`TrafficClass::Ordering`] and may jump the bulk backlog wherever a
    /// transport runs the priority lane.
    fn traffic_class(&self) -> TrafficClass {
        match self {
            Envelope::Bcast(m) => m.traffic_class(),
            Envelope::Cons { msg, .. } => msg.traffic_class(),
            Envelope::Fd(m) => m.traffic_class(),
        }
    }
}

impl<V: Encode> Encode for Envelope<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Envelope::Bcast(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Envelope::Cons { k, msg } => {
                buf.push(1);
                k.encode(buf);
                msg.encode(buf);
            }
            Envelope::Fd(m) => {
                buf.push(2);
                m.encode(buf);
            }
        }
    }
}

impl<V: Decode + WireSize> Decode for Envelope<V> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Envelope::Bcast(BcastMsg::decode(buf)?)),
            1 => {
                let k = u64::decode(buf)?;
                let msg = ConsMsg::decode(buf)?;
                Ok(Envelope::Cons { k, msg })
            }
            2 => Ok(Envelope::Fd(FdMsg::decode(buf)?)),
            tag => Err(CodecError::InvalidTag { tag, context: "Envelope" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;
    use iabc_types::{AppMessage, IdSet, MsgId, Payload, ProcessId, Time};

    fn app_msg() -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(0), 1), Payload::zeroed(16), Time::ZERO)
    }

    #[test]
    fn all_arms_roundtrip() {
        let envs: Vec<Envelope<IdSet>> = vec![
            Envelope::Bcast(BcastMsg::Data(app_msg())),
            Envelope::Cons { k: 9, msg: ConsMsg::CtAck { round: 2 } },
            Envelope::Fd(FdMsg::Heartbeat(3)),
        ];
        for e in envs {
            assert_eq!(roundtrip(&e).unwrap(), e);
        }
    }

    #[test]
    fn consensus_frames_on_ids_stay_small_while_payload_grows() {
        // Core claim of the paper, at the envelope level: the broadcast
        // frame grows with the payload, the consensus frame does not.
        let big_payload = AppMessage::new(
            MsgId::new(ProcessId::new(0), 1),
            Payload::zeroed(5000),
            Time::ZERO,
        );
        let bcast: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Data(big_payload));
        let cons: Envelope<IdSet> = Envelope::Cons {
            k: 1,
            msg: ConsMsg::CtProposal {
                round: 1,
                estimate: IdSet::from_ids([MsgId::new(ProcessId::new(0), 1)]),
            },
        };
        assert!(bcast.wire_size() > 5000);
        assert!(cons.wire_size() < 64);
    }

    #[test]
    fn classes_split_ordering_from_bulk() {
        let bcast: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Data(app_msg()));
        let relay: Envelope<IdSet> = Envelope::Bcast(BcastMsg::Relay(app_msg()));
        let cons: Envelope<IdSet> = Envelope::Cons { k: 1, msg: ConsMsg::CtAck { round: 1 } };
        let decide: Envelope<IdSet> =
            Envelope::Cons { k: 2, msg: ConsMsg::Decide { value: IdSet::new() } };
        let fd: Envelope<IdSet> = Envelope::Fd(FdMsg::Heartbeat(9));
        assert_eq!(bcast.traffic_class(), TrafficClass::Bulk);
        assert_eq!(relay.traffic_class(), TrafficClass::Bulk);
        assert_eq!(cons.traffic_class(), TrafficClass::Ordering);
        assert_eq!(decide.traffic_class(), TrafficClass::Ordering);
        assert_eq!(fd.traffic_class(), TrafficClass::Ordering);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf: &[u8] = &[9];
        assert!(Envelope::<IdSet>::decode(&mut buf).is_err());
    }
}
