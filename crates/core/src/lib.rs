//! Atomic broadcast by reduction to (indirect) consensus — the paper's
//! Algorithm 1 and its three baselines.
//!
//! # The four stacks
//!
//! | Constructor | Broadcast | Consensus on | Correct? | Paper role |
//! |---|---|---|---|---|
//! | [`stacks::indirect_ct`] / [`stacks::indirect_mr`] | RB (O(n) or O(n²)) | id sets, **indirect** (Algorithms 2/3) | ✔ | the contribution |
//! | [`stacks::direct_ct_messages`] / [`stacks::direct_mr_messages`] | RB | **full message sets** | ✔ | classic reduction \[2\]; slow for large payloads (Fig. 1) |
//! | [`stacks::faulty_ct_ids`] / [`stacks::faulty_mr_ids`] | RB | id sets, unmodified | ✘ (§2.2) | what earlier group-communication stacks did; fast but loses Validity under a crash (Figs. 3–4) |
//! | [`stacks::urb_ct_ids`] / [`stacks::urb_mr_ids`] | **URB** | id sets, unmodified | ✔ | the other correct fix; pays URB's cost (Figs. 5–7) |
//!
//! # Algorithm 1 in this crate
//!
//! [`node::AbcastNode`] implements the reduction: `abroadcast(m)`
//! R-broadcasts `m`; every R-delivered, not-yet-ordered identifier enters
//! `unordered_p`; whenever `unordered_p ≠ ∅` and no instance is running,
//! consensus instance `k+1` is proposed with `(unordered_p, rcv)`; a
//! decision's identifiers are appended to `ordered_p` in the deterministic
//! `(sender, seq)` order; the head of `ordered_p` is a-delivered as soon as
//! its payload is present.
//!
//! # Example
//!
//! ```
//! use iabc_core::stacks::{self, StackParams};
//! use iabc_core::{AbcastCommand, AbcastEvent};
//! use iabc_sim::{NetworkParams, SimBuilder};
//! use iabc_types::{Payload, ProcessId, Time, Duration};
//!
//! // Three processes running the paper's stack: RB + indirect CT consensus.
//! let params = StackParams::fault_free(3);
//! let mut world = SimBuilder::new(3, NetworkParams::setup1())
//!     .build(|p| stacks::indirect_ct(p, &params));
//! world.schedule_command(
//!     ProcessId::new(0),
//!     Time::ZERO + Duration::from_millis(1),
//!     AbcastCommand::Broadcast(Payload::zeroed(100)),
//! );
//! world.run_to_quiescence();
//! let delivered: Vec<_> = world
//!     .outputs()
//!     .iter()
//!     .filter(|r| matches!(r.output, AbcastEvent::Delivered { .. }))
//!     .collect();
//! assert_eq!(delivered.len(), 3); // all three processes a-deliver m
//! ```

pub mod decided;
pub mod envelope;
pub mod monitor;
pub mod msgset;
pub mod node;
pub mod pending;
pub mod stacks;
pub mod store;

use iabc_types::{AppMessage, MsgId, Payload};

pub use decided::{DecidedEntry, DecidedLog, DurableDecidedLog, MemDecidedLog};
pub use envelope::Envelope;
pub use monitor::{AbcastChecker, Violation};
pub use msgset::MsgSet;
pub use node::{AbcastNode, OrderingValue, PipelineConfig, PipelineProbe, WindowController};
pub use pending::{DurablePendingStore, MemPendingStore, PendingStore};
pub use stacks::{ConsensusFamily, RbKind, StackParams, VariantKind};
pub use store::{CostModel, ReceivedStore};

/// Application command accepted by every atomic broadcast stack.
#[derive(Debug, Clone)]
pub enum AbcastCommand {
    /// `abroadcast` the given payload.
    Broadcast(Payload),
}

/// Application-visible events emitted by every atomic broadcast stack.
#[derive(Debug, Clone, PartialEq)]
pub enum AbcastEvent {
    /// A payload handed to [`AbcastCommand::Broadcast`] was assigned this
    /// identifier and R-broadcast (Algorithm 1 line 8).
    Broadcast {
        /// The new message's identifier.
        id: MsgId,
    },
    /// A message was a-delivered (Algorithm 1 line 24).
    Delivered {
        /// The delivered message (carries its a-broadcast timestamp, from
        /// which latency is computed).
        msg: AppMessage,
    },
}
