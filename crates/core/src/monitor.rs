//! Runtime verification of the atomic broadcast properties.
//!
//! [`AbcastChecker`] consumes the [`AbcastEvent`] streams of all processes
//! and checks the four properties of (uniform) atomic broadcast from §2.1
//! of the paper. Integration and property tests feed it entire simulated
//! executions — including executions designed to *fail* (the §2.2
//! counterexample), where the checker must report the violation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use iabc_types::{MsgId, ProcessId};

use crate::AbcastEvent;

/// A violation of an atomic broadcast property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Uniform integrity: a process a-delivered the same message twice.
    DuplicateDelivery {
        /// The offending process.
        process: ProcessId,
        /// The doubly-delivered identifier.
        id: MsgId,
    },
    /// Uniform integrity: a process a-delivered a message that was never
    /// a-broadcast.
    DeliveredUnknown {
        /// The offending process.
        process: ProcessId,
        /// The unknown identifier.
        id: MsgId,
    },
    /// Uniform total order: two delivery sequences are not
    /// prefix-compatible.
    OrderViolation {
        /// First process.
        a: ProcessId,
        /// Second process.
        b: ProcessId,
        /// Position of the first disagreement.
        position: usize,
    },
    /// Uniform agreement: a message delivered somewhere was not delivered
    /// by a correct process (checked at end of run).
    AgreementViolation {
        /// The identifier in question.
        id: MsgId,
        /// The correct process that missed it.
        missing_at: ProcessId,
    },
    /// Validity: a correct process a-broadcast a message that some correct
    /// process never a-delivered (checked at end of run).
    ValidityViolation {
        /// The identifier in question.
        id: MsgId,
        /// The correct process that never delivered it.
        missing_at: ProcessId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateDelivery { process, id } => {
                write!(f, "uniform integrity: {process} delivered {id} twice")
            }
            Violation::DeliveredUnknown { process, id } => {
                write!(f, "uniform integrity: {process} delivered unknown message {id}")
            }
            Violation::OrderViolation { a, b, position } => {
                write!(f, "uniform total order: {a} and {b} disagree at position {position}")
            }
            Violation::AgreementViolation { id, missing_at } => {
                write!(f, "uniform agreement: {id} delivered somewhere but not at {missing_at}")
            }
            Violation::ValidityViolation { id, missing_at } => {
                write!(f, "validity: {id} broadcast by a correct process, never delivered at {missing_at}")
            }
        }
    }
}

/// Collects per-process a-broadcast/a-deliver histories and checks the
/// atomic broadcast specification over them.
#[derive(Debug)]
pub struct AbcastChecker {
    n: usize,
    /// id → broadcaster.
    broadcast_by: BTreeMap<MsgId, ProcessId>,
    /// Per-process delivery sequence.
    sequences: Vec<Vec<MsgId>>,
    /// Per-process delivered set (duplicate detection).
    delivered: Vec<BTreeSet<MsgId>>,
    /// Violations detected during recording.
    immediate: Vec<Violation>,
}

impl AbcastChecker {
    /// Creates a checker for an `n`-process system.
    pub fn new(n: usize) -> Self {
        AbcastChecker {
            n,
            broadcast_by: BTreeMap::new(),
            sequences: vec![Vec::new(); n],
            delivered: vec![BTreeSet::new(); n],
            immediate: Vec::new(),
        }
    }

    /// Records one event observed at `process`.
    pub fn record(&mut self, process: ProcessId, event: &AbcastEvent) {
        let i = process.as_usize();
        match event {
            AbcastEvent::Broadcast { id } => {
                self.broadcast_by.insert(*id, process);
            }
            AbcastEvent::Delivered { msg } => {
                let id = msg.id();
                if !self.delivered[i].insert(id) {
                    self.immediate.push(Violation::DuplicateDelivery { process, id });
                    return;
                }
                if !self.broadcast_by.contains_key(&id) {
                    // Note: Broadcast events are recorded at command time,
                    // strictly before any delivery of that id can occur, so
                    // recording order suffices.
                    self.immediate.push(Violation::DeliveredUnknown { process, id });
                }
                self.sequences[i].push(id);
            }
        }
    }

    /// The delivery sequence of each process.
    pub fn sequences(&self) -> &[Vec<MsgId>] {
        &self.sequences
    }

    /// Safety check, valid at *any* point of a run: Uniform integrity and
    /// Uniform total order (all delivery sequences must be
    /// prefix-compatible).
    pub fn check_safety(&self) -> Vec<Violation> {
        let mut v = self.immediate.clone();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                let (sa, sb) = (&self.sequences[a], &self.sequences[b]);
                let common = sa.len().min(sb.len());
                if let Some(pos) = (0..common).find(|&i| sa[i] != sb[i]) {
                    v.push(Violation::OrderViolation {
                        a: ProcessId::new(a as u16),
                        b: ProcessId::new(b as u16),
                        position: pos,
                    });
                }
            }
        }
        v
    }

    /// End-of-run check (requires the run to have quiesced): safety plus
    /// Uniform agreement and Validity with respect to the processes marked
    /// correct in `crashed`.
    ///
    /// # Panics
    ///
    /// Panics if `crashed.len() != n`.
    pub fn check_complete(&self, crashed: &[bool]) -> Vec<Violation> {
        assert_eq!(crashed.len(), self.n, "crashed flags must cover all processes");
        let mut v = self.check_safety();

        // Uniform agreement: anything delivered anywhere must be delivered
        // at every correct process.
        let mut delivered_anywhere: BTreeSet<MsgId> = BTreeSet::new();
        for set in &self.delivered {
            delivered_anywhere.extend(set.iter().copied());
        }
        for id in &delivered_anywhere {
            for (q, delivered) in self.delivered.iter().enumerate() {
                if !crashed[q] && !delivered.contains(id) {
                    v.push(Violation::AgreementViolation {
                        id: *id,
                        missing_at: ProcessId::new(q as u16),
                    });
                }
            }
        }

        // Validity: everything broadcast by a correct process must be
        // delivered at every correct process.
        for (id, broadcaster) in &self.broadcast_by {
            if crashed[broadcaster.as_usize()] {
                continue;
            }
            for (q, delivered) in self.delivered.iter().enumerate() {
                if !crashed[q] && !delivered.contains(id) {
                    v.push(Violation::ValidityViolation {
                        id: *id,
                        missing_at: ProcessId::new(q as u16),
                    });
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{AppMessage, Payload, Time};

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn id(sender: u16, seq: u64) -> MsgId {
        MsgId::new(p(sender), seq)
    }

    fn bcast(sender: u16, seq: u64) -> AbcastEvent {
        AbcastEvent::Broadcast { id: id(sender, seq) }
    }

    fn deliver(sender: u16, seq: u64) -> AbcastEvent {
        AbcastEvent::Delivered {
            msg: AppMessage::new(id(sender, seq), Payload::zeroed(1), Time::ZERO),
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut c = AbcastChecker::new(2);
        c.record(p(0), &bcast(0, 0));
        c.record(p(1), &bcast(1, 0));
        for q in 0..2 {
            c.record(p(q), &deliver(0, 0));
            c.record(p(q), &deliver(1, 0));
        }
        assert!(c.check_safety().is_empty());
        assert!(c.check_complete(&[false, false]).is_empty());
    }

    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut c = AbcastChecker::new(1);
        c.record(p(0), &bcast(0, 0));
        c.record(p(0), &deliver(0, 0));
        c.record(p(0), &deliver(0, 0));
        let v = c.check_safety();
        assert!(matches!(v[0], Violation::DuplicateDelivery { .. }));
    }

    #[test]
    fn unknown_delivery_is_flagged() {
        let mut c = AbcastChecker::new(1);
        c.record(p(0), &deliver(5, 5));
        assert!(matches!(c.check_safety()[0], Violation::DeliveredUnknown { .. }));
    }

    #[test]
    fn order_violation_is_flagged() {
        let mut c = AbcastChecker::new(2);
        c.record(p(0), &bcast(0, 0));
        c.record(p(0), &bcast(0, 1));
        c.record(p(0), &deliver(0, 0));
        c.record(p(0), &deliver(0, 1));
        c.record(p(1), &deliver(0, 1));
        c.record(p(1), &deliver(0, 0));
        let v = c.check_safety();
        assert!(v.iter().any(|x| matches!(x, Violation::OrderViolation { position: 0, .. })));
    }

    #[test]
    fn prefix_sequences_are_fine() {
        let mut c = AbcastChecker::new(2);
        c.record(p(0), &bcast(0, 0));
        c.record(p(0), &bcast(0, 1));
        c.record(p(0), &deliver(0, 0));
        c.record(p(0), &deliver(0, 1));
        c.record(p(1), &deliver(0, 0)); // p1 is simply behind
        assert!(c.check_safety().is_empty());
    }

    #[test]
    fn agreement_violation_against_correct_process() {
        let mut c = AbcastChecker::new(2);
        c.record(p(0), &bcast(0, 0));
        c.record(p(0), &deliver(0, 0));
        // p1 (correct) never delivers.
        let v = c.check_complete(&[false, false]);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::AgreementViolation { missing_at, .. } if *missing_at == p(1)
        )));
        // If p1 crashed, there is no agreement obligation (p0 delivered and
        // p0 is correct — only correct processes owe deliveries).
        let v = c.check_complete(&[false, true]);
        assert!(v.iter().all(|x| !matches!(x, Violation::AgreementViolation { .. })));
    }

    #[test]
    fn validity_violation_only_for_correct_broadcasters() {
        let mut c = AbcastChecker::new(2);
        c.record(p(0), &bcast(0, 0));
        // Nobody delivers.
        let v = c.check_complete(&[false, false]);
        assert!(v.iter().any(|x| matches!(x, Violation::ValidityViolation { .. })));
        // If the broadcaster crashed, validity does not apply.
        let v = c.check_complete(&[true, false]);
        assert!(v.iter().all(|x| !matches!(x, Violation::ValidityViolation { .. })));
    }

    #[test]
    fn violations_display_nonempty() {
        let v = Violation::DuplicateDelivery { process: p(0), id: id(0, 0) };
        assert!(!v.to_string().is_empty());
    }
}
