//! Full message sets — the consensus values of the classic reduction.

use std::fmt;

use iabc_types::{AppMessage, CodecError, Decode, Encode, IdSet, MsgId, WireSize};

/// A set of complete application messages, ordered by identifier.
///
/// This is what consensus decides on in the classic reduction of atomic
/// broadcast to consensus \[2\]: proposals and decisions carry every
/// payload, so consensus traffic grows with message size — the behaviour
/// Figure 1 quantifies and indirect consensus eliminates.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct MsgSet {
    // Sorted by id, deduplicated.
    msgs: Vec<AppMessage>,
}

impl MsgSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MsgSet::default()
    }

    /// Creates a set from messages (sorting by id and deduplicating).
    pub fn from_msgs(iter: impl IntoIterator<Item = AppMessage>) -> Self {
        let mut msgs: Vec<AppMessage> = iter.into_iter().collect();
        msgs.sort_unstable_by_key(|m| m.id());
        msgs.dedup_by_key(|m| m.id());
        MsgSet { msgs }
    }

    /// The messages, in deterministic `(sender, seq)` order.
    pub fn as_slice(&self) -> &[AppMessage] {
        &self.msgs
    }

    /// Iterates the messages in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &AppMessage> {
        self.msgs.iter()
    }

    /// The identifiers of the contained messages.
    pub fn ids(&self) -> IdSet {
        IdSet::from_ids(self.msgs.iter().map(AppMessage::id))
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Whether a message with identifier `id` is present.
    pub fn contains(&self, id: MsgId) -> bool {
        self.msgs.binary_search_by_key(&id, |m| m.id()).is_ok()
    }
}

impl fmt::Debug for MsgSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.msgs.iter().map(|m| m.id())).finish()
    }
}

impl FromIterator<AppMessage> for MsgSet {
    fn from_iter<I: IntoIterator<Item = AppMessage>>(iter: I) -> Self {
        MsgSet::from_msgs(iter)
    }
}

impl WireSize for MsgSet {
    fn wire_size(&self) -> usize {
        4 + self.msgs.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl Encode for MsgSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.msgs.len() as u32).encode(buf);
        for m in &self.msgs {
            m.encode(buf);
        }
    }
}

impl Decode for MsgSet {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as usize;
        let mut msgs = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            msgs.push(AppMessage::decode(buf)?);
        }
        Ok(MsgSet::from_msgs(msgs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;
    use iabc_types::{Payload, ProcessId, Time};

    fn msg(p: u16, seq: u64, size: usize) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(p), seq), Payload::zeroed(size), Time::ZERO)
    }

    #[test]
    fn from_msgs_sorts_and_dedups() {
        let s = MsgSet::from_msgs(vec![msg(1, 0, 1), msg(0, 5, 1), msg(1, 0, 1)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice()[0].id(), MsgId::new(ProcessId::new(0), 5));
    }

    #[test]
    fn ids_match_contents() {
        let s = MsgSet::from_msgs(vec![msg(0, 0, 1), msg(1, 1, 1)]);
        let ids = s.ids();
        assert!(ids.contains(MsgId::new(ProcessId::new(0), 0)));
        assert!(ids.contains(MsgId::new(ProcessId::new(1), 1)));
        assert!(s.contains(MsgId::new(ProcessId::new(1), 1)));
        assert!(!s.contains(MsgId::new(ProcessId::new(2), 0)));
    }

    #[test]
    fn wire_size_grows_with_payload() {
        // The defining property of the classic reduction: consensus values
        // scale with payload size.
        let small = MsgSet::from_msgs(vec![msg(0, 0, 10)]);
        let big = MsgSet::from_msgs(vec![msg(0, 0, 5000)]);
        assert!(big.wire_size() > small.wire_size() + 4900);
    }

    #[test]
    fn codec_roundtrip() {
        let s = MsgSet::from_msgs((0..10).map(|i| msg((i % 3) as u16, i, 32)));
        assert_eq!(roundtrip(&s).unwrap(), s);
    }
}
