//! The composed atomic broadcast node (Algorithm 1 of the paper).

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

use iabc_broadcast::{BcastDest, BcastOut, Broadcast};
use iabc_consensus::{ConsDest, InstanceManager, MgrOut, RcvOracle, SingleConsensus};
use iabc_fd::{FailureDetector, FdDest, FdEvent, FdOut};
use iabc_runtime::{Context, Node, TimerId};
use iabc_types::{AppMessage, Duration, IdSet, MsgId, ProcessId, ProcessSet};

use crate::envelope::Envelope;
use crate::msgset::MsgSet;
use crate::store::{CostModel, ReceivedStore};
use crate::{AbcastCommand, AbcastEvent};

/// Timer-id kind reserved for the failure detector.
const TIMER_FD: u32 = 1;

/// How many decided consensus instances to keep as a straggler
/// retransmission cache before garbage collection (see
/// [`InstanceManager::gc_decided_below`]).
const KEEP_DECIDED_INSTANCES: u64 = 8;

/// A value type the atomic broadcast reduction can order by.
///
/// Implemented by [`IdSet`] (identifier-based stacks: indirect, faulty,
/// URB) and [`MsgSet`] (the classic full-message reduction). The node
/// manipulates proposals and decisions exclusively through this interface,
/// so one `AbcastNode` implementation covers all four stacks.
pub trait OrderingValue: iabc_consensus::ConsensusValue + Send {
    /// Builds the proposal for the next consensus instance from the
    /// currently unordered identifiers (Algorithm 1 line 17).
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self;

    /// The identifiers contained in this value, in deterministic order
    /// (Algorithm 1 line 20).
    fn ids(&self) -> IdSet;

    /// Number of identifiers (for cost accounting).
    fn id_count(&self) -> usize;

    /// The `rcv` check: whether all messages identified by this value are
    /// in `store`.
    fn held_in(&self, store: &ReceivedStore) -> bool;

    /// Adds any payloads carried *inside* the value to the store (only
    /// full-message sets carry payloads).
    fn store_payloads(&self, store: &mut ReceivedStore);
}

impl OrderingValue for IdSet {
    fn from_unordered(unordered: &IdSet, _store: &ReceivedStore) -> Self {
        unordered.clone()
    }

    fn ids(&self) -> IdSet {
        self.clone()
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, store: &ReceivedStore) -> bool {
        self.iter().all(|id| store.contains(id))
    }

    fn store_payloads(&self, _store: &mut ReceivedStore) {}
}

impl OrderingValue for MsgSet {
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self {
        MsgSet::from_msgs(unordered.iter().map(|id| {
            store
                .get(id)
                .expect("unordered ids always have payloads in the store")
                .clone()
        }))
    }

    fn ids(&self) -> IdSet {
        MsgSet::ids(self)
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, _store: &ReceivedStore) -> bool {
        true // the value carries its own payloads
    }

    fn store_payloads(&self, store: &mut ReceivedStore) {
        for m in self.iter() {
            store.insert(m.clone());
        }
    }
}

/// The node's `rcv` oracle: a view over its received-message store.
///
/// For the *faulty* and *direct* stacks `check_store` is false and the
/// oracle degenerates to "always true, free" — exactly the unchecked
/// behaviour the paper warns about in §2.2.
#[derive(Debug)]
struct NodeOracle<'a> {
    store: &'a ReceivedStore,
    check_store: bool,
    cost_per_id: Duration,
}

impl<'a, V: OrderingValue> RcvOracle<V> for NodeOracle<'a> {
    fn rcv(&self, v: &V) -> bool {
        !self.check_store || v.held_in(self.store)
    }

    fn cost(&self, v: &V) -> Duration {
        if self.check_store {
            self.cost_per_id * v.id_count() as u64
        } else {
            Duration::ZERO
        }
    }
}

/// One process of an atomic broadcast system: reliable (or uniform
/// reliable) broadcast below, a *pipelined window* of consensus instances
/// above, a failure detector on the side.
///
/// With `window == 1` this is exactly Algorithm 1: one consensus instance
/// at a time. With `window = W > 1` up to `W` instances run concurrently;
/// identifiers already proposed in an in-flight instance are excluded from
/// newer proposals, and decisions are applied strictly in instance order
/// (`k = 1, 2, …`), so the delivered total order is identical at every
/// process regardless of the order decisions *arrive* in.
///
/// Construct nodes through the [`crate::stacks`] functions, which pick the
/// broadcast module, the consensus algorithm, and the oracle mode for each
/// of the paper's four stack variants.
pub struct AbcastNode<V: OrderingValue, A: SingleConsensus<V>> {
    me: ProcessId,
    n: usize,
    bcast: Box<dyn Broadcast + Send>,
    fd: Box<dyn FailureDetector + Send>,
    mgr: InstanceManager<V, A>,
    /// `received_p`.
    store: ReceivedStore,
    /// `unordered_p`.
    unordered: IdSet,
    /// `ordered_p`: ordered, not yet delivered.
    ordered: VecDeque<MsgId>,
    /// Every identifier ever ordered (line 13's membership test must cover
    /// already-delivered ids too).
    ordered_ever: HashSet<MsgId>,
    /// Current failure-detector output.
    suspected: ProcessSet,
    /// Whether the oracle really checks the store (`false` = faulty/direct).
    check_store: bool,
    cost: CostModel,
    /// Pipeline window `W`: maximum number of instances proposed but not
    /// yet applied. `1` reproduces Algorithm 1 verbatim.
    window: usize,
    /// Serial number of the latest instance proposed locally (line 6).
    proposed_hi: u64,
    /// The next instance whose decision may be applied; decisions for
    /// higher instances are buffered, lower ones dropped as stale.
    next_apply: u64,
    /// Ids proposed per in-flight instance (proposed, decision not yet
    /// applied) — excluded from newer proposals.
    in_flight: BTreeMap<u64, IdSet>,
    /// Decisions that arrived ahead of `next_apply`, held until their turn.
    decision_buffer: BTreeMap<u64, V>,
    /// Old or duplicate decisions dropped by the routing (diagnostics).
    stale_decisions: u64,
    /// Sequence number for this process's own broadcasts.
    next_seq: u64,
    delivered_count: u64,
}

impl<V: OrderingValue, A: SingleConsensus<V>> fmt::Debug for AbcastNode<V, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbcastNode")
            .field("me", &self.me)
            .field("proposed_hi", &self.proposed_hi)
            .field("next_apply", &self.next_apply)
            .field("window", &self.window)
            .field("in_flight", &self.in_flight.len())
            .field("unordered", &self.unordered.len())
            .field("ordered_pending", &self.ordered.len())
            .field("delivered", &self.delivered_count)
            .finish()
    }
}

type Ctx<V> = Context<Envelope<V>, AbcastEvent>;

impl<V: OrderingValue, A: SingleConsensus<V>> AbcastNode<V, A> {
    /// Assembles a node from its modules. `algo_factory` builds the state
    /// machine of each consensus instance; `check_store` selects whether
    /// the `rcv` oracle really consults the received-message store;
    /// `window` is the pipeline width `W` (clamped to at least 1).
    #[allow(clippy::too_many_arguments)] // module wiring; called via stacks::*
    pub fn new(
        me: ProcessId,
        n: usize,
        bcast: Box<dyn Broadcast + Send>,
        fd: Box<dyn FailureDetector + Send>,
        algo_factory: impl FnMut(u64) -> A + Send + 'static,
        check_store: bool,
        cost: CostModel,
        window: usize,
    ) -> Self {
        AbcastNode {
            me,
            n,
            bcast,
            fd,
            mgr: InstanceManager::new(algo_factory),
            store: ReceivedStore::new(),
            unordered: IdSet::new(),
            ordered: VecDeque::new(),
            ordered_ever: HashSet::new(),
            suspected: ProcessSet::new(),
            check_store,
            cost,
            window: window.max(1),
            proposed_hi: 0,
            next_apply: 1,
            in_flight: BTreeMap::new(),
            decision_buffer: BTreeMap::new(),
            stale_decisions: 0,
            next_seq: 0,
            delivered_count: 0,
        }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages a-delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Identifiers ordered but not yet deliverable (payload still missing).
    pub fn ordered_pending(&self) -> usize {
        self.ordered.len()
    }

    /// Identifiers received but not yet ordered.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Serial number of the latest consensus instance proposed locally.
    pub fn instance(&self) -> u64 {
        self.proposed_hi
    }

    /// Pipeline window `W` this node runs with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Instances proposed locally whose decision has not been applied yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Decisions received ahead of order, waiting for a lower instance.
    pub fn buffered_decisions(&self) -> usize {
        self.decision_buffer.len()
    }

    /// Old or duplicate decisions dropped by the routing so far.
    pub fn stale_decisions(&self) -> u64 {
        self.stale_decisions
    }

    /// The received-message store (for tests and probes).
    pub fn store(&self) -> &ReceivedStore {
        &self.store
    }

    /// Consensus instance slots currently retained (live + GC cache).
    pub fn consensus_slots(&self) -> usize {
        self.mgr.slot_count()
    }

    fn send_bcast(&self, dest: BcastDest, msg: iabc_broadcast::BcastMsg, ctx: &mut Ctx<V>) {
        match dest {
            BcastDest::To(q) => ctx.send(q, Envelope::Bcast(msg)),
            BcastDest::Others => ctx.send_to_others(Envelope::Bcast(msg)),
        }
    }

    fn apply_bcast_out(&mut self, out: BcastOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            self.send_bcast(dest, msg, ctx);
        }
        for m in out.deliveries {
            self.rdeliver(m, ctx);
        }
    }

    fn apply_fd_out(&mut self, out: FdOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            match dest {
                FdDest::To(q) => ctx.send(q, Envelope::Fd(msg)),
                FdDest::Others => ctx.send_to_others(Envelope::Fd(msg)),
            }
        }
        for (delay, data) in out.timers {
            ctx.set_timer(delay, TimerId::new(TIMER_FD, data));
        }
        for change in out.changes {
            match change {
                FdEvent::Suspect(p) => {
                    self.suspected.insert(p);
                    // The broadcast layer may need to relay the suspect's
                    // messages (lazy reliable broadcast)...
                    let mut bout = BcastOut::new();
                    self.bcast.on_suspect(p, &mut bout);
                    self.apply_bcast_out(bout, ctx);
                    // ...and waiting consensus instances may need to nack.
                    let mut mout = MgrOut::new();
                    {
                        let oracle = NodeOracle {
                            store: &self.store,
                            check_store: self.check_store,
                            cost_per_id: self.cost.rcv_check_per_id,
                        };
                        self.mgr.on_suspect(p, &oracle, self.suspected, &mut mout);
                    }
                    self.apply_mgr_out(mout, ctx);
                }
                FdEvent::Trust(p) => {
                    self.suspected.remove(p);
                }
            }
        }
    }

    fn apply_mgr_out(&mut self, out: MgrOut<V>, ctx: &mut Ctx<V>) {
        ctx.work(out.work);
        for (k, dest, msg) in out.sends {
            let env = Envelope::Cons { k, msg };
            match dest {
                ConsDest::To(q) => ctx.send(q, env),
                ConsDest::All => ctx.send_to_all(env),
                ConsDest::Others => ctx.send_to_others(env),
            }
        }
        for (k, v) in out.decisions {
            self.handle_decision(k, v, ctx);
        }
    }

    /// Algorithm 1 lines 11–14: R-deliver.
    fn rdeliver(&mut self, m: AppMessage, ctx: &mut Ctx<V>) {
        let id = m.id();
        if !self.store.insert(m) {
            return; // duplicate copies are possible across layers
        }
        if !self.ordered_ever.contains(&id) {
            self.unordered.insert(id);
        }
        self.maybe_propose(ctx);
        // The payload for the head of `ordered_p` may just have arrived.
        self.try_deliver(ctx);
    }

    /// Algorithm 1 lines 15–18, generalized to a pipeline: keep proposing
    /// consecutive instances while the window has room and there are
    /// unordered identifiers not already claimed by an in-flight proposal.
    fn maybe_propose(&mut self, ctx: &mut Ctx<V>) {
        loop {
            if self.in_flight.len() >= self.window {
                return;
            }
            // Ids already riding an in-flight instance are spoken for, and
            // ids in a buffered (decided, not yet applied) decision are
            // already ordered; proposing either again would spend a whole
            // consensus round on ids the apply-time dedupe will skip.
            let mut candidate = self.unordered.clone();
            for claimed in self.in_flight.values() {
                candidate.subtract(claimed);
            }
            for decided in self.decision_buffer.values() {
                candidate.subtract(&decided.ids());
            }
            if candidate.is_empty() {
                return;
            }
            self.proposed_hi += 1;
            let k = self.proposed_hi;
            let proposal = V::from_unordered(&candidate, &self.store);
            ctx.work(self.cost.propose_per_id * proposal.id_count() as u64);
            self.in_flight.insert(k, proposal.ids());
            let mut mout = MgrOut::new();
            {
                let oracle = NodeOracle {
                    store: &self.store,
                    check_store: self.check_store,
                    cost_per_id: self.cost.rcv_check_per_id,
                };
                self.mgr.propose(k, proposal, &oracle, self.suspected, &mut mout);
            }
            // May recurse into handle_decision (an instance can decide
            // immediately); the loop re-reads window occupancy afterwards.
            self.apply_mgr_out(mout, ctx);
        }
    }

    /// Routes a decision for instance `k`: stale or duplicate decisions are
    /// dropped, future ones buffered, and the buffer is drained strictly in
    /// instance order.
    ///
    /// This replaces the seed's `debug_assert_eq!(k, self.k)` — which
    /// compiled away in release builds and let a mismatched instance number
    /// silently corrupt the ordering state — with real routing.
    fn handle_decision(&mut self, k: u64, v: V, ctx: &mut Ctx<V>) {
        if k < self.next_apply || self.decision_buffer.contains_key(&k) {
            self.stale_decisions += 1;
            return;
        }
        self.decision_buffer.insert(k, v);
        loop {
            let next = self.next_apply;
            let Some(v) = self.decision_buffer.remove(&next) else { break };
            self.next_apply += 1;
            self.apply_decision(next, v, ctx);
        }
    }

    /// Algorithm 1 lines 18–21: applies the decision of instance `k`
    /// (callers guarantee `k` is exactly the next instance in order).
    fn apply_decision(&mut self, k: u64, v: V, ctx: &mut Ctx<V>) {
        self.in_flight.remove(&k);
        // Full-message values teach us payloads we may not have R-delivered
        // yet (and in the classic reduction, this is the only way a slow
        // process learns them in time).
        v.store_payloads(&mut self.store);
        let ids = v.ids();
        ctx.work(self.cost.order_per_id * ids.len() as u64);
        self.unordered.subtract(&ids);
        for id in ids.iter() {
            if self.ordered_ever.insert(id) {
                self.ordered.push_back(id);
            }
            // else: with W > 1, an id decided by instance k may also sit in
            // a concurrent proposal that a later instance decides — every
            // process applies decisions in the same order and skips the
            // duplicate here, so the total order stays identical.
        }
        self.try_deliver(ctx);
        // Bound the manager's footprint: old decided instances only serve
        // stragglers, and the decide relay already covers those in practice.
        self.mgr.gc_decided_below(self.next_apply, KEEP_DECIDED_INSTANCES);
        self.maybe_propose(ctx);
    }

    /// Algorithm 1 lines 22–25: deliver ordered messages whose payload is
    /// present, in order.
    fn try_deliver(&mut self, ctx: &mut Ctx<V>) {
        while let Some(&head) = self.ordered.front() {
            let Some(m) = self.store.get(head) else { break };
            let msg = m.clone();
            self.ordered.pop_front();
            self.delivered_count += 1;
            ctx.output(AbcastEvent::Delivered { msg });
        }
    }
}

impl<V: OrderingValue, A: SingleConsensus<V>> Node for AbcastNode<V, A> {
    type Msg = Envelope<V>;
    type Command = AbcastCommand;
    type Output = AbcastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<V>) {
        let mut fout = FdOut::new();
        self.fd.on_start(ctx.now(), &mut fout);
        self.apply_fd_out(fout, ctx);
    }

    fn on_command(&mut self, cmd: AbcastCommand, ctx: &mut Ctx<V>) {
        let AbcastCommand::Broadcast(payload) = cmd;
        let id = MsgId::new(self.me, self.next_seq);
        self.next_seq += 1;
        let m = AppMessage::new(id, payload, ctx.now());
        ctx.output(AbcastEvent::Broadcast { id });
        // Algorithm 1 line 8: R-broadcast(m).
        let mut bout = BcastOut::new();
        self.bcast.broadcast(m, &mut bout);
        self.apply_bcast_out(bout, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Envelope<V>, ctx: &mut Ctx<V>) {
        match msg {
            Envelope::Bcast(b) => {
                let mut bout = BcastOut::new();
                self.bcast.on_message(from, b, &mut bout);
                self.apply_bcast_out(bout, ctx);
            }
            Envelope::Cons { k, msg } => {
                let mut mout = MgrOut::new();
                {
                    let oracle = NodeOracle {
                        store: &self.store,
                        check_store: self.check_store,
                        cost_per_id: self.cost.rcv_check_per_id,
                    };
                    self.mgr.on_message(k, from, msg, &oracle, self.suspected, &mut mout);
                }
                self.apply_mgr_out(mout, ctx);
            }
            Envelope::Fd(f) => {
                let mut fout = FdOut::new();
                self.fd.on_message(ctx.now(), from, f, &mut fout);
                self.apply_fd_out(fout, ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Ctx<V>) {
        if timer.kind() == TIMER_FD {
            let mut fout = FdOut::new();
            self.fd.on_timer(ctx.now(), timer.data(), &mut fout);
            self.apply_fd_out(fout, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_broadcast::{BcastMsg, EagerRb};
    use iabc_consensus::{ConsMsg, CtConsensus};
    use iabc_fd::NeverSuspect;
    use iabc_runtime::Action;
    use iabc_types::{Payload, Time};

    fn msg(p: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(p), seq), Payload::zeroed(8), Time::ZERO)
    }

    /// A three-process indirect-CT node under direct test control.
    fn test_node(window: usize) -> AbcastNode<IdSet, CtConsensus<IdSet>> {
        AbcastNode::new(
            ProcessId::new(0),
            3,
            Box::new(EagerRb::new()),
            Box::new(NeverSuspect::new()),
            |k| CtConsensus::with_coord_offset(ProcessId::new(0), 3, k),
            true,
            CostModel::zero(),
            window,
        )
    }

    fn ctx() -> Ctx<IdSet> {
        Context::new(ProcessId::new(0), 3, Time::ZERO)
    }

    /// Feeds an R-broadcast data frame from `from` into the node.
    fn deliver_data(
        node: &mut AbcastNode<IdSet, CtConsensus<IdSet>>,
        from: u16,
        m: AppMessage,
        c: &mut Ctx<IdSet>,
    ) {
        node.on_message(ProcessId::new(from), Envelope::Bcast(BcastMsg::Data(m)), c);
    }

    /// Feeds a consensus Decide frame for instance `k` into the node.
    fn deliver_decide(
        node: &mut AbcastNode<IdSet, CtConsensus<IdSet>>,
        k: u64,
        value: IdSet,
        c: &mut Ctx<IdSet>,
    ) {
        node.on_message(
            ProcessId::new(1),
            Envelope::Cons { k, msg: ConsMsg::Decide { value } },
            c,
        );
    }

    fn delivered_ids(c: &mut Ctx<IdSet>) -> Vec<MsgId> {
        c.take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Output(AbcastEvent::Delivered { msg }) => Some(msg.id()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn window_one_runs_a_single_instance_at_a_time() {
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        // Algorithm 1 verbatim: the second id waits for instance 1.
        assert_eq!(node.instance(), 1);
        assert_eq!(node.in_flight(), 1);
        assert_eq!(node.unordered_len(), 2);
    }

    #[test]
    fn window_limits_and_excludes_in_flight_ids() {
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        deliver_data(&mut node, 1, msg(1, 2), &mut c);
        // Two instances in flight (window), carrying disjoint proposals;
        // the third id must wait for a slot.
        assert_eq!(node.instance(), 2);
        assert_eq!(node.in_flight(), 2);
        assert_eq!(node.unordered_len(), 3);
    }

    #[test]
    fn out_of_order_decision_is_buffered_until_its_turn() {
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c); // instance 1 = {m0}
        deliver_data(&mut node, 1, msg(1, 1), &mut c); // instance 2 = {m1}
        assert_eq!(node.in_flight(), 2);

        // Instance 2 decides first: nothing may be delivered yet.
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        assert_eq!(node.delivered_count(), 0, "future decision must be buffered");
        assert_eq!(node.buffered_decisions(), 1);

        // Instance 1 decides: both apply, strictly in instance order.
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 2);
        assert_eq!(node.buffered_decisions(), 0);
        assert_eq!(node.in_flight(), 0);
        assert_eq!(delivered_ids(&mut c), vec![msg(1, 0).id(), msg(1, 1).id()]);
    }

    /// Regression for the seed's `debug_assert_eq!(k, self.k)`: in release
    /// builds a decision for a non-current instance silently cleared
    /// `running` and corrupted the ordering state. The routing must drop
    /// stale/duplicate decisions — in every build profile.
    #[test]
    fn stale_decision_is_dropped_never_misapplied() {
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 1);

        // A duplicate/old decision for instance 1 arrives (e.g. a straggler
        // relay): it must be dropped wholesale, not applied to the current
        // instance's state.
        let ghost = IdSet::from_ids([msg(2, 9).id()]);
        node.handle_decision(1, ghost, &mut c);
        assert_eq!(node.stale_decisions(), 1);
        assert_eq!(node.delivered_count(), 1, "stale decision must not deliver");
        assert_eq!(node.instance(), 1, "stale decision must not trigger proposals");
        assert_eq!(node.ordered_pending(), 0);

        // Same for a decision duplicating an already-buffered instance.
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        node.handle_decision(2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        node.handle_decision(2, IdSet::from_ids([msg(2, 7).id()]), &mut c);
        assert_eq!(node.stale_decisions(), 1, "duplicate buffered decision dropped");
        assert_eq!(node.buffered_decisions(), 1);
    }

    #[test]
    fn overlapping_decisions_dedupe_deterministically() {
        // With W > 1 an id can be decided by instance k and also ride a
        // concurrent proposal decided in k+1 (another process proposed it
        // first). The duplicate must be skipped, once, at apply time.
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c); // instance 1 = {m0}
        deliver_data(&mut node, 1, msg(1, 1), &mut c); // instance 2 = {m1}
        // Instance 1 decides a peer's proposal that already contains m1.
        deliver_decide(
            &mut node,
            1,
            IdSet::from_ids([msg(1, 0).id(), msg(1, 1).id()]),
            &mut c,
        );
        assert_eq!(node.delivered_count(), 2);
        // Instance 2 then decides our own {m1}: already ordered, skipped.
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        assert_eq!(node.delivered_count(), 2, "duplicate id must not re-deliver");
        assert_eq!(
            delivered_ids(&mut c),
            vec![msg(1, 0).id(), msg(1, 1).id()],
            "order fixed by instance order, duplicates dropped"
        );
    }

    #[test]
    fn idset_ordering_value() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 5).id()]);
        let v = IdSet::from_unordered(&unordered, &store);
        assert_eq!(v, unordered);
        assert_eq!(v.id_count(), 2);
        assert!(!OrderingValue::held_in(&v, &store), "msg(1,5) is missing");
        store.insert(msg(1, 5));
        assert!(OrderingValue::held_in(&v, &store));
    }

    #[test]
    fn msgset_ordering_value_carries_payloads() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        store.insert(msg(1, 1));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 1).id()]);
        let v = MsgSet::from_unordered(&unordered, &store);
        assert_eq!(v.len(), 2);
        assert!(v.held_in(&ReceivedStore::new()), "MsgSet is self-contained");
        // A fresh store learns the payloads from the value.
        let mut fresh = ReceivedStore::new();
        v.store_payloads(&mut fresh);
        assert!(fresh.contains(msg(0, 0).id()));
        assert!(fresh.contains(msg(1, 1).id()));
    }

    #[test]
    fn node_oracle_modes() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let missing = IdSet::from_ids([msg(9, 9).id()]);

        let checking = NodeOracle {
            store: &store,
            check_store: true,
            cost_per_id: Duration::from_micros(10),
        };
        assert!(!RcvOracle::<IdSet>::rcv(&checking, &missing));
        assert_eq!(RcvOracle::<IdSet>::cost(&checking, &missing), Duration::from_micros(10));

        let faulty = NodeOracle { store: &store, check_store: false, cost_per_id: Duration::ZERO };
        assert!(RcvOracle::<IdSet>::rcv(&faulty, &missing), "the faulty oracle lies");
        assert_eq!(RcvOracle::<IdSet>::cost(&faulty, &missing), Duration::ZERO);
    }
}
