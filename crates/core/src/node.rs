//! The composed atomic broadcast node (Algorithm 1 of the paper).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use iabc_broadcast::{BcastDest, BcastOut, Broadcast};
use iabc_consensus::{ConsDest, InstanceManager, MgrOut, RcvOracle, SingleConsensus};
use iabc_fd::{FailureDetector, FdDest, FdEvent, FdOut};
use iabc_runtime::{Context, Node, TimerId};
use iabc_types::{AppMessage, Duration, Ewma, IdSet, MsgId, ProcessId, ProcessSet, Time};

/// Configuration of the consensus pipeline: window bounds, the adaptive
/// controller's thresholds, and the server-side proposal cap.
///
/// `w_min == w_max` is a *static* window — the controller is inert and the
/// node behaves exactly like the fixed-`W` pipeline (`W = 1` is Algorithm 1
/// verbatim, what every paper-figure bin measures). `w_min < w_max` arms
/// the AIMD controller (see [`WindowController`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Lower window bound (≥ 1). Also the controller's starting window.
    pub w_min: usize,
    /// Upper window bound (≥ `w_min`).
    pub w_max: usize,
    /// Decision latency (local propose → decision applied) above which the
    /// adaptive controller halves the window.
    pub latency_target: Duration,
    /// `unordered` backlog depth above which the adaptive controller
    /// halves the window even if latency still looks healthy.
    pub backlog_limit: usize,
    /// Maximum identifiers per proposal; the remainder *spills* to the
    /// next instance. `usize::MAX` = uncapped (the seed behaviour).
    pub max_proposal_ids: usize,
    /// When `true`, the adaptive controller's latency signal is
    /// *EWMA-relative*: it halves when a decision's latency worsens past
    /// [`EWMA_WORSEN_FACTOR`] times the controller's own moving average,
    /// instead of crossing the absolute `latency_target` — removing the
    /// one knob operators must otherwise tune per deployment.
    pub ewma_signal: bool,
    /// When `true`, proposals exclude identifiers *younger than ~one flood
    /// delay* (measured: an EWMA of this node's own RB delivery latency).
    /// A proposal naming a just-arrived id overtakes that id's Data frames
    /// — consensus frames ride the fast path, payload floods the slow one,
    /// most extremely so with the priority lane on — and every acceptor
    /// still missing the payload burns the round with a nack. Gated ids
    /// simply wait in `unordered` until they mature; a re-propose timer
    /// guarantees they are picked up even if no other event arrives, so no
    /// id is ever excluded permanently.
    pub proposal_freshness: bool,
    /// When `true`, the node keeps a [`crate::decided::DecidedLog`] of
    /// fully a-delivered instances, piggybacks its decided frontier on
    /// every outgoing frame, and fetches ranges it is missing from peers
    /// whose frontier is ahead (`CatchUpRequest`/`CatchUpReply`). Off by
    /// default: the wire format and event sequences of a catch-up-off
    /// node are bit-identical to the pre-catch-up behaviour.
    pub catch_up: bool,
    /// When `true`, the node is a *learner* (read replica): it never
    /// a-broadcasts, never proposes, and drops all consensus traffic
    /// (no acks), converging on the decided sequence purely through the
    /// frontier piggyback and catch-up. It also sends no heartbeats, so
    /// heartbeat failure detectors suspect it and consensus rotates past
    /// any round that would have it coordinate. Implies `catch_up`.
    pub learner: bool,
}

/// Smoothing factor of the EWMA latency baseline (weight of the newest
/// observation).
pub const EWMA_ALPHA: f64 = 0.2;

/// How much a decision's latency must exceed the EWMA baseline to count as
/// congestion in [`PipelineConfig::ewma_signal`] mode.
pub const EWMA_WORSEN_FACTOR: f64 = 2.0;

/// Observations needed before the EWMA baseline is trusted; earlier
/// decisions only seed it (a cold controller must not halve on its very
/// first, unavoidably noisy samples).
const EWMA_WARMUP: u64 = 4;

/// R-deliveries of *remote* messages a node must observe before its flood
/// delay estimate is trusted and the freshness gate arms (see
/// [`PipelineConfig::proposal_freshness`]). Until then the gate is inert —
/// a cold node must not defer proposals on a noisy first sample.
pub const FRESHNESS_WARMUP: u64 = 8;

/// Smoothing factor of the flood delay EWMA (weight of the newest
/// observation). Deliberately lighter than [`EWMA_ALPHA`]: delivery
/// latency under load swings with queue depth, and a jumpy threshold
/// would make the gate flap between deferring everything and nothing.
pub const FRESHNESS_ALPHA: f64 = 0.1;

/// Safety factor on the flood delay estimate: an id is mature once it is
/// `FRESHNESS_FACTOR ×` the EWMA delivery latency old.
///
/// The EWMA is a *mean*, so at factor 1 roughly half of a flood's tail is
/// still in flight when the gate opens — measurably, proposals still nack
/// about as often as the tight-cap configuration. A small margin covers
/// most of that jitter (at the 4 000 payloads/s knee: ~10× fewer nacked
/// rounds for ~8% goodput). Large factors are *unstable* under
/// saturation: delivery latency includes bulk queueing, so deferring
/// aggressively deepens the very queues the estimate measures and the
/// threshold runs away — factor 1.5 already collapses the knee to ~15%
/// of the factor-1.1 goodput. Keep this close to 1.
pub const FRESHNESS_FACTOR: f64 = 1.1;

impl PipelineConfig {
    /// A static window of `w` instances (clamped to at least 1), uncapped
    /// proposals — today's `with_window` behaviour.
    pub fn fixed(w: usize) -> Self {
        let w = w.max(1);
        PipelineConfig {
            w_min: w,
            w_max: w,
            latency_target: Duration::from_millis(10),
            backlog_limit: 1024,
            max_proposal_ids: usize::MAX,
            ewma_signal: false,
            proposal_freshness: false,
            catch_up: false,
            learner: false,
        }
    }

    /// An adaptive window in `[min, max]` (clamped to `1 ≤ min ≤ max`).
    pub fn adaptive(min: usize, max: usize) -> Self {
        let min = min.max(1);
        PipelineConfig { w_min: min, w_max: max.max(min), ..PipelineConfig::fixed(1) }
    }

    /// Whether the AIMD controller is armed.
    pub fn is_adaptive(&self) -> bool {
        self.w_min < self.w_max
    }

    /// Enables (or disables) the proposal freshness gate — see
    /// [`PipelineConfig::proposal_freshness`].
    pub fn with_proposal_freshness(mut self, on: bool) -> Self {
        self.proposal_freshness = on;
        self
    }

    /// Enables (or disables) the decided log, frontier piggyback, and
    /// catch-up protocol — see [`PipelineConfig::catch_up`].
    pub fn with_catch_up(mut self, on: bool) -> Self {
        self.catch_up = on;
        self
    }

    /// Makes the node a learner (read replica) — see
    /// [`PipelineConfig::learner`]. Enabling it also enables `catch_up`
    /// (a learner has no other way to learn decisions).
    pub fn with_learner(mut self, on: bool) -> Self {
        self.learner = on;
        if on {
            self.catch_up = true;
        }
        self
    }
}

/// AIMD controller for the pipeline window `W`.
///
/// Fed one observation per *locally proposed* decision as it is applied:
/// the instance's decision latency (propose → apply, including any
/// in-order buffering — head-of-line blocking is precisely the congestion
/// signal) and the `unordered` backlog depth after the decision.
///
/// * **Additive increase**: after `W` consecutive healthy decisions while
///   the window was fully occupied and work was still waiting, grow by 1
///   (up to `w_max`). Requiring full occupancy keeps an idle system from
///   drifting to `w_max` with a stale window.
/// * **Multiplicative decrease**: a decision over the latency target, or a
///   backlog past the limit, halves the window (down to `w_min`). Only
///   instances proposed *after* the previous decrease can trigger another
///   one — decisions already in flight reflect the old window, and
///   punishing them again would collapse straight to `w_min` on every
///   congestion burst.
/// * **Spill pressure** (capped pipelines only): when the backlog exceeds
///   what a full window of capped proposals can even hold
///   (`backlog > W × max_proposal_ids`), the window grows on every
///   decision instead of halving — the cap already bounds the per-message
///   `rcv()` bookkeeping each instance can cost, so the right response to
///   a deep backlog is more concurrency, not less. Shrinking resumes once
///   the backlog fits the window again. Uncapped adaptive pipelines have
///   no spill pressure: for them a deep backlog means unbounded proposals
///   are already wedging the CPU, and the backlog limit halves the window
///   exactly as the static sweep's `W=16, B=1` collapse demands.
#[derive(Debug, Clone)]
pub struct WindowController {
    cfg: PipelineConfig,
    cur: usize,
    /// Consecutive healthy, window-limited decisions since the last change.
    good_streak: usize,
    /// Instances ≤ this watermark cannot trigger a decrease.
    decrease_watermark: u64,
    increases: u64,
    decreases: u64,
    /// EWMA of observed decision latencies, seconds (EWMA-signal mode).
    ewma: Ewma,
}

impl WindowController {
    /// Creates a controller starting at `cfg.w_min`.
    pub fn new(cfg: PipelineConfig) -> Self {
        WindowController {
            cfg,
            cur: cfg.w_min,
            good_streak: 0,
            decrease_watermark: 0,
            increases: 0,
            decreases: 0,
            ewma: Ewma::new(EWMA_ALPHA),
        }
    }

    /// The window the pipeline may currently fill.
    pub fn current(&self) -> usize {
        self.cur
    }

    /// `(w_min, w_max)`.
    pub fn bounds(&self) -> (usize, usize) {
        (self.cfg.w_min, self.cfg.w_max)
    }

    /// Whether this controller adapts at all.
    pub fn is_adaptive(&self) -> bool {
        self.cfg.is_adaptive()
    }

    /// `(additive increases, multiplicative decreases)` so far.
    pub fn adaptations(&self) -> (u64, u64) {
        (self.increases, self.decreases)
    }

    /// The EWMA latency baseline in seconds, once warmed up (EWMA-signal
    /// mode only; `None` before [`EWMA_WARMUP`] observations).
    pub fn ewma_latency_secs(&self) -> Option<f64> {
        (self.cfg.ewma_signal && self.ewma.warmed(EWMA_WARMUP)).then(|| self.ewma.value())
    }

    /// Whether a decision's latency signals congestion, updating the EWMA
    /// baseline on the way (every observed latency feeds it, congested or
    /// not — a halved window must re-earn its baseline, and a slow drift
    /// upward must not trigger on every sample).
    fn latency_congested(&mut self, latency: Option<Duration>) -> bool {
        let Some(l) = latency else { return false };
        if !self.cfg.ewma_signal {
            return l > self.cfg.latency_target;
        }
        let secs = l.as_secs_f64();
        let worsened =
            self.ewma.warmed(EWMA_WARMUP) && secs > EWMA_WORSEN_FACTOR * self.ewma.value();
        self.ewma.observe(secs);
        worsened
    }

    /// How many capped instances the backlog needs, clamped to the
    /// bounds; `w_min` for uncapped pipelines.
    fn window_needed(&self, backlog: usize) -> usize {
        if self.cfg.max_proposal_ids == usize::MAX {
            return self.cfg.w_min;
        }
        backlog.div_ceil(self.cfg.max_proposal_ids).clamp(self.cfg.w_min, self.cfg.w_max)
    }

    /// Fed by the proposer each time it fills the window while the
    /// backlog spills past it (capped pipelines only): widens the window
    /// toward what the backlog needs *now*, without waiting for a
    /// decision. Decisions are the controller's usual clock, but under
    /// overload they are exactly what becomes scarce — a controller that
    /// only adapts on decisions wedges at the old window.
    pub fn on_spill(&mut self, backlog: usize) {
        if !self.cfg.is_adaptive() || self.cfg.max_proposal_ids == usize::MAX {
            return;
        }
        if backlog > self.cur.saturating_mul(self.cfg.max_proposal_ids)
            && self.cur < self.cfg.w_max
        {
            self.cur = self.window_needed(backlog).max(self.cur + 1).min(self.cfg.w_max);
            self.good_streak = 0;
            self.increases += 1;
        }
    }

    /// Feeds the decision of instance `k`. `proposed_hi` is the highest
    /// locally proposed instance (the watermark for decrease damping),
    /// `latency` the propose→apply time when known, `backlog` the
    /// `unordered` depth after the decision, and `window_was_full` whether
    /// the pipeline was at capacity when the decision landed.
    pub fn on_decision(
        &mut self,
        k: u64,
        proposed_hi: u64,
        latency: Option<Duration>,
        backlog: usize,
        window_was_full: bool,
    ) {
        if !self.cfg.is_adaptive() {
            return;
        }
        // Spill pressure: the backlog does not even fit a full window of
        // capped proposals (uncapped pipelines never spill — a single
        // proposal holds any backlog).
        let spill_pressure = self.cfg.max_proposal_ids != usize::MAX
            && backlog > self.cur.saturating_mul(self.cfg.max_proposal_ids);
        let over_latency = self.latency_congested(latency);
        if (over_latency || backlog > self.cfg.backlog_limit) && !spill_pressure {
            if k > self.decrease_watermark {
                // Halve, but never below what the backlog still needs
                // (capped pipelines): dropping under that would just
                // re-trigger spill growth on the next proposal.
                self.cur = (self.cur / 2).max(self.window_needed(backlog)).max(self.cfg.w_min);
                self.decrease_watermark = proposed_hi;
                self.good_streak = 0;
                self.decreases += 1;
            }
            return;
        }
        if window_was_full && backlog > 0 && self.cur < self.cfg.w_max {
            self.good_streak += 1;
            if spill_pressure {
                // The backlog dictates the window: jump to the number of
                // capped instances the backlog actually needs (at least
                // one step).
                self.cur = self.window_needed(backlog).max(self.cur + 1).min(self.cfg.w_max);
                self.good_streak = 0;
                self.increases += 1;
            } else if self.good_streak >= self.cur {
                // Classic additive increase: +1 per window of healthy
                // decisions.
                self.cur += 1;
                self.good_streak = 0;
                self.increases += 1;
            }
        }
    }
}

use crate::decided::{DecidedEntry, DecidedLog, MemDecidedLog};
use crate::envelope::Envelope;
use crate::msgset::MsgSet;
use crate::pending::{MemPendingStore, PendingStore};
use crate::store::{CostModel, ReceivedStore};
use crate::{AbcastCommand, AbcastEvent};

/// Timer-id kind reserved for the failure detector.
const TIMER_FD: u32 = 1;

/// Timer-id kind of the freshness gate's re-propose wake-up: armed when a
/// proposal slot was available but *every* candidate id was still too
/// young, so `maybe_propose` runs again once the earliest of them matures
/// — without this, a gated backlog with no further inbound traffic would
/// never be proposed (liveness).
const TIMER_PROPOSE: u32 = 2;

/// Timer-id kind of the catch-up retry: armed with each outstanding
/// [`Envelope::CatchUpRequest`]; if the reply never arrives (request or
/// reply lost, server crashed) the node re-requests from the then-best
/// peer. The timer's `data` carries the request epoch so a late reply
/// followed by a stale timer cannot double-request.
const TIMER_CATCHUP: u32 = 3;

/// How many decided consensus instances to keep as a straggler
/// retransmission cache before garbage collection (see
/// [`InstanceManager::gc_decided_below`]).
const KEEP_DECIDED_INSTANCES: u64 = 8;

/// Maximum decided entries per [`Envelope::CatchUpReply`] — the requester
/// asks for at most this many and the server clamps to it regardless, so
/// a deep gap streams as bounded batches instead of one giant frame.
const CATCH_UP_BATCH: u64 = 64;

/// Initial wait for a [`Envelope::CatchUpReply`] before re-requesting.
/// Each unanswered request doubles the wait (exponential backoff) up to
/// [`CATCH_UP_RETRY_MAX`]; a reply resets it. A fixed short retry would
/// hammer a partitioned or overloaded peer with requests it cannot answer.
const CATCH_UP_RETRY: Duration = Duration::from_millis(25);

/// Upper bound of the catch-up retry backoff.
const CATCH_UP_RETRY_MAX: Duration = Duration::from_millis(400);

/// A value type the atomic broadcast reduction can order by.
///
/// Implemented by [`IdSet`] (identifier-based stacks: indirect, faulty,
/// URB) and [`MsgSet`] (the classic full-message reduction). The node
/// manipulates proposals and decisions exclusively through this interface,
/// so one `AbcastNode` implementation covers all four stacks.
pub trait OrderingValue: iabc_consensus::ConsensusValue + Send + 'static {
    /// Builds the proposal for the next consensus instance from the
    /// currently unordered identifiers (Algorithm 1 line 17).
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self;

    /// The identifiers contained in this value, in deterministic order
    /// (Algorithm 1 line 20).
    fn ids(&self) -> IdSet;

    /// Number of identifiers (for cost accounting).
    fn id_count(&self) -> usize;

    /// The `rcv` check: whether all messages identified by this value are
    /// in `store`.
    fn held_in(&self, store: &ReceivedStore) -> bool;

    /// Adds any payloads carried *inside* the value to the store (only
    /// full-message sets carry payloads).
    fn store_payloads(&self, store: &mut ReceivedStore);
}

impl OrderingValue for IdSet {
    fn from_unordered(unordered: &IdSet, _store: &ReceivedStore) -> Self {
        unordered.clone()
    }

    fn ids(&self) -> IdSet {
        self.clone()
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, store: &ReceivedStore) -> bool {
        self.iter().all(|id| store.contains(id))
    }

    fn store_payloads(&self, _store: &mut ReceivedStore) {}
}

impl OrderingValue for MsgSet {
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self {
        MsgSet::from_msgs(unordered.iter().map(|id| {
            store
                .get(id)
                // lint:allow(P1): rcv predicate — ids enter `unordered` only after their payload is stored (maybe_propose gates on held_in)
                .expect("unordered ids always have payloads in the store")
                .clone()
        }))
    }

    fn ids(&self) -> IdSet {
        MsgSet::ids(self)
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, _store: &ReceivedStore) -> bool {
        true // the value carries its own payloads
    }

    fn store_payloads(&self, store: &mut ReceivedStore) {
        for m in self.iter() {
            store.insert(m.clone());
        }
    }
}

/// The node's `rcv` oracle: a view over its received-message store.
///
/// For the *faulty* and *direct* stacks `check_store` is false and the
/// oracle degenerates to "always true, free" — exactly the unchecked
/// behaviour the paper warns about in §2.2.
#[derive(Debug)]
struct NodeOracle<'a> {
    store: &'a ReceivedStore,
    check_store: bool,
    cost_per_id: Duration,
}

impl<'a, V: OrderingValue> RcvOracle<V> for NodeOracle<'a> {
    fn rcv(&self, v: &V) -> bool {
        !self.check_store || v.held_in(self.store)
    }

    fn cost(&self, v: &V) -> Duration {
        if self.check_store {
            self.cost_per_id * v.id_count() as u64
        } else {
            Duration::ZERO
        }
    }
}

/// One process of an atomic broadcast system: reliable (or uniform
/// reliable) broadcast below, a *pipelined window* of consensus instances
/// above, a failure detector on the side.
///
/// With `window == 1` this is exactly Algorithm 1: one consensus instance
/// at a time. With `window = W > 1` up to `W` instances run concurrently;
/// identifiers already proposed in an in-flight instance are excluded from
/// newer proposals, and decisions are applied strictly in instance order
/// (`k = 1, 2, …`), so the delivered total order is identical at every
/// process regardless of the order decisions *arrive* in.
///
/// Construct nodes through the [`crate::stacks`] functions, which pick the
/// broadcast module, the consensus algorithm, and the oracle mode for each
/// of the paper's four stack variants.
pub struct AbcastNode<V: OrderingValue, A: SingleConsensus<V>> {
    me: ProcessId,
    n: usize,
    bcast: Box<dyn Broadcast + Send>,
    fd: Box<dyn FailureDetector + Send>,
    mgr: InstanceManager<V, A>,
    /// `received_p`.
    store: ReceivedStore,
    /// `unordered_p`.
    unordered: IdSet,
    /// `ordered_p`: ordered, not yet delivered.
    ordered: VecDeque<MsgId>,
    /// Every identifier ever ordered (line 13's membership test must cover
    /// already-delivered ids too).
    ordered_ever: BTreeSet<MsgId>,
    /// Current failure-detector output.
    suspected: ProcessSet,
    /// Whether the oracle really checks the store (`false` = faulty/direct).
    check_store: bool,
    cost: CostModel,
    /// Pipeline window `W`: the controller caps how many instances may be
    /// proposed but not yet applied. Static configs reproduce the fixed-`W`
    /// pipeline (`W = 1` is Algorithm 1 verbatim).
    controller: WindowController,
    /// Maximum identifiers per proposal; the rest spills to the next
    /// instance (`usize::MAX` = uncapped).
    max_proposal_ids: usize,
    /// Proposals whose candidate set exceeded `max_proposal_ids`.
    cap_hits: u64,
    /// Serial number of the latest instance proposed locally (line 6).
    proposed_hi: u64,
    /// The next instance whose decision may be applied; decisions for
    /// higher instances are buffered, lower ones dropped as stale.
    next_apply: u64,
    /// Ids proposed per in-flight instance (proposed, decision not yet
    /// applied) — excluded from newer proposals.
    in_flight: BTreeMap<u64, IdSet>,
    /// Decisions that arrived ahead of `next_apply`, held until their turn.
    decision_buffer: BTreeMap<u64, V>,
    /// Old or duplicate decisions dropped by the routing (diagnostics).
    stale_decisions: u64,
    /// Sequence number for this process's own broadcasts.
    next_seq: u64,
    delivered_count: u64,
    /// Sum of observed decision latencies (locally proposed instances,
    /// propose → apply), for the experiment harness's mean.
    decision_latency_total: Duration,
    /// Number of latencies in `decision_latency_total`.
    decision_latency_count: u64,
    /// Whether the freshness gate is enabled (see
    /// [`PipelineConfig::proposal_freshness`]).
    proposal_freshness: bool,
    /// EWMA of observed RB delivery latency (broadcast → local R-deliver)
    /// over *remote* messages, in seconds — the node's flood delay
    /// estimate. Local deliveries are instant and would drag it to zero.
    flood_delay: Ewma,
    /// Latest broadcast instant among all R-delivered messages: once even
    /// this one is past the maturity threshold, every candidate id is
    /// mature and the gate's per-id scan can be skipped wholesale — the
    /// steady-state common case under a deep (hence old) backlog.
    newest_broadcast_at: Time,
    /// Identifiers excluded from proposals by the freshness gate so far
    /// (cumulative over proposals; a slow-maturing id counts once per
    /// proposal it sat out).
    freshness_held: u64,
    /// Whether a [`TIMER_PROPOSE`] wake-up is already in flight.
    propose_timer_armed: bool,
    /// Consensus refusal *messages* this node sent (CT nacks / MR ⊥
    /// echoes, suspicion-triggered ones included) — a per-acceptor proxy
    /// for rounds burned on unflooded proposals: one burned round shows
    /// up as up to `n - 1` refusals across the system, so compare the
    /// counter between configurations, not against a round count.
    nacks_sent: u64,
    /// The decided log (`Some` iff `catch_up` is configured): every fully
    /// a-delivered instance is appended here, in instance order; its
    /// frontier is what the node piggybacks and serves to peers. Defaults
    /// to a [`MemDecidedLog`]; [`AbcastNode::set_decided_log`] swaps in a
    /// durable one before start.
    log: Option<Box<dyn DecidedLog<V>>>,
    /// Learner (read replica) mode — see [`PipelineConfig::learner`].
    learner: bool,
    /// Applied-but-not-fully-delivered instances, oldest first: each
    /// tracks how many of its (newly) ordered ids still await delivery
    /// and collects their payloads, so the log entry appended on
    /// completion is self-contained. Deliveries drain `ordered` strictly
    /// in instance order, so completion is always front-first.
    pending_log: VecDeque<PendingLogEntry<V>>,
    /// Highest decided frontier observed per peer (from the
    /// [`Envelope::WithFrontier`] piggyback).
    peer_frontiers: BTreeMap<ProcessId, u64>,
    /// Whether a catch-up request is outstanding (one at a time: batches
    /// apply in order, and a second overlapping range would be wasted).
    catch_up_inflight: bool,
    /// Monotonic request counter; the retry timer carries the epoch it
    /// was armed for, so only the timer of the *current* request may
    /// re-request.
    catch_up_epoch: u64,
    /// Catch-up requests sent (recovery metric).
    catch_up_requests: u64,
    /// Decided entries learned through catch-up replies, i.e. entries
    /// that were ahead of `next_apply` when they arrived (recovery
    /// metric).
    caught_up_entries: u64,
    /// Current catch-up retry delay: doubles per unanswered request up to
    /// [`CATCH_UP_RETRY_MAX`], resets to [`CATCH_UP_RETRY`] on a reply.
    catch_up_retry: Duration,
    /// Accepted-but-undecided broadcasts (`Some` iff `catch_up` is
    /// configured on a non-learner): recorded at `on_command`, cleared
    /// when the instance that orders them reaches the decided log,
    /// re-flooded on restart and after catch-up episodes. Defaults to a
    /// [`MemPendingStore`]; [`AbcastNode::set_pending_store`] swaps in a
    /// durable sidecar before start.
    pending: Option<Box<dyn PendingStore>>,
    /// Pending broadcasts re-flooded so far (repair metric).
    pending_refloods: u64,
}

/// Bookkeeping for one applied instance whose deliveries are still
/// draining (see [`AbcastNode::pending_log`]).
struct PendingLogEntry<V> {
    k: u64,
    value: V,
    /// Ids this instance newly ordered that have not been a-delivered yet.
    remaining: usize,
    /// Payloads of the delivered ids, in delivery order.
    payloads: Vec<AppMessage>,
}

impl<V: OrderingValue, A: SingleConsensus<V>> fmt::Debug for AbcastNode<V, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbcastNode")
            .field("me", &self.me)
            .field("proposed_hi", &self.proposed_hi)
            .field("next_apply", &self.next_apply)
            .field("window", &self.controller.current())
            .field("in_flight", &self.in_flight.len())
            .field("unordered", &self.unordered.len())
            .field("ordered_pending", &self.ordered.len())
            .field("delivered", &self.delivered_count)
            .finish()
    }
}

type Ctx<V> = Context<Envelope<V>, AbcastEvent>;

impl<V: OrderingValue, A: SingleConsensus<V>> AbcastNode<V, A> {
    /// Assembles a node from its modules. `algo_factory` builds the state
    /// machine of each consensus instance; `check_store` selects whether
    /// the `rcv` oracle really consults the received-message store;
    /// `pipeline` configures the window controller and the proposal cap.
    #[allow(clippy::too_many_arguments)] // module wiring; called via stacks::*
    pub fn new(
        me: ProcessId,
        n: usize,
        bcast: Box<dyn Broadcast + Send>,
        fd: Box<dyn FailureDetector + Send>,
        algo_factory: impl FnMut(u64) -> A + Send + 'static,
        check_store: bool,
        cost: CostModel,
        pipeline: PipelineConfig,
    ) -> Self {
        AbcastNode {
            me,
            n,
            bcast,
            fd,
            mgr: InstanceManager::new(algo_factory),
            store: ReceivedStore::new(),
            unordered: IdSet::new(),
            ordered: VecDeque::new(),
            ordered_ever: BTreeSet::new(),
            suspected: ProcessSet::new(),
            check_store,
            cost,
            controller: WindowController::new(pipeline),
            max_proposal_ids: pipeline.max_proposal_ids.max(1),
            cap_hits: 0,
            proposed_hi: 0,
            next_apply: 1,
            in_flight: BTreeMap::new(),
            decision_buffer: BTreeMap::new(),
            stale_decisions: 0,
            next_seq: 0,
            delivered_count: 0,
            decision_latency_total: Duration::ZERO,
            decision_latency_count: 0,
            proposal_freshness: pipeline.proposal_freshness,
            flood_delay: Ewma::new(FRESHNESS_ALPHA),
            newest_broadcast_at: Time::ZERO,
            freshness_held: 0,
            propose_timer_armed: false,
            nacks_sent: 0,
            log: (pipeline.catch_up || pipeline.learner)
                .then(|| Box::new(MemDecidedLog::new()) as Box<dyn DecidedLog<V>>),
            learner: pipeline.learner,
            pending_log: VecDeque::new(),
            peer_frontiers: BTreeMap::new(),
            catch_up_inflight: false,
            catch_up_epoch: 0,
            catch_up_requests: 0,
            caught_up_entries: 0,
            catch_up_retry: CATCH_UP_RETRY,
            pending: (pipeline.catch_up && !pipeline.learner)
                .then(|| Box::new(MemPendingStore::new()) as Box<dyn PendingStore>),
            pending_refloods: 0,
        }
    }

    /// Replaces the decided log — typically with a
    /// [`crate::decided::DurableDecidedLog`] so the node survives a
    /// restart. Call before the node starts: `on_start` reloads the log
    /// and resumes from its frontier (rebuilding `ordered_ever` and the
    /// apply cursor), and a log swapped in later would miss the entries
    /// already appended to the old one. No-op unless `catch_up` (or
    /// `learner`) was configured.
    pub fn set_decided_log(&mut self, log: Box<dyn DecidedLog<V>>) {
        if self.log.is_some() {
            self.log = Some(log);
        }
    }

    /// Replaces the pending-broadcast store — typically with a
    /// [`crate::pending::DurablePendingStore`] sidecar next to the durable
    /// decided log, so accepted-but-undecided broadcasts survive a
    /// restart and are re-flooded. Call before the node starts, like
    /// [`AbcastNode::set_decided_log`]. No-op unless `catch_up` was
    /// configured on a non-learner.
    pub fn set_pending_store(&mut self, store: Box<dyn PendingStore>) {
        if self.pending.is_some() {
            self.pending = Some(store);
        }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages a-delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Identifiers ordered but not yet deliverable (payload still missing).
    pub fn ordered_pending(&self) -> usize {
        self.ordered.len()
    }

    /// Identifiers received but not yet ordered.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Serial number of the latest consensus instance proposed locally.
    pub fn instance(&self) -> u64 {
        self.proposed_hi
    }

    /// Pipeline window `W` the node may currently fill (fixed for static
    /// configs; moves within `[w_min, w_max]` for adaptive ones).
    pub fn window(&self) -> usize {
        self.controller.current()
    }

    /// `(w_min, w_max)` of the window controller.
    pub fn window_bounds(&self) -> (usize, usize) {
        self.controller.bounds()
    }

    /// Whether this node runs the adaptive window controller.
    pub fn is_adaptive_window(&self) -> bool {
        self.controller.is_adaptive()
    }

    /// `(additive increases, multiplicative decreases)` performed by the
    /// window controller so far.
    pub fn window_adaptations(&self) -> (u64, u64) {
        self.controller.adaptations()
    }

    /// Proposals truncated by the `max_proposal_ids` cap so far.
    pub fn proposal_cap_hits(&self) -> u64 {
        self.cap_hits
    }

    /// Identifiers the freshness gate excluded from proposals so far.
    pub fn freshness_held(&self) -> u64 {
        self.freshness_held
    }

    /// Consensus refusal messages (CT nacks, MR ⊥ echoes) this node sent
    /// so far — see the field docs for how this relates to burned rounds.
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// The node's current flood delay estimate: the EWMA of its RB
    /// delivery latency over remote messages. `None` until
    /// [`FRESHNESS_WARMUP`] remote deliveries were observed (the gate is
    /// inert until then — and always when `proposal_freshness` is off).
    /// The gate's maturity threshold is [`FRESHNESS_FACTOR`] × this.
    pub fn flood_delay_estimate(&self) -> Option<Duration> {
        self.flood_delay
            .warmed(FRESHNESS_WARMUP)
            .then(|| Duration::from_secs_f64(self.flood_delay.value()))
    }

    /// Identifiers received but not yet a-delivered (unordered backlog
    /// plus ordered ids awaiting their payload) — the ingestion pressure
    /// signal adaptive batch coalescers key off.
    pub fn ingest_backlog(&self) -> usize {
        self.unordered.len() + self.ordered.len()
    }

    /// `(sum, count)` of observed decision latencies (locally proposed
    /// instances, propose → apply) — the harness's decision-latency metric.
    pub fn decision_latency_stats(&self) -> (Duration, u64) {
        (self.decision_latency_total, self.decision_latency_count)
    }

    /// Instances proposed locally whose decision has not been applied yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Decisions received ahead of order, waiting for a lower instance.
    pub fn buffered_decisions(&self) -> usize {
        self.decision_buffer.len()
    }

    /// Old or duplicate decisions dropped by the routing so far.
    pub fn stale_decisions(&self) -> u64 {
        self.stale_decisions
    }

    /// The received-message store (for tests and probes).
    pub fn store(&self) -> &ReceivedStore {
        &self.store
    }

    /// Consensus instance slots currently retained (live + GC cache).
    pub fn consensus_slots(&self) -> usize {
        self.mgr.slot_count()
    }

    /// The decided frontier: the highest instance fully a-delivered *and*
    /// logged (0 with catch-up off or before the first instance
    /// completes). This is what the node piggybacks and can serve.
    pub fn decided_frontier(&self) -> u64 {
        self.log.as_ref().map_or(0, |log| log.frontier())
    }

    /// Catch-up requests this node sent so far.
    pub fn catch_up_requests(&self) -> u64 {
        self.catch_up_requests
    }

    /// Decided entries this node learned through catch-up replies (only
    /// entries that were ahead of its apply cursor when they arrived).
    pub fn caught_up_entries(&self) -> u64 {
        self.caught_up_entries
    }

    /// Whether this node is a learner (read replica).
    pub fn is_learner(&self) -> bool {
        self.learner
    }

    /// Accepted broadcasts whose instance has not reached the decided log
    /// yet (0 when pending tracking is off).
    pub fn pending_broadcasts(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.entries().len())
    }

    /// Pending broadcasts re-flooded so far (restart and post-catch-up
    /// repair; see [`crate::pending`]).
    pub fn pending_refloods(&self) -> u64 {
        self.pending_refloods
    }

    /// Wraps an outgoing frame with the decided frontier when catch-up is
    /// on. Piggybacking on *every* frame (RB data, consensus, heartbeats,
    /// catch-up itself) means frontier propagation needs no schedule of
    /// its own and works even in stacks with the failure detector off.
    /// With catch-up off this is the identity — the wire format is then
    /// byte-for-byte the pre-catch-up one.
    fn wrap(&self, env: Envelope<V>) -> Envelope<V> {
        match self.log.as_ref() {
            Some(log) => Envelope::WithFrontier { frontier: log.frontier(), inner: Box::new(env) },
            None => env,
        }
    }

    fn send_bcast(&self, dest: BcastDest, msg: iabc_broadcast::BcastMsg, ctx: &mut Ctx<V>) {
        match dest {
            BcastDest::To(q) => ctx.send(q, self.wrap(Envelope::Bcast(msg))),
            BcastDest::Others => ctx.send_to_others(self.wrap(Envelope::Bcast(msg))),
        }
    }

    fn apply_bcast_out(&mut self, out: BcastOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            self.send_bcast(dest, msg, ctx);
        }
        for m in out.deliveries {
            self.rdeliver(m, ctx);
        }
    }

    fn apply_fd_out(&mut self, out: FdOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            match dest {
                FdDest::To(q) => ctx.send(q, self.wrap(Envelope::Fd(msg))),
                FdDest::Others => ctx.send_to_others(self.wrap(Envelope::Fd(msg))),
            }
        }
        for (delay, data) in out.timers {
            ctx.set_timer(delay, TimerId::new(TIMER_FD, data));
        }
        for change in out.changes {
            match change {
                FdEvent::Suspect(p) => {
                    self.suspected.insert(p);
                    // The broadcast layer may need to relay the suspect's
                    // messages (lazy reliable broadcast)...
                    let mut bout = BcastOut::new();
                    self.bcast.on_suspect(p, &mut bout);
                    self.apply_bcast_out(bout, ctx);
                    // ...and waiting consensus instances may need to nack.
                    let mut mout = MgrOut::new();
                    {
                        let oracle = NodeOracle {
                            store: &self.store,
                            check_store: self.check_store,
                            cost_per_id: self.cost.rcv_check_per_id,
                        };
                        self.mgr.on_suspect(p, &oracle, self.suspected, &mut mout);
                    }
                    self.apply_mgr_out(mout, ctx);
                }
                FdEvent::Trust(p) => {
                    self.suspected.remove(p);
                }
            }
        }
    }

    fn apply_mgr_out(&mut self, out: MgrOut<V>, ctx: &mut Ctx<V>) {
        ctx.work(out.work);
        for (k, dest, msg) in out.sends {
            if msg.is_refusal() {
                self.nacks_sent += 1;
            }
            let env = self.wrap(Envelope::Cons { k, msg });
            match dest {
                ConsDest::To(q) => ctx.send(q, env),
                ConsDest::All => ctx.send_to_all(env),
                ConsDest::Others => ctx.send_to_others(env),
            }
        }
        for (k, v) in out.decisions {
            self.handle_decision(k, v, ctx);
        }
    }

    /// The window controller's backlog signal: unordered ids *minus* ids
    /// already sitting in buffered (decided, not yet applied) decisions —
    /// those are ordered work awaiting the in-order apply, not demand for
    /// window slots, and counting them would inflate spill pressure
    /// exactly during the out-of-order decision bursts the controller is
    /// meant to ride out. Ids double-decided by an applied instance make
    /// the subtraction conservative (never an overestimate).
    fn backlog_signal(&self) -> usize {
        let buffered: usize = self.decision_buffer.values().map(V::id_count).sum();
        self.unordered.len().saturating_sub(buffered)
    }

    /// Algorithm 1 lines 11–14: R-deliver.
    fn rdeliver(&mut self, m: AppMessage, ctx: &mut Ctx<V>) {
        let id = m.id();
        let broadcast_at = m.broadcast_at();
        if !self.store.insert(m) {
            return; // duplicate copies are possible across layers
        }
        if id.sender() != self.me {
            // First copy of a remote message: its broadcast → R-deliver
            // time is one observation of the flood delay (queueing
            // included — under load that is the dominant term, and exactly
            // what the freshness gate must wait out).
            self.flood_delay.observe(ctx.now().elapsed_since(broadcast_at).as_secs_f64());
        }
        self.newest_broadcast_at = self.newest_broadcast_at.max(broadcast_at);
        if !self.ordered_ever.contains(&id) {
            self.unordered.insert(id);
        }
        self.maybe_propose(ctx);
        // The payload for the head of `ordered_p` may just have arrived.
        self.try_deliver(ctx);
    }

    /// Algorithm 1 lines 15–18, generalized to a pipeline: keep proposing
    /// consecutive instances while the window has room and there are
    /// unordered identifiers not already claimed by an in-flight proposal.
    ///
    /// Proposals are capped at `max_proposal_ids` identifiers; the
    /// remainder stays in `unordered` and *spills* into the next instance
    /// (this loop, or a later window slot). The cap bounds the per-message
    /// `rcv()` cost at saturation — uncapped, a wedged CPU grows proposals
    /// without limit and every consensus message gets costlier to check,
    /// the death spiral the static sweep shows at `W=1, B=1`.
    fn maybe_propose(&mut self, ctx: &mut Ctx<V>) {
        if self.learner {
            return; // learners never propose; they only consume decisions
        }
        loop {
            if self.in_flight.len() >= self.controller.current() {
                // A full window with a spilling backlog is the signal to
                // widen it (see [`WindowController::on_spill`]); if the
                // controller grows, keep proposing into the new slots.
                self.controller.on_spill(self.backlog_signal());
                if self.in_flight.len() >= self.controller.current() {
                    return;
                }
            }
            // Ids already riding an in-flight instance are spoken for, and
            // ids in a buffered (decided, not yet applied) decision are
            // already ordered; proposing either again would spend a whole
            // consensus round on ids the apply-time dedupe will skip.
            let mut candidate = self.unordered.clone();
            for claimed in self.in_flight.values() {
                candidate.subtract(claimed);
            }
            for decided in self.decision_buffer.values() {
                candidate.subtract(&decided.ids());
            }
            if candidate.is_empty() {
                return;
            }
            // Freshness gate: an id younger than ~one flood delay is still
            // mid-flood — a proposal naming it overtakes its own Data
            // frames and the round burns on nacks from acceptors missing
            // the payload. Keep such ids in `unordered` until they mature.
            // Skip the per-id scan when even the newest message ever
            // R-delivered is already mature — under a deep backlog the
            // candidates are old, and this makes the gate O(1) in steady
            // state.
            if let Some(threshold) = self
                .freshness_threshold()
                .filter(|&t| self.newest_broadcast_at + t > ctx.now())
            {
                let now = ctx.now();
                let mut earliest_fresh: Option<Time> = None;
                let mut mature: Vec<MsgId> = Vec::with_capacity(candidate.len());
                for id in candidate.iter() {
                    // Ids in `unordered` always have their message in the
                    // store (rdeliver inserts there first); treat a missing
                    // entry as mature rather than stranding the id.
                    let Some(m) = self.store.get(id) else {
                        mature.push(id);
                        continue;
                    };
                    let ready_at = m.broadcast_at() + threshold;
                    if ready_at <= now {
                        mature.push(id);
                    } else {
                        earliest_fresh =
                            Some(earliest_fresh.map_or(ready_at, |t| t.min(ready_at)));
                    }
                }
                if mature.is_empty() {
                    // Every candidate is mid-flood: do not burn a round —
                    // wake up when the earliest one matures (nothing else
                    // is guaranteed to re-trigger proposing).
                    //
                    // Liveness audit of the one-shot wake-up: `on_timer`
                    // clears `propose_timer_armed` *before* re-running this
                    // function, so when the flood-delay estimate grew since
                    // arming and the candidates are *still* all-fresh at
                    // fire time, this branch re-arms for the new, later
                    // maturity instant — the gate never strands an
                    // ungated-but-unproposed backlog waiting for unrelated
                    // traffic. (The only no-re-arm exit above is a full
                    // window, and a full window guarantees a future
                    // `apply_decision` → `maybe_propose` re-evaluation.)
                    // Covered by `freshness_gate_rearms_when_estimate_grew`.
                    if let Some(at) = earliest_fresh {
                        self.arm_propose_timer(at, ctx);
                    }
                    return;
                }
                let held = candidate.len() - mature.len();
                if held > 0 {
                    self.freshness_held += held as u64;
                    candidate = IdSet::from_ids(mature);
                }
            }
            if candidate.len() > self.max_proposal_ids {
                // Take the *oldest* ids first, round-robin across senders
                // (order by (seq, sender), not the set's (sender, seq)
                // order): old ids have had time to flood, so acceptors
                // hold them and `rcv` passes in one round, and no sender
                // is starved by the cap. Deterministic, so every process
                // slices a shared backlog the same way. Partition-select
                // rather than sort: the backlog can be enormous exactly
                // when the cap matters.
                let mut oldest: Vec<MsgId> = candidate.iter().collect();
                let cap = self.max_proposal_ids;
                oldest.select_nth_unstable_by_key(cap - 1, |id| (id.seq(), id.sender()));
                oldest.truncate(cap);
                candidate = IdSet::from_ids(oldest);
                self.cap_hits += 1;
            }
            self.proposed_hi += 1;
            let k = self.proposed_hi;
            let proposal = V::from_unordered(&candidate, &self.store);
            ctx.work(self.cost.propose_per_id * proposal.id_count() as u64);
            self.in_flight.insert(k, proposal.ids());
            let mut mout = MgrOut::new();
            {
                let oracle = NodeOracle {
                    store: &self.store,
                    check_store: self.check_store,
                    cost_per_id: self.cost.rcv_check_per_id,
                };
                self.mgr.propose(k, proposal, &oracle, self.suspected, &mut mout);
            }
            self.mgr.note_proposed(k, ctx.now());
            // May recurse into handle_decision (an instance can decide
            // immediately); the loop re-reads window occupancy afterwards.
            self.apply_mgr_out(mout, ctx);
        }
    }

    /// The age below which a candidate id counts as still mid-flood:
    /// [`FRESHNESS_FACTOR`] × the node's measured flood delay. `None`
    /// while the gate is disabled or the estimate has not warmed up — no
    /// exclusions then.
    fn freshness_threshold(&self) -> Option<Duration> {
        if !self.proposal_freshness {
            return None;
        }
        (self.flood_delay.warmed(FRESHNESS_WARMUP))
            .then(|| Duration::from_secs_f64(FRESHNESS_FACTOR * self.flood_delay.value()))
    }

    /// Arms the freshness gate's re-propose wake-up for time `at`. At most
    /// one is in flight — a pending wake-up re-evaluates every candidate,
    /// so a second timer would be redundant, and letting the earlier one
    /// fire first only delays a gated id by less than one flood delay.
    fn arm_propose_timer(&mut self, at: Time, ctx: &mut Ctx<V>) {
        if self.propose_timer_armed {
            return;
        }
        self.propose_timer_armed = true;
        let delay = at.elapsed_since(ctx.now()).max(Duration::from_micros(1));
        ctx.set_timer(delay, TimerId::new(TIMER_PROPOSE, 0));
    }

    /// Routes a decision for instance `k`: stale or duplicate decisions are
    /// dropped, future ones buffered, and the buffer is drained strictly in
    /// instance order.
    ///
    /// This replaces the seed's `debug_assert_eq!(k, self.k)` — which
    /// compiled away in release builds and let a mismatched instance number
    /// silently corrupt the ordering state — with real routing.
    fn handle_decision(&mut self, k: u64, v: V, ctx: &mut Ctx<V>) {
        if k < self.next_apply || self.decision_buffer.contains_key(&k) {
            self.stale_decisions += 1;
            return;
        }
        self.decision_buffer.insert(k, v);
        loop {
            let next = self.next_apply;
            let Some(v) = self.decision_buffer.remove(&next) else { break };
            self.next_apply += 1;
            self.apply_decision(next, v, ctx);
        }
    }

    /// Algorithm 1 lines 18–21: applies the decision of instance `k`
    /// (callers guarantee `k` is exactly the next instance in order).
    fn apply_decision(&mut self, k: u64, v: V, ctx: &mut Ctx<V>) {
        let window_was_full = self.in_flight.len() >= self.controller.current();
        self.in_flight.remove(&k);
        // Full-message values teach us payloads we may not have R-delivered
        // yet (and in the classic reduction, this is the only way a slow
        // process learns them in time).
        v.store_payloads(&mut self.store);
        let ids = v.ids();
        ctx.work(self.cost.order_per_id * ids.len() as u64);
        self.unordered.subtract(&ids);
        let mut newly_ordered = 0usize;
        for id in ids.iter() {
            if self.ordered_ever.insert(id) {
                self.ordered.push_back(id);
                newly_ordered += 1;
            }
            // else: with W > 1, an id decided by instance k may also sit in
            // a concurrent proposal that a later instance decides — every
            // process applies decisions in the same order and skips the
            // duplicate here, so the total order stays identical.
        }
        if self.log.is_some() {
            // A decision may reach us through catch-up for an instance we
            // never proposed (laggard or restarted node): proposing below
            // an applied instance would permanently leak that in-flight
            // slot, so keep the propose cursor at or above the apply
            // cursor. Catch-up-off nodes never apply unproposed-by-anyone
            // instances out from under their own cursor, so gating this on
            // the log keeps their event sequences bit-identical.
            self.proposed_hi = self.proposed_hi.max(k);
            // Log the instance once its deliveries finish (remaining = 0
            // completes immediately for an all-duplicates decision).
            self.pending_log.push_back(PendingLogEntry {
                k,
                value: v,
                remaining: newly_ordered,
                payloads: Vec::with_capacity(newly_ordered),
            });
        }
        self.try_deliver(ctx);
        // Feed the window controller before proposing again, so the next
        // round of proposals sees the adapted window.
        let latency = self.mgr.decision_latency(k, ctx.now());
        if let Some(l) = latency {
            self.decision_latency_total += l;
            self.decision_latency_count += 1;
        }
        let backlog = self.backlog_signal();
        self.controller.on_decision(k, self.proposed_hi, latency, backlog, window_was_full);
        // Bound the manager's footprint: old decided instances only serve
        // stragglers, and the decide relay already covers those in practice.
        self.mgr.gc_decided_below(self.next_apply, KEEP_DECIDED_INSTANCES);
        self.maybe_propose(ctx);
    }

    /// Algorithm 1 lines 22–25: deliver ordered messages whose payload is
    /// present, in order.
    fn try_deliver(&mut self, ctx: &mut Ctx<V>) {
        while let Some(&head) = self.ordered.front() {
            let Some(m) = self.store.get(head) else { break };
            let msg = m.clone();
            self.ordered.pop_front();
            self.delivered_count += 1;
            if self.log.is_some() {
                // Deliveries drain in instance order, so this delivery
                // belongs to the oldest applied instance that still has
                // ids outstanding (entries at zero are merely waiting for
                // their turn to be appended contiguously).
                if let Some(p) = self.pending_log.iter_mut().find(|p| p.remaining > 0) {
                    p.remaining -= 1;
                    p.payloads.push(msg.clone());
                }
            }
            ctx.output(AbcastEvent::Delivered { msg });
        }
        self.drain_completed_log();
    }

    /// Appends every fully delivered instance at the front of
    /// `pending_log` to the decided log, preserving contiguity.
    fn drain_completed_log(&mut self) {
        let Some(log) = self.log.as_mut() else { return };
        while self.pending_log.front().is_some_and(|p| p.remaining == 0) {
            let Some(p) = self.pending_log.pop_front() else { break };
            // Own broadcasts ordered by this instance are now self-contained
            // in the log entry: drop them from the pending set. Clearing
            // only here (not at decision time) keeps the window closed — a
            // crash between decision and append still re-floods.
            if let Some(pending) = self.pending.as_mut() {
                for id in p.value.ids().iter() {
                    if id.sender() == self.me {
                        pending.settle(id);
                    }
                }
            }
            log.append(DecidedEntry { k: p.k, value: p.value, payloads: p.payloads });
        }
    }

    /// Restart path: rebuilds ordering state from a reloaded decided log.
    ///
    /// The logged prefix was a-delivered before the crash (entries are only
    /// appended once every id in the instance has been delivered), so it is
    /// **not** re-delivered: the apply cursor jumps past the frontier and
    /// the logged ids enter `ordered_ever` so later decisions and RB
    /// arrivals treat them as already ordered. `next_seq` resumes past the
    /// highest own-sender sequence in the log so reused ids are impossible.
    fn recover_from_log(&mut self) {
        let Some(log) = self.log.as_mut() else { return };
        log.reload();
        let frontier = log.frontier();
        if frontier == 0 {
            return;
        }
        for e in log.range(1, frontier) {
            for id in e.value.ids().iter() {
                self.ordered_ever.insert(id);
                if id.sender() == self.me {
                    self.next_seq = self.next_seq.max(id.seq().saturating_add(1));
                }
            }
        }
        self.next_apply = frontier.saturating_add(1);
        self.proposed_hi = self.proposed_hi.max(frontier);
    }

    /// Restart path, part two (after [`AbcastNode::recover_from_log`]):
    /// reloads the pending set, resumes `next_seq` past every pending id
    /// (the pending journal can be ahead of the decided log), clears
    /// entries whose instance already made it into the reloaded log, and
    /// re-floods the rest. The old incarnation's RB state died with it, so
    /// `broadcast` floods afresh; receivers dedupe by id, making the
    /// re-flood idempotent.
    fn recover_pending(&mut self, ctx: &mut Ctx<V>) {
        let entries = {
            let Some(pending) = self.pending.as_mut() else { return };
            pending.reload();
            pending.entries().to_vec()
        };
        if entries.is_empty() {
            return;
        }
        for m in &entries {
            let id = m.id();
            if id.sender() == self.me {
                self.next_seq = self.next_seq.max(id.seq().saturating_add(1));
            }
        }
        let (logged, live): (Vec<AppMessage>, Vec<AppMessage>) = entries
            .into_iter()
            .partition(|m| self.ordered_ever.contains(&m.id()));
        if let Some(pending) = self.pending.as_mut() {
            // The previous incarnation crashed between appending the
            // instance and clearing its pending entries: finish the job.
            for m in logged {
                pending.settle(m.id());
            }
        }
        for m in live {
            self.pending_refloods += 1;
            let mut bout = BcastOut::new();
            self.bcast.broadcast(m, &mut bout);
            self.apply_bcast_out(bout, ctx);
        }
    }

    /// Re-floods every pending broadcast not yet ordered, as direct RB
    /// relay frames (the live RB layer has already seen these ids, so
    /// `broadcast` would no-op). Called when a catch-up episode settles:
    /// a node that just healed from a partition repairs any payload its
    /// peers shed while it was unreachable. Receivers dedupe by id.
    fn reflood_pending(&mut self, ctx: &mut Ctx<V>) {
        let msgs: Vec<AppMessage> = match self.pending.as_ref() {
            Some(p) => p
                .entries()
                .iter()
                .filter(|m| !self.ordered_ever.contains(&m.id()))
                .cloned()
                .collect(),
            None => return,
        };
        for m in msgs {
            self.pending_refloods += 1;
            let relay = self.wrap(Envelope::Bcast(iabc_broadcast::BcastMsg::Relay(m)));
            ctx.send_to_others(relay);
        }
    }

    /// Records a peer's piggybacked frontier and starts catching up if it
    /// proves the peer holds instances we have not applied.
    fn note_peer_frontier(&mut self, from: ProcessId, frontier: u64, ctx: &mut Ctx<V>) {
        if self.log.is_none() {
            return; // catch-up off: tolerate the wrapper, ignore the hint
        }
        let known = self.peer_frontiers.entry(from).or_insert(0);
        *known = (*known).max(frontier);
        self.maybe_catch_up(ctx);
    }

    /// Issues a catch-up request when some peer's frontier is at or past
    /// our apply cursor and no request is outstanding. Deterministic peer
    /// choice: the highest advertised frontier, ties to the smallest
    /// process id.
    fn maybe_catch_up(&mut self, ctx: &mut Ctx<V>) {
        if self.log.is_none() || self.catch_up_inflight {
            return;
        }
        let from_k = self.next_apply;
        let best = self
            .peer_frontiers
            .iter()
            .filter(|&(_, &f)| f >= from_k)
            .max_by_key(|&(&p, &f)| (f, std::cmp::Reverse(p)));
        let Some((&peer, &frontier)) = best else { return };
        // Checked instance math throughout the catch-up range plumbing: a
        // wrapped bound would re-request the wrong range forever.
        let to_k = frontier.min(from_k.saturating_add(CATCH_UP_BATCH - 1));
        self.catch_up_requests += 1;
        let req = self.wrap(Envelope::CatchUpRequest { from_k, to_k });
        ctx.send(peer, req);
        self.arm_catch_up_retry(ctx);
    }

    /// Marks a request outstanding and arms its retry timer (tagged with
    /// a fresh epoch so stale timers are inert). Each arming doubles the
    /// next retry delay up to [`CATCH_UP_RETRY_MAX`] — consecutive
    /// unanswered requests back off exponentially instead of hammering an
    /// unreachable peer; [`AbcastNode::absorb_catch_up`] resets the delay.
    fn arm_catch_up_retry(&mut self, ctx: &mut Ctx<V>) {
        self.catch_up_inflight = true;
        self.catch_up_epoch = self.catch_up_epoch.wrapping_add(1);
        ctx.set_timer(self.catch_up_retry, TimerId::new(TIMER_CATCHUP, self.catch_up_epoch));
        self.catch_up_retry = (self.catch_up_retry * 2).min(CATCH_UP_RETRY_MAX);
    }

    /// Serves a peer's catch-up request from the decided log, clamped to
    /// what we hold and to [`CATCH_UP_BATCH`]. Always answers (possibly
    /// with an empty batch): the reply clears the requester's outstanding
    /// flag promptly and its wrapper carries our frontier.
    fn serve_catch_up(&mut self, from: ProcessId, from_k: u64, to_k: u64, ctx: &mut Ctx<V>) {
        let entries: Vec<DecidedEntry<V>> = match self.log.as_ref() {
            Some(log) => {
                let hi = to_k.min(from_k.saturating_add(CATCH_UP_BATCH - 1));
                log.range(from_k, hi).to_vec()
            }
            None => Vec::new(), // catch-up off here; answer empty, not silence
        };
        let reply = self.wrap(Envelope::CatchUpReply { entries });
        ctx.send(from, reply);
    }

    /// Applies a batch of caught-up entries through the normal decision
    /// path (`handle_decision` buffers, dedupes, and applies strictly in
    /// instance order — there is no second apply path), then keeps
    /// fetching if still behind the best-known frontier.
    fn absorb_catch_up(&mut self, entries: Vec<DecidedEntry<V>>, ctx: &mut Ctx<V>) {
        if self.log.is_none() {
            return;
        }
        // This reply settles the outstanding request; bump the epoch so
        // its retry timer (still scheduled) cannot re-request. The peer is
        // answering again: restart the retry backoff from its base.
        self.catch_up_inflight = false;
        self.catch_up_epoch = self.catch_up_epoch.wrapping_add(1);
        self.catch_up_retry = CATCH_UP_RETRY;
        for e in entries {
            if e.k >= self.next_apply {
                self.caught_up_entries += 1;
            }
            // Store the payloads directly: `rdeliver` would feed the
            // flood-delay EWMA and the `unordered` candidate set, but
            // these messages are already ordered — they must influence
            // neither proposals nor the freshness estimate.
            for m in e.payloads {
                self.store.insert(m);
            }
            self.handle_decision(e.k, e.value, ctx);
        }
        // A settling catch-up episode is the "I was behind and healed"
        // signal: repair any accepted broadcast whose payload flood may
        // have been shed while this node was unreachable. Pending sets are
        // empty in healthy runs, so this is free there.
        self.reflood_pending(ctx);
        self.maybe_catch_up(ctx);
    }
}

/// Read-only probe of a node's pipeline controller, for experiment
/// runners that are generic over the stack (see
/// `iabc_workload::run_abcast_experiment`).
pub trait PipelineProbe {
    /// The pipeline window the node may currently fill.
    fn current_window(&self) -> usize;
    /// Proposals truncated by the proposal cap so far.
    fn capped_proposals(&self) -> u64;
    /// `(sum, count)` of decision latencies observed so far (propose →
    /// apply of locally proposed instances).
    fn decision_latencies(&self) -> (Duration, u64);
    /// Consensus refusal messages (CT nacks, MR ⊥ echoes) this node sent
    /// so far — a per-acceptor *proxy* for rounds burned on unflooded
    /// proposals (one burned round ≈ up to `n - 1` refusals system-wide);
    /// meaningful as a comparison between configurations at the same `n`.
    fn nacked_rounds(&self) -> u64;
    /// Identifiers the freshness gate excluded from proposals so far.
    fn freshness_held(&self) -> u64;
    /// Identifiers received but not yet a-delivered — the ingestion
    /// pressure adaptive batch coalescers key off.
    fn ingest_backlog(&self) -> usize;
    /// Catch-up requests issued so far (0 when catch-up is off).
    fn catch_up_requests(&self) -> u64;
    /// Catch-up entries received for instances not yet applied locally.
    fn caught_up_entries(&self) -> u64;
    /// Highest contiguous instance in the decided log (0 without a log).
    fn decided_frontier(&self) -> u64;
}

impl<V: OrderingValue, A: SingleConsensus<V>> PipelineProbe for AbcastNode<V, A> {
    fn current_window(&self) -> usize {
        self.window()
    }

    fn capped_proposals(&self) -> u64 {
        self.proposal_cap_hits()
    }

    fn decision_latencies(&self) -> (Duration, u64) {
        self.decision_latency_stats()
    }

    fn nacked_rounds(&self) -> u64 {
        self.nacks_sent()
    }

    fn freshness_held(&self) -> u64 {
        AbcastNode::freshness_held(self)
    }

    fn ingest_backlog(&self) -> usize {
        AbcastNode::ingest_backlog(self)
    }

    fn catch_up_requests(&self) -> u64 {
        AbcastNode::catch_up_requests(self)
    }

    fn caught_up_entries(&self) -> u64 {
        AbcastNode::caught_up_entries(self)
    }

    fn decided_frontier(&self) -> u64 {
        AbcastNode::decided_frontier(self)
    }
}

impl<V: OrderingValue, A: SingleConsensus<V>> Node for AbcastNode<V, A> {
    type Msg = Envelope<V>;
    type Command = AbcastCommand;
    type Output = AbcastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<V>) {
        self.recover_from_log();
        self.recover_pending(ctx);
        // Learners send no heartbeats. Peers that know the learner set
        // (StackParams::with_learner_set) exclude them from suspicion,
        // rotation and quorums natively; peers that don't will suspect
        // the silent replica, which still rotates coordination past it —
        // just after a wasted suspicion timeout.
        if !self.learner {
            let mut fout = FdOut::new();
            self.fd.on_start(ctx.now(), &mut fout);
            self.apply_fd_out(fout, ctx);
        }
        // Bootstrap probe: on a quiet cluster no frames flow, so a
        // restarted (or freshly started) catch-up node would never see a
        // peer frontier. One broadcast request primes `peer_frontiers`
        // from the wrapped replies and fetches any backlog immediately.
        if self.log.is_some() && ctx.n() > 1 {
            let from_k = self.next_apply;
            let to_k = from_k.saturating_add(CATCH_UP_BATCH - 1);
            self.catch_up_requests += 1;
            let req = self.wrap(Envelope::CatchUpRequest { from_k, to_k });
            ctx.send_to_others(req);
            self.arm_catch_up_retry(ctx);
        }
    }

    fn on_command(&mut self, cmd: AbcastCommand, ctx: &mut Ctx<V>) {
        if self.learner {
            return; // read replicas consume the stream, they never feed it
        }
        let AbcastCommand::Broadcast(payload) = cmd;
        let id = MsgId::new(self.me, self.next_seq);
        self.next_seq += 1;
        let m = AppMessage::new(id, payload, ctx.now());
        // Record *before* flooding: once the application sees `Broadcast`,
        // the payload must survive a crash until its instance is logged.
        if let Some(pending) = self.pending.as_mut() {
            pending.record(m.clone());
        }
        ctx.output(AbcastEvent::Broadcast { id });
        // Algorithm 1 line 8: R-broadcast(m).
        let mut bout = BcastOut::new();
        self.bcast.broadcast(m, &mut bout);
        self.apply_bcast_out(bout, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Envelope<V>, ctx: &mut Ctx<V>) {
        match msg {
            Envelope::Bcast(b) => {
                let mut bout = BcastOut::new();
                self.bcast.on_message(from, b, &mut bout);
                self.apply_bcast_out(bout, ctx);
            }
            Envelope::Cons { k, msg } => {
                if self.learner {
                    return; // learners take no part in consensus, not even relays
                }
                let mut mout = MgrOut::new();
                {
                    let oracle = NodeOracle {
                        store: &self.store,
                        check_store: self.check_store,
                        cost_per_id: self.cost.rcv_check_per_id,
                    };
                    self.mgr.on_message(k, from, msg, &oracle, self.suspected, &mut mout);
                }
                self.apply_mgr_out(mout, ctx);
            }
            Envelope::Fd(f) => {
                let mut fout = FdOut::new();
                self.fd.on_message(ctx.now(), from, f, &mut fout);
                self.apply_fd_out(fout, ctx);
            }
            Envelope::CatchUpRequest { from_k, to_k } => {
                self.serve_catch_up(from, from_k, to_k, ctx);
            }
            Envelope::CatchUpReply { entries } => {
                self.absorb_catch_up(entries, ctx);
            }
            Envelope::WithFrontier { frontier, inner } => {
                self.note_peer_frontier(from, frontier, ctx);
                // Decode bounds nesting to one level, so this recursion
                // cannot be driven deeper by remote input.
                self.on_message(from, *inner, ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Ctx<V>) {
        if timer.kind() == TIMER_FD {
            let mut fout = FdOut::new();
            self.fd.on_timer(ctx.now(), timer.data(), &mut fout);
            self.apply_fd_out(fout, ctx);
        } else if timer.kind() == TIMER_PROPOSE {
            self.propose_timer_armed = false;
            self.maybe_propose(ctx);
        } else if timer.kind() == TIMER_CATCHUP {
            // Epoch guard: only the retry timer of the *current*
            // outstanding request may fire a re-request; replies bump the
            // epoch, so timers from settled requests are inert.
            if self.catch_up_inflight && timer.data() == self.catch_up_epoch {
                self.catch_up_inflight = false;
                self.maybe_catch_up(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_broadcast::{BcastMsg, EagerRb};
    use iabc_consensus::{ConsMsg, CtConsensus};
    use iabc_fd::{FdMsg, NeverSuspect};
    use iabc_runtime::Action;
    use iabc_types::{Payload, Time};

    fn msg(p: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(p), seq), Payload::zeroed(8), Time::ZERO)
    }

    /// A three-process indirect-CT node under direct test control.
    fn test_node(window: usize) -> AbcastNode<IdSet, CtConsensus<IdSet>> {
        test_node_with(PipelineConfig::fixed(window))
    }

    fn test_node_with(pipeline: PipelineConfig) -> AbcastNode<IdSet, CtConsensus<IdSet>> {
        AbcastNode::new(
            ProcessId::new(0),
            3,
            Box::new(EagerRb::new()),
            Box::new(NeverSuspect::new()),
            |k| CtConsensus::with_coord_offset(ProcessId::new(0), 3, k),
            true,
            CostModel::zero(),
            pipeline,
        )
    }

    fn ctx() -> Ctx<IdSet> {
        Context::new(ProcessId::new(0), 3, Time::ZERO)
    }

    /// Feeds an R-broadcast data frame from `from` into the node.
    fn deliver_data(
        node: &mut AbcastNode<IdSet, CtConsensus<IdSet>>,
        from: u16,
        m: AppMessage,
        c: &mut Ctx<IdSet>,
    ) {
        node.on_message(ProcessId::new(from), Envelope::Bcast(BcastMsg::Data(m)), c);
    }

    /// Feeds a consensus Decide frame for instance `k` into the node.
    fn deliver_decide(
        node: &mut AbcastNode<IdSet, CtConsensus<IdSet>>,
        k: u64,
        value: IdSet,
        c: &mut Ctx<IdSet>,
    ) {
        node.on_message(
            ProcessId::new(1),
            Envelope::Cons { k, msg: ConsMsg::Decide { value } },
            c,
        );
    }

    fn delivered_ids(c: &mut Ctx<IdSet>) -> Vec<MsgId> {
        c.take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Output(AbcastEvent::Delivered { msg }) => Some(msg.id()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn window_one_runs_a_single_instance_at_a_time() {
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        // Algorithm 1 verbatim: the second id waits for instance 1.
        assert_eq!(node.instance(), 1);
        assert_eq!(node.in_flight(), 1);
        assert_eq!(node.unordered_len(), 2);
    }

    #[test]
    fn window_limits_and_excludes_in_flight_ids() {
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        deliver_data(&mut node, 1, msg(1, 2), &mut c);
        // Two instances in flight (window), carrying disjoint proposals;
        // the third id must wait for a slot.
        assert_eq!(node.instance(), 2);
        assert_eq!(node.in_flight(), 2);
        assert_eq!(node.unordered_len(), 3);
    }

    #[test]
    fn out_of_order_decision_is_buffered_until_its_turn() {
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c); // instance 1 = {m0}
        deliver_data(&mut node, 1, msg(1, 1), &mut c); // instance 2 = {m1}
        assert_eq!(node.in_flight(), 2);

        // Instance 2 decides first: nothing may be delivered yet.
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        assert_eq!(node.delivered_count(), 0, "future decision must be buffered");
        assert_eq!(node.buffered_decisions(), 1);

        // Instance 1 decides: both apply, strictly in instance order.
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 2);
        assert_eq!(node.buffered_decisions(), 0);
        assert_eq!(node.in_flight(), 0);
        assert_eq!(delivered_ids(&mut c), vec![msg(1, 0).id(), msg(1, 1).id()]);
    }

    /// Regression for the seed's `debug_assert_eq!(k, self.k)`: in release
    /// builds a decision for a non-current instance silently cleared
    /// `running` and corrupted the ordering state. The routing must drop
    /// stale/duplicate decisions — in every build profile.
    #[test]
    fn stale_decision_is_dropped_never_misapplied() {
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 1);

        // A duplicate/old decision for instance 1 arrives (e.g. a straggler
        // relay): it must be dropped wholesale, not applied to the current
        // instance's state.
        let ghost = IdSet::from_ids([msg(2, 9).id()]);
        node.handle_decision(1, ghost, &mut c);
        assert_eq!(node.stale_decisions(), 1);
        assert_eq!(node.delivered_count(), 1, "stale decision must not deliver");
        assert_eq!(node.instance(), 1, "stale decision must not trigger proposals");
        assert_eq!(node.ordered_pending(), 0);

        // Same for a decision duplicating an already-buffered instance.
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        node.handle_decision(2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        node.handle_decision(2, IdSet::from_ids([msg(2, 7).id()]), &mut c);
        assert_eq!(node.stale_decisions(), 1, "duplicate buffered decision dropped");
        assert_eq!(node.buffered_decisions(), 1);
    }

    #[test]
    fn overlapping_decisions_dedupe_deterministically() {
        // With W > 1 an id can be decided by instance k and also ride a
        // concurrent proposal decided in k+1 (another process proposed it
        // first). The duplicate must be skipped, once, at apply time.
        let mut node = test_node(2);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c); // instance 1 = {m0}
        deliver_data(&mut node, 1, msg(1, 1), &mut c); // instance 2 = {m1}
        // Instance 1 decides a peer's proposal that already contains m1.
        deliver_decide(
            &mut node,
            1,
            IdSet::from_ids([msg(1, 0).id(), msg(1, 1).id()]),
            &mut c,
        );
        assert_eq!(node.delivered_count(), 2);
        // Instance 2 then decides our own {m1}: already ordered, skipped.
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        assert_eq!(node.delivered_count(), 2, "duplicate id must not re-deliver");
        assert_eq!(
            delivered_ids(&mut c),
            vec![msg(1, 0).id(), msg(1, 1).id()],
            "order fixed by instance order, duplicates dropped"
        );
    }

    #[test]
    fn capped_proposal_spills_remainder_to_next_instance() {
        let mut cfg = PipelineConfig::fixed(1);
        cfg.max_proposal_ids = 2;
        let mut node = test_node_with(cfg);
        let mut c = ctx();
        for seq in 0..5 {
            deliver_data(&mut node, 1, msg(1, seq), &mut c);
        }
        // Instance 1 was proposed eagerly with just {m0}; the other four
        // ids queued behind the W=1 window.
        assert_eq!(node.instance(), 1);
        assert_eq!(node.proposal_cap_hits(), 0);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        // The freed slot proposes the backlog, truncated to the cap: the
        // first two ids ride instance 2, the rest spill.
        assert_eq!(node.instance(), 2);
        assert_eq!(node.proposal_cap_hits(), 1, "four candidates over a cap of two");
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id(), msg(1, 2).id()]), &mut c);
        // The spilled remainder fits the cap exactly: no further hit.
        assert_eq!(node.instance(), 3);
        assert_eq!(node.proposal_cap_hits(), 1);
        deliver_decide(&mut node, 3, IdSet::from_ids([msg(1, 3).id(), msg(1, 4).id()]), &mut c);
        assert_eq!(node.delivered_count(), 5, "no id may be lost to the cap");
        assert_eq!(
            delivered_ids(&mut c),
            (0..5).map(|s| msg(1, s).id()).collect::<Vec<_>>(),
            "spill preserves the deterministic order"
        );
    }

    #[test]
    fn static_window_controller_is_inert() {
        let mut ctrl = WindowController::new(PipelineConfig::fixed(4));
        assert!(!ctrl.is_adaptive());
        for k in 1..100u64 {
            ctrl.on_decision(k, k, Some(Duration::from_secs(10)), 10_000, true);
        }
        assert_eq!(ctrl.current(), 4);
        assert_eq!(ctrl.adaptations(), (0, 0));
    }

    #[test]
    fn controller_grows_additively_under_healthy_full_load() {
        let mut ctrl = WindowController::new(PipelineConfig::adaptive(1, 8));
        assert_eq!(ctrl.current(), 1, "adaptive windows start at w_min");
        let fast = Some(Duration::from_millis(1));
        // Healthy decisions with a full window and waiting work: +1 per
        // `cur` consecutive good decisions, capped at w_max.
        for k in 1..200u64 {
            ctrl.on_decision(k, k, fast, 5, true);
        }
        assert_eq!(ctrl.current(), 8);
        assert_eq!(ctrl.adaptations().0, 7);
        // An idle window (not full, or no backlog) never grows.
        let mut idle = WindowController::new(PipelineConfig::adaptive(1, 8));
        for k in 1..200u64 {
            idle.on_decision(k, k, fast, 0, true);
            idle.on_decision(k, k, fast, 5, false);
        }
        assert_eq!(idle.current(), 1, "idle pipelines must not drift to w_max");
    }

    #[test]
    fn controller_halves_on_congestion_with_damping() {
        let mut cfg = PipelineConfig::adaptive(1, 16);
        cfg.latency_target = Duration::from_millis(10);
        let mut ctrl = WindowController::new(cfg);
        let fast = Some(Duration::from_millis(1));
        for k in 1..200u64 {
            ctrl.on_decision(k, k, fast, 5, true);
        }
        assert_eq!(ctrl.current(), 16);
        // One slow decision halves…
        ctrl.on_decision(200, 216, Some(Duration::from_millis(50)), 5, true);
        assert_eq!(ctrl.current(), 8);
        // …but instances proposed before the decrease (≤ watermark 216)
        // cannot halve again: they reflect the old window.
        for k in 201..=216u64 {
            ctrl.on_decision(k, 216, Some(Duration::from_millis(50)), 5, true);
        }
        assert_eq!(ctrl.current(), 8, "in-flight stragglers must not re-halve");
        // A slow decision from the post-decrease generation does.
        ctrl.on_decision(217, 230, Some(Duration::from_millis(50)), 5, true);
        assert_eq!(ctrl.current(), 4);
        // Backlog over the limit is the other congestion signal.
        ctrl.on_decision(231, 240, fast, cfg.backlog_limit + 1, true);
        assert_eq!(ctrl.current(), 2);
        // The floor is w_min.
        ctrl.on_decision(241, 250, Some(Duration::from_secs(1)), 0, true);
        ctrl.on_decision(251, 260, Some(Duration::from_secs(1)), 0, true);
        assert_eq!(ctrl.current(), 1);
    }

    #[test]
    fn spill_pressure_grows_the_window_without_waiting_for_decisions() {
        let mut cfg = PipelineConfig::adaptive(1, 16);
        cfg.max_proposal_ids = 100;
        let mut ctrl = WindowController::new(cfg);
        // Backlog fits the window: no growth.
        ctrl.on_spill(100);
        assert_eq!(ctrl.current(), 1);
        // Backlog needs 6 capped instances: jump straight there.
        ctrl.on_spill(550);
        assert_eq!(ctrl.current(), 6);
        // Clamped at w_max no matter how deep the backlog is.
        ctrl.on_spill(1_000_000);
        assert_eq!(ctrl.current(), 16);
        ctrl.on_spill(1_000_000);
        assert_eq!(ctrl.current(), 16, "w_max is a hard bound");
        // Uncapped controllers have no spill signal at all.
        let mut uncapped = WindowController::new(PipelineConfig::adaptive(1, 16));
        uncapped.on_spill(1_000_000);
        assert_eq!(uncapped.current(), 1);
        // Nor do static ones.
        let mut cfg = PipelineConfig::fixed(2);
        cfg.max_proposal_ids = 10;
        let mut fixed = WindowController::new(cfg);
        fixed.on_spill(1_000_000);
        assert_eq!(fixed.current(), 2);
    }

    #[test]
    fn congestion_halving_never_drops_below_what_the_backlog_needs() {
        let mut cfg = PipelineConfig::adaptive(1, 16);
        cfg.max_proposal_ids = 100;
        cfg.latency_target = Duration::from_millis(10);
        let mut ctrl = WindowController::new(cfg);
        ctrl.on_spill(1_600);
        assert_eq!(ctrl.current(), 16);
        // A late decision with the backlog at 900 ids: halving would give
        // 8, and the backlog needs 9 — the floor wins, so the next
        // proposals do not immediately re-trigger spill growth.
        ctrl.on_decision(1, 20, Some(Duration::from_secs(1)), 900, true);
        assert_eq!(ctrl.current(), 9);
        // With the backlog drained, halving reaches for w_min again.
        ctrl.on_decision(21, 40, Some(Duration::from_secs(1)), 0, true);
        assert_eq!(ctrl.current(), 4);
        // And deep spill pressure suppresses the decrease entirely: the
        // cap already bounds per-instance bookkeeping, so a deep backlog
        // wants more concurrency, not less.
        ctrl.on_decision(41, 60, Some(Duration::from_secs(1)), 100_000, true);
        assert_eq!(ctrl.current(), 16, "spill pressure must override halving");
    }

    #[test]
    fn ewma_signal_halves_on_relative_worsening_not_absolute_target() {
        let mut cfg = PipelineConfig::adaptive(1, 16);
        // An absurd absolute target that would never fire: the EWMA signal
        // must not consult it.
        cfg.latency_target = Duration::from_secs(3600);
        cfg.ewma_signal = true;
        let mut ctrl = WindowController::new(cfg);
        assert!(ctrl.ewma_latency_secs().is_none(), "cold controller has no baseline");
        // A steady 1 ms baseline, long enough to warm up and grow.
        let steady = Some(Duration::from_millis(1));
        for k in 1..100u64 {
            ctrl.on_decision(k, k, steady, 5, true);
        }
        let grown = ctrl.current();
        assert!(grown > 1, "healthy EWMA runs must still grow additively");
        let baseline = ctrl.ewma_latency_secs().expect("warmed up");
        assert!((baseline - 0.001).abs() < 1e-4, "baseline ~1 ms, got {baseline}");
        // 1.5× the baseline: worse, but under the worsen factor — no halve.
        ctrl.on_decision(100, 120, Some(Duration::from_micros(1500)), 5, true);
        assert_eq!(ctrl.current(), grown);
        // 10× the baseline: congestion, despite the huge absolute target.
        ctrl.on_decision(101, 120, Some(Duration::from_millis(10)), 5, true);
        assert_eq!(ctrl.current(), grown / 2, "EWMA worsening must halve");
        assert!(ctrl.adaptations().1 >= 1);
    }

    #[test]
    fn ewma_baseline_adapts_so_a_slow_regime_stops_halving() {
        let mut cfg = PipelineConfig::adaptive(1, 16);
        cfg.latency_target = Duration::from_secs(3600);
        cfg.ewma_signal = true;
        let mut ctrl = WindowController::new(cfg);
        let fast = Some(Duration::from_millis(1));
        for k in 1..50u64 {
            ctrl.on_decision(k, k, fast, 5, true);
        }
        // The deployment moves to a legitimately slower regime (e.g. a
        // bigger cluster): after the decrease-damping watermark passes,
        // the baseline absorbs the new latency and growth resumes —
        // that is the point of a relative signal.
        let slow = Some(Duration::from_millis(20));
        for k in 50..300u64 {
            ctrl.on_decision(k, k, slow, 5, true);
        }
        let baseline = ctrl.ewma_latency_secs().expect("warmed up");
        assert!((baseline - 0.020).abs() < 1e-3, "baseline must track the regime");
        assert_eq!(ctrl.current(), 16, "steady (if slow) latency must allow regrowth");
    }

    #[test]
    fn ewma_mode_keeps_the_backlog_signal_and_bounds() {
        let mut cfg = PipelineConfig::adaptive(1, 8);
        cfg.ewma_signal = true;
        let mut ctrl = WindowController::new(cfg);
        let fast = Some(Duration::from_millis(1));
        for k in 1..100u64 {
            ctrl.on_decision(k, k, fast, 5, true);
        }
        assert_eq!(ctrl.current(), 8);
        // Backlog over the limit still halves, EWMA or not.
        ctrl.on_decision(100, 120, fast, cfg.backlog_limit + 1, true);
        assert_eq!(ctrl.current(), 4);
        // And the window can never escape its bounds.
        for k in 121..400u64 {
            ctrl.on_decision(k, 400, Some(Duration::from_secs(60)), 0, true);
            assert!((1..=8).contains(&ctrl.current()));
        }
    }

    #[test]
    fn node_accumulates_decision_latency_stats() {
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        c.set_now(Time::ZERO + Duration::from_millis(4));
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        let (sum, count) = node.decision_latency_stats();
        assert_eq!(count, 1);
        assert_eq!(sum, Duration::from_millis(4));
        let (psum, pcount) = PipelineProbe::decision_latencies(&node);
        assert_eq!((psum, pcount), (sum, count));
    }

    #[test]
    fn adaptive_node_reacts_to_decision_latency() {
        let mut cfg = PipelineConfig::adaptive(1, 4);
        cfg.latency_target = Duration::from_millis(5);
        let mut node = test_node_with(cfg);
        assert!(node.is_adaptive_window());
        assert_eq!(node.window_bounds(), (1, 4));
        let mut c = ctx();
        // Instance 1 proposed at t=0; its decision arrives *late*.
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        assert_eq!(node.window(), 1);
        c.set_now(Time::ZERO + Duration::from_millis(50));
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        // Already at w_min, so the halving is a no-op, but it was counted.
        assert_eq!(node.window(), 1);
        assert_eq!(node.window_adaptations().1, 1, "late decision must register");
    }

    /// A remote message with an explicit broadcast instant (the freshness
    /// gate keys on `now - broadcast_at`).
    fn msg_at(p: u16, seq: u64, at: Time) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(p), seq), Payload::zeroed(8), at)
    }

    /// `now - d` (tests construct messages broadcast in the past).
    fn ago(now: Time, d: Duration) -> Time {
        Time::from_nanos(now.as_nanos() - d.as_nanos())
    }

    /// Warms a node's flood-delay EWMA to ~`delay` (constant observations)
    /// while running the pipeline normally: delivers `FRESHNESS_WARMUP`
    /// remote messages aged `delay`, advances the clock one `delay` so
    /// they are all clearly mature, and decides them away — leaving the
    /// node idle with a trusted estimate. Returns the next fresh sequence
    /// number; the context clock ends at `now + delay`.
    fn warm_flood_ewma(
        node: &mut AbcastNode<IdSet, CtConsensus<IdSet>>,
        c: &mut Ctx<IdSet>,
        now: Time,
        delay: Duration,
    ) -> u64 {
        c.set_now(now);
        for seq in 0..FRESHNESS_WARMUP {
            deliver_data(node, 1, msg_at(1, seq, ago(now, delay)), c);
        }
        // Jump well past FRESHNESS_FACTOR delays so everything is clearly
        // mature: decide the whole backlog away so the window is free.
        c.set_now(now + delay + delay + delay);
        let all: Vec<MsgId> = (0..FRESHNESS_WARMUP).map(|s| msg_at(1, s, now).id()).collect();
        let mut k = node.instance();
        let mut guard = 0;
        while node.unordered_len() > 0 {
            deliver_decide(node, k, IdSet::from_ids(all.clone()), c);
            k += 1;
            guard += 1;
            assert!(guard < 4, "warm-up backlog failed to drain");
        }
        FRESHNESS_WARMUP
    }

    #[test]
    fn freshness_gate_defers_fresh_ids_until_they_mature() {
        let cfg = PipelineConfig::fixed(1).with_proposal_freshness(true);
        let mut node = test_node_with(cfg);
        let mut c = ctx();
        let delay = Duration::from_millis(20);
        let now = Time::ZERO + Duration::from_millis(100);
        let next = warm_flood_ewma(&mut node, &mut c, now, delay);
        let est = node.flood_delay_estimate().expect("estimate warmed");
        assert!(
            est.as_nanos().abs_diff(delay.as_nanos()) <= 1_000,
            "constant observations must converge to the delay, got {est}"
        );
        let proposed = node.instance();

        // A brand-new remote id (age zero): the gate must hold it back and
        // arm a re-propose wake-up instead of burning a round.
        c.take_actions();
        deliver_data(&mut node, 1, msg_at(1, next, c.now()), &mut c);
        assert_eq!(node.instance(), proposed, "fresh id must not be proposed yet");
        assert_eq!(node.unordered_len(), 1, "gated id stays in unordered");
        // The age-zero delivery itself fed the EWMA, so the wake-up uses
        // the *updated* estimate.
        let est = node.flood_delay_estimate().expect("still warmed");
        let timers: Vec<(Duration, TimerId)> = c
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::SetTimer { delay, timer } if timer.kind() == 2 => Some((delay, timer)),
                _ => None,
            })
            .collect();
        assert_eq!(timers.len(), 1, "exactly one re-propose wake-up armed");
        let (tdelay, timer) = timers[0];
        let threshold = Duration::from_secs_f64(FRESHNESS_FACTOR * est.as_secs_f64());
        assert!(
            tdelay.as_nanos().abs_diff(threshold.as_nanos()) <= 1_000,
            "wake-up at FRESHNESS_FACTOR flood delays, got {tdelay} vs {threshold}"
        );

        // The wake-up fires after the id matured: it gets proposed — the
        // gate never excludes an id permanently.
        c.set_now(c.now() + tdelay);
        node.on_timer(timer, &mut c);
        assert_eq!(node.instance(), proposed + 1, "matured id must be proposed");
    }

    #[test]
    fn freshness_gate_slices_mature_ids_and_counts_held_ones() {
        let cfg = PipelineConfig::fixed(1).with_proposal_freshness(true);
        let mut node = test_node_with(cfg);
        let mut c = ctx();
        let delay = Duration::from_millis(20);
        let now = Time::ZERO + Duration::from_millis(100);
        let next = warm_flood_ewma(&mut node, &mut c, now, delay);
        let proposed = node.instance();

        // An old id (well past one flood delay) occupies the window…
        let old = msg_at(1, next, ago(c.now(), Duration::from_millis(100)));
        deliver_data(&mut node, 1, old.clone(), &mut c);
        assert_eq!(node.instance(), proposed + 1);
        // …then another old id and a fresh one queue behind it.
        let old2 = msg_at(1, next + 1, ago(c.now(), Duration::from_millis(100)));
        let fresh = msg_at(1, next + 2, c.now());
        deliver_data(&mut node, 1, old2.clone(), &mut c);
        deliver_data(&mut node, 1, fresh.clone(), &mut c);
        // Deciding the head frees the slot: the next proposal must carry
        // the mature id only, counting the held-back fresh one.
        deliver_decide(&mut node, proposed + 1, IdSet::from_ids([old.id()]), &mut c);
        assert_eq!(node.instance(), proposed + 2);
        assert_eq!(node.freshness_held(), 1, "the fresh id sat the proposal out");
        assert_eq!(node.unordered_len(), 2, "old2 proposed, fresh still unordered");
        // Deciding old2 with only the fresh id left: defer + wake-up, and
        // the id is eventually proposed and decided (no permanent loss).
        deliver_decide(&mut node, proposed + 2, IdSet::from_ids([old2.id()]), &mut c);
        assert_eq!(node.instance(), proposed + 2, "all-fresh candidate set defers");
        c.set_now(c.now() + Duration::from_millis(80));
        node.on_timer(TimerId::new(2, 0), &mut c);
        assert_eq!(node.instance(), proposed + 3);
        deliver_decide(&mut node, proposed + 3, IdSet::from_ids([fresh.id()]), &mut c);
        assert_eq!(node.unordered_len(), 0);
    }

    #[test]
    fn freshness_gate_is_inert_before_warmup_and_when_disabled() {
        // Disabled: fresh ids propose immediately no matter the estimate.
        let mut node = test_node(1);
        let mut c = ctx();
        let now = Time::ZERO + Duration::from_millis(50);
        c.set_now(now);
        deliver_data(&mut node, 1, msg_at(1, 0, now), &mut c);
        assert_eq!(node.instance(), 1, "gate off: age-zero id proposed at once");

        // Enabled but cold (under FRESHNESS_WARMUP remote deliveries): the
        // estimate is not trusted yet, so nothing is deferred.
        let cfg = PipelineConfig::fixed(1).with_proposal_freshness(true);
        let mut node = test_node_with(cfg);
        let mut c = ctx();
        c.set_now(now);
        assert!(node.flood_delay_estimate().is_none());
        deliver_data(&mut node, 1, msg_at(1, 0, now), &mut c);
        assert_eq!(node.instance(), 1, "cold gate must not defer proposals");
    }

    #[test]
    fn node_counts_consensus_refusals_it_sends() {
        // An indirect-CT node nacks a coordinator proposal whose payloads
        // it does not hold; the node-level counter must see that refusal.
        use iabc_consensus::CtIndirect;
        let mut node: AbcastNode<IdSet, CtIndirect<IdSet>> = AbcastNode::new(
            ProcessId::new(0),
            3,
            Box::new(EagerRb::new()),
            Box::new(NeverSuspect::new()),
            |k| CtIndirect::with_coord_offset(ProcessId::new(0), 3, k),
            true,
            CostModel::zero(),
            PipelineConfig::fixed(1),
        );
        let mut c = ctx();
        node.on_message(ProcessId::new(1), Envelope::Bcast(BcastMsg::Data(msg(1, 0))), &mut c);
        assert_eq!(node.instance(), 1);
        assert_eq!(node.nacks_sent(), 0);
        // The round-1 coordinator proposes a value naming an id this node
        // never received: rcv() fails, a CtNack goes out.
        node.on_message(
            ProcessId::new(1),
            Envelope::Cons {
                k: 1,
                msg: ConsMsg::CtProposal { round: 1, estimate: IdSet::from_ids([msg(2, 99).id()]) },
            },
            &mut c,
        );
        assert_eq!(node.nacks_sent(), 1, "missing payload must register as a refusal");
    }

    #[test]
    fn idset_ordering_value() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 5).id()]);
        let v = IdSet::from_unordered(&unordered, &store);
        assert_eq!(v, unordered);
        assert_eq!(v.id_count(), 2);
        assert!(!OrderingValue::held_in(&v, &store), "msg(1,5) is missing");
        store.insert(msg(1, 5));
        assert!(OrderingValue::held_in(&v, &store));
    }

    #[test]
    fn msgset_ordering_value_carries_payloads() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        store.insert(msg(1, 1));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 1).id()]);
        let v = MsgSet::from_unordered(&unordered, &store);
        assert_eq!(v.len(), 2);
        assert!(v.held_in(&ReceivedStore::new()), "MsgSet is self-contained");
        // A fresh store learns the payloads from the value.
        let mut fresh = ReceivedStore::new();
        v.store_payloads(&mut fresh);
        assert!(fresh.contains(msg(0, 0).id()));
        assert!(fresh.contains(msg(1, 1).id()));
    }

    #[test]
    fn node_oracle_modes() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let missing = IdSet::from_ids([msg(9, 9).id()]);

        let checking = NodeOracle {
            store: &store,
            check_store: true,
            cost_per_id: Duration::from_micros(10),
        };
        assert!(!RcvOracle::<IdSet>::rcv(&checking, &missing));
        assert_eq!(RcvOracle::<IdSet>::cost(&checking, &missing), Duration::from_micros(10));

        let faulty = NodeOracle { store: &store, check_store: false, cost_per_id: Duration::ZERO };
        assert!(RcvOracle::<IdSet>::rcv(&faulty, &missing), "the faulty oracle lies");
        assert_eq!(RcvOracle::<IdSet>::cost(&faulty, &missing), Duration::ZERO);
    }

    // ---- catch-up, decided log, learner mode ----

    fn catchup_node() -> AbcastNode<IdSet, CtConsensus<IdSet>> {
        test_node_with(PipelineConfig::fixed(1).with_catch_up(true))
    }

    /// Drains the context and returns every `(to, msg)` send.
    fn sends(c: &mut Ctx<IdSet>) -> Vec<(ProcessId, Envelope<IdSet>)> {
        c.take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    /// Drains the context and returns the single armed timer of `kind`.
    fn armed_timer(c: &mut Ctx<IdSet>, kind: u32) -> (Duration, TimerId) {
        let timers: Vec<(Duration, TimerId)> = c
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::SetTimer { delay, timer } if timer.kind() == kind => {
                    Some((delay, timer))
                }
                _ => None,
            })
            .collect();
        assert_eq!(timers.len(), 1, "expected exactly one kind-{kind} timer");
        timers[0]
    }

    /// A decided-log entry carrying the given messages' ids and payloads.
    fn log_entry(k: u64, msgs: &[AppMessage]) -> DecidedEntry<IdSet> {
        DecidedEntry {
            k,
            value: IdSet::from_ids(msgs.iter().map(|m| m.id())),
            payloads: msgs.to_vec(),
        }
    }

    /// A peer heartbeat wrapped with the peer's decided frontier.
    fn wrapped_hb(frontier: u64) -> Envelope<IdSet> {
        Envelope::WithFrontier {
            frontier,
            inner: Box::new(Envelope::Fd(FdMsg::Heartbeat(0))),
        }
    }

    #[test]
    fn catch_up_sends_carry_the_frontier_and_off_sends_stay_plain() {
        // On: once instance 1 is logged, outbound frames advertise it.
        let mut node = catchup_node();
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.decided_frontier(), 1);
        c.take_actions();
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        let out = sends(&mut c);
        assert!(!out.is_empty());
        assert!(
            out.iter().all(|(_, m)| matches!(m, Envelope::WithFrontier { frontier: 1, .. })),
            "every frame of a catch-up node must carry its frontier"
        );

        // Off (the default): the wrapper never appears, so committed
        // baselines and wire traces stay byte-identical.
        let mut node = test_node(1);
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.decided_frontier(), 0, "no log without catch-up");
        assert!(sends(&mut c)
            .iter()
            .all(|(_, m)| !matches!(m, Envelope::WithFrontier { .. })));
    }

    #[test]
    fn catch_up_request_is_served_from_the_log() {
        let mut node = catchup_node();
        let mut c = ctx();
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        deliver_data(&mut node, 1, msg(1, 1), &mut c);
        deliver_decide(&mut node, 2, IdSet::from_ids([msg(1, 1).id()]), &mut c);
        assert_eq!(node.decided_frontier(), 2);
        c.take_actions();
        // A laggard asks for everything: the reply is clamped to what we
        // hold and wrapped with our frontier.
        node.on_message(
            ProcessId::new(2),
            Envelope::CatchUpRequest { from_k: 1, to_k: u64::MAX },
            &mut c,
        );
        let (to, frontier, entries) = sends(&mut c)
            .into_iter()
            .find_map(|(to, m)| match m {
                Envelope::WithFrontier { frontier, inner } => match *inner {
                    Envelope::CatchUpReply { entries } => Some((to, frontier, entries)),
                    _ => None,
                },
                _ => None,
            })
            .expect("a wrapped catch-up reply");
        assert_eq!(to, ProcessId::new(2));
        assert_eq!(frontier, 2);
        assert_eq!(entries.len(), 2);
        assert_eq!((entries[0].k, entries[1].k), (1, 2));
        assert_eq!(entries[0].payloads[0].id(), msg(1, 0).id(), "entries carry payloads");
    }

    #[test]
    fn frontier_ahead_triggers_a_request_and_the_reply_applies_in_order() {
        let mut node = catchup_node();
        let mut c = ctx();
        // A peer heartbeat advertises frontier 2 while we hold nothing.
        node.on_message(ProcessId::new(1), wrapped_hb(2), &mut c);
        assert_eq!(node.catch_up_requests(), 1);
        let req = sends(&mut c)
            .into_iter()
            .find_map(|(to, m)| match m {
                Envelope::WithFrontier { inner, .. } => match *inner {
                    Envelope::CatchUpRequest { from_k, to_k } => Some((to, from_k, to_k)),
                    _ => None,
                },
                _ => None,
            })
            .expect("a catch-up request");
        assert_eq!(req, (ProcessId::new(1), 1, 2));
        // The reply flows through the normal decision path: strict
        // instance order, payloads first-class, frontier advanced.
        let entries = vec![log_entry(1, &[msg(1, 0)]), log_entry(2, &[msg(1, 1)])];
        node.on_message(ProcessId::new(1), Envelope::CatchUpReply { entries }, &mut c);
        assert_eq!(delivered_ids(&mut c), vec![msg(1, 0).id(), msg(1, 1).id()]);
        assert_eq!(node.decided_frontier(), 2);
        assert_eq!(node.caught_up_entries(), 2);
    }

    #[test]
    fn catch_up_retry_fires_once_per_outstanding_request() {
        let mut node = catchup_node();
        let mut c = ctx();
        node.on_message(ProcessId::new(1), wrapped_hb(2), &mut c);
        assert_eq!(node.catch_up_requests(), 1);
        let (_, t1) = armed_timer(&mut c, TIMER_CATCHUP);
        // No reply: the retry re-requests (and re-arms).
        node.on_timer(t1, &mut c);
        assert_eq!(node.catch_up_requests(), 2);
        let (_, t2) = armed_timer(&mut c, TIMER_CATCHUP);
        // The reply settles the request…
        let entries = vec![log_entry(1, &[msg(1, 0)]), log_entry(2, &[msg(1, 1)])];
        node.on_message(ProcessId::new(1), Envelope::CatchUpReply { entries }, &mut c);
        assert_eq!(node.decided_frontier(), 2);
        // …so the now-stale retry is inert: no ghost re-request.
        node.on_timer(t2, &mut c);
        assert_eq!(node.catch_up_requests(), 2);
        // And the already-fired t1 epoch certainly is.
        node.on_timer(t1, &mut c);
        assert_eq!(node.catch_up_requests(), 2);
    }

    #[test]
    fn catch_up_retry_backs_off_exponentially_and_resets_on_reply() {
        let mut node = catchup_node();
        let mut c = ctx();
        node.on_message(ProcessId::new(1), wrapped_hb(2), &mut c);
        let (d1, t1) = armed_timer(&mut c, TIMER_CATCHUP);
        assert_eq!(d1, CATCH_UP_RETRY);
        // Unanswered retries double the delay…
        node.on_timer(t1, &mut c);
        let (d2, t2) = armed_timer(&mut c, TIMER_CATCHUP);
        assert_eq!(d2, CATCH_UP_RETRY * 2);
        node.on_timer(t2, &mut c);
        let (d3, mut last) = armed_timer(&mut c, TIMER_CATCHUP);
        assert_eq!(d3, CATCH_UP_RETRY * 4);
        // …up to the cap, where the delay plateaus.
        let mut prev = d3;
        for _ in 0..8 {
            node.on_timer(last, &mut c);
            let (d, t) = armed_timer(&mut c, TIMER_CATCHUP);
            assert!(d >= prev, "backoff must be monotone");
            assert!(d <= CATCH_UP_RETRY_MAX, "backoff must respect the cap");
            prev = d;
            last = t;
        }
        assert_eq!(prev, CATCH_UP_RETRY_MAX);
        // A reply resets the backoff: the follow-up request it issues
        // (still behind the advertised frontier) arms at the base delay.
        let entries = vec![log_entry(1, &[msg(1, 0)])];
        node.on_message(ProcessId::new(1), Envelope::CatchUpReply { entries }, &mut c);
        let (d, _) = armed_timer(&mut c, TIMER_CATCHUP);
        assert_eq!(d, CATCH_UP_RETRY, "reply must reset the retry backoff");
    }

    #[test]
    fn pending_set_tracks_accept_to_log_lifecycle() {
        let mut node = catchup_node();
        let mut c = ctx();
        assert_eq!(node.pending_broadcasts(), 0);
        node.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        assert_eq!(node.pending_broadcasts(), 1, "accepted broadcast is pending");
        // The instance ordering our id reaches the log: entry cleared.
        deliver_decide(&mut node, 1, IdSet::from_ids([MsgId::new(ProcessId::new(0), 0)]), &mut c);
        assert_eq!(node.decided_frontier(), 1);
        assert_eq!(node.pending_broadcasts(), 0, "logged broadcast must clear");
        // Without catch-up there is no pending tracking at all.
        let mut plain = test_node(1);
        plain.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        assert_eq!(plain.pending_broadcasts(), 0);
    }

    #[test]
    fn restart_refloods_pending_broadcasts_and_resumes_seq() {
        // The previous incarnation accepted (0, 5) but crashed before its
        // instance was decided: the pending sidecar survived.
        let mut store = crate::pending::MemPendingStore::new();
        store.record(msg(0, 5));
        let mut node = catchup_node();
        node.set_pending_store(Box::new(store));
        let mut c = ctx();
        node.on_start(&mut c);
        assert_eq!(node.pending_refloods(), 1);
        let reflooded = sends(&mut c).into_iter().any(|(_, m)| match m {
            Envelope::WithFrontier { inner, .. } => matches!(
                *inner,
                Envelope::Bcast(BcastMsg::Data(ref am)) if am.id() == msg(0, 5).id()
            ),
            _ => false,
        });
        assert!(reflooded, "pending broadcast must be re-flooded at start");
        // next_seq resumes past the pending id even though the log is empty.
        node.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        let bid = c
            .take_actions()
            .into_iter()
            .find_map(|a| match a {
                Action::Output(AbcastEvent::Broadcast { id }) => Some(id),
                _ => None,
            })
            .expect("broadcast assigned an id");
        assert_eq!(bid, MsgId::new(ProcessId::new(0), 6), "no id reuse past pending");
    }

    #[test]
    fn recovery_clears_pending_entries_already_in_the_log() {
        // Crash happened between the log append and the pending clear: the
        // entry is in both. Recovery must finish the clear, not re-flood.
        let mut log = MemDecidedLog::new();
        assert!(log.append(log_entry(1, &[msg(0, 0)])));
        let mut store = crate::pending::MemPendingStore::new();
        store.record(msg(0, 0));
        let mut node = catchup_node();
        node.set_decided_log(Box::new(log));
        node.set_pending_store(Box::new(store));
        let mut c = ctx();
        node.on_start(&mut c);
        assert_eq!(node.pending_broadcasts(), 0, "logged entry must be cleared");
        assert_eq!(node.pending_refloods(), 0, "logged entry must not re-flood");
    }

    #[test]
    fn settled_catch_up_refloods_undecided_pending_as_relays() {
        let mut node = catchup_node();
        let mut c = ctx();
        // Accept a broadcast; its id is not decided yet.
        node.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        c.take_actions();
        // A catch-up episode settles (peer entries for other ids): the
        // still-pending broadcast is re-flooded as an RB relay.
        let entries = vec![log_entry(1, &[msg(1, 0)])];
        node.on_message(ProcessId::new(1), Envelope::CatchUpReply { entries }, &mut c);
        assert_eq!(node.pending_refloods(), 1);
        let relayed = sends(&mut c).into_iter().any(|(_, m)| match m {
            Envelope::WithFrontier { inner, .. } => matches!(
                *inner,
                Envelope::Bcast(BcastMsg::Relay(ref am))
                    if am.id() == MsgId::new(ProcessId::new(0), 0)
            ),
            _ => false,
        });
        assert!(relayed, "undecided pending broadcast must re-flood after catch-up");
    }

    #[test]
    fn frontier_wrapper_is_transparent_when_catch_up_is_off() {
        let mut node = test_node(1);
        let mut c = ctx();
        // A wrapped RB frame from a catch-up peer: the inner frame is
        // processed normally, the hint ignored, no request issued.
        node.on_message(
            ProcessId::new(1),
            Envelope::WithFrontier {
                frontier: 9,
                inner: Box::new(Envelope::Bcast(BcastMsg::Data(msg(1, 0)))),
            },
            &mut c,
        );
        assert_eq!(node.instance(), 1, "inner data frame proposed as usual");
        assert_eq!(node.catch_up_requests(), 0);
        assert!(sends(&mut c)
            .iter()
            .all(|(_, m)| !matches!(m, Envelope::CatchUpRequest { .. })));
    }

    #[test]
    fn log_entry_waits_for_its_payloads() {
        let mut node = catchup_node();
        let mut c = ctx();
        // Instance 1 decides an id whose payload has not R-delivered yet:
        // nothing may be logged (the frontier is the *delivered* prefix).
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 0);
        assert_eq!(node.decided_frontier(), 0, "undelivered instance must not be logged");
        // The payload arrives: delivery completes and the entry lands.
        deliver_data(&mut node, 1, msg(1, 0), &mut c);
        assert_eq!(node.delivered_count(), 1);
        assert_eq!(node.decided_frontier(), 1);
    }

    #[test]
    fn restart_resumes_from_the_log_without_redelivering() {
        // The pre-crash run logged instance 1 (our own m) and 2 (a peer's).
        let mut log = MemDecidedLog::new();
        assert!(log.append(log_entry(1, &[msg(0, 0)])));
        assert!(log.append(log_entry(2, &[msg(1, 0)])));
        let mut node = catchup_node();
        node.set_decided_log(Box::new(log));
        let mut c = ctx();
        node.on_start(&mut c);
        assert_eq!(node.decided_frontier(), 2);
        assert_eq!(delivered_ids(&mut c), vec![], "logged prefix is not re-delivered");
        // Our own sequence resumes past the logged prefix: no id reuse.
        node.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        let bid = c
            .take_actions()
            .into_iter()
            .find_map(|a| match a {
                Action::Output(AbcastEvent::Broadcast { id }) => Some(id),
                _ => None,
            })
            .expect("broadcast assigned an id");
        assert_eq!(bid, MsgId::new(ProcessId::new(0), 1));
        // A stale decision for a logged instance is dropped outright.
        node.handle_decision(1, IdSet::from_ids([msg(9, 9).id()]), &mut c);
        assert_eq!(node.stale_decisions(), 1);
        // The next decision applies as instance 3 and extends the log.
        deliver_decide(&mut node, 3, IdSet::from_ids([msg(1, 5).id()]), &mut c);
        deliver_data(&mut node, 1, msg(1, 5), &mut c);
        assert_eq!(node.decided_frontier(), 3);
        assert!(delivered_ids(&mut c).contains(&msg(1, 5).id()));
    }

    #[test]
    fn learner_consumes_the_stream_without_ever_proposing() {
        let mut node = test_node_with(PipelineConfig::fixed(1).with_learner(true));
        let mut c = ctx();
        assert!(node.is_learner());
        // Commands are ignored: a read replica never feeds the stream.
        node.on_command(AbcastCommand::Broadcast(Payload::zeroed(8)), &mut c);
        assert!(c.take_actions().is_empty(), "learner must drop commands");
        // Consensus traffic is dropped wholesale — no acks, no relays.
        deliver_decide(&mut node, 1, IdSet::from_ids([msg(1, 0).id()]), &mut c);
        assert_eq!(node.delivered_count(), 0);
        assert!(sends(&mut c).is_empty(), "learner must not answer consensus");
        // The decided stream arrives via frontier + catch-up only.
        node.on_message(ProcessId::new(1), wrapped_hb(2), &mut c);
        assert_eq!(node.catch_up_requests(), 1);
        c.take_actions(); // drop the request frame; what follows is the reply
        let entries = vec![log_entry(1, &[msg(1, 0)]), log_entry(2, &[msg(1, 1)])];
        node.on_message(ProcessId::new(1), Envelope::CatchUpReply { entries }, &mut c);
        let actions = c.take_actions();
        let delivered: Vec<MsgId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Output(AbcastEvent::Delivered { msg }) => Some(msg.id()),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![msg(1, 0).id(), msg(1, 1).id()]);
        assert_eq!(node.decided_frontier(), 2);
        assert_eq!(node.in_flight(), 0, "a learner opens no consensus instances");
        assert!(
            actions.iter().all(|a| !matches!(a, Action::Send { .. })),
            "absorbing the stream must not make a learner talk"
        );
    }

    /// Regression for the freshness-gate one-shot audit: when the maturity
    /// estimate *grows* between arming the `TIMER_PROPOSE` wake-up and its
    /// firing, the candidate set can still be all-fresh at fire time — the
    /// gate must re-arm from the new estimate, not go dormant until
    /// unrelated traffic ticks the node.
    #[test]
    fn freshness_gate_rearms_when_estimate_grew() {
        let cfg = PipelineConfig::fixed(1).with_proposal_freshness(true);
        let mut node = test_node_with(cfg);
        let mut c = ctx();
        let delay = Duration::from_millis(20);
        let now = Time::ZERO + Duration::from_millis(300);
        let next = warm_flood_ewma(&mut node, &mut c, now, delay);
        let proposed = node.instance();
        c.take_actions();

        // A fresh id arrives: held, wake-up armed from the current estimate.
        let fresh = msg_at(1, next, c.now());
        deliver_data(&mut node, 1, fresh.clone(), &mut c);
        assert_eq!(node.instance(), proposed, "fresh id held");
        let (d1, t1) = armed_timer(&mut c, TIMER_PROPOSE);

        // Before the wake-up fires, a much older id arrives: it is mature
        // (proposed at once) and its large observation grows the EWMA, so
        // the armed wake-up now undershoots the new threshold.
        let old = msg_at(1, next + 1, ago(c.now(), Duration::from_millis(200)));
        deliver_data(&mut node, 1, old.clone(), &mut c);
        assert_eq!(node.instance(), proposed + 1, "mature id proposed at once");
        deliver_decide(&mut node, proposed + 1, IdSet::from_ids([old.id()]), &mut c);
        c.take_actions();

        // The stale wake-up fires too early for the grown estimate: the
        // candidate is still all-fresh, so the gate must RE-ARM.
        c.set_now(c.now() + d1);
        node.on_timer(t1, &mut c);
        assert_eq!(node.instance(), proposed + 1, "still fresh at the stale wake-up");
        assert_eq!(node.unordered_len(), 1, "the id is gated, not lost");
        let (d2, t2) = armed_timer(&mut c, TIMER_PROPOSE);

        // The re-armed wake-up matures the id with NO background traffic.
        c.set_now(c.now() + d2);
        node.on_timer(t2, &mut c);
        assert_eq!(node.instance(), proposed + 2, "re-armed wake-up proposes");
        deliver_decide(&mut node, proposed + 2, IdSet::from_ids([fresh.id()]), &mut c);
        assert!(delivered_ids(&mut c).contains(&fresh.id()));
        assert_eq!(node.unordered_len(), 0);
    }
}
