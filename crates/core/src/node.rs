//! The composed atomic broadcast node (Algorithm 1 of the paper).

use std::collections::{HashSet, VecDeque};
use std::fmt;

use iabc_broadcast::{BcastDest, BcastOut, Broadcast};
use iabc_consensus::{ConsDest, InstanceManager, MgrOut, RcvOracle, SingleConsensus};
use iabc_fd::{FailureDetector, FdDest, FdEvent, FdOut};
use iabc_runtime::{Context, Node, TimerId};
use iabc_types::{AppMessage, Duration, IdSet, MsgId, ProcessId, ProcessSet};

use crate::envelope::Envelope;
use crate::msgset::MsgSet;
use crate::store::{CostModel, ReceivedStore};
use crate::{AbcastCommand, AbcastEvent};

/// Timer-id kind reserved for the failure detector.
const TIMER_FD: u32 = 1;

/// How many decided consensus instances to keep as a straggler
/// retransmission cache before garbage collection (see
/// [`InstanceManager::gc_decided_below`]).
const KEEP_DECIDED_INSTANCES: u64 = 8;

/// A value type the atomic broadcast reduction can order by.
///
/// Implemented by [`IdSet`] (identifier-based stacks: indirect, faulty,
/// URB) and [`MsgSet`] (the classic full-message reduction). The node
/// manipulates proposals and decisions exclusively through this interface,
/// so one `AbcastNode` implementation covers all four stacks.
pub trait OrderingValue: iabc_consensus::ConsensusValue + Send {
    /// Builds the proposal for the next consensus instance from the
    /// currently unordered identifiers (Algorithm 1 line 17).
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self;

    /// The identifiers contained in this value, in deterministic order
    /// (Algorithm 1 line 20).
    fn ids(&self) -> IdSet;

    /// Number of identifiers (for cost accounting).
    fn id_count(&self) -> usize;

    /// The `rcv` check: whether all messages identified by this value are
    /// in `store`.
    fn held_in(&self, store: &ReceivedStore) -> bool;

    /// Adds any payloads carried *inside* the value to the store (only
    /// full-message sets carry payloads).
    fn store_payloads(&self, store: &mut ReceivedStore);
}

impl OrderingValue for IdSet {
    fn from_unordered(unordered: &IdSet, _store: &ReceivedStore) -> Self {
        unordered.clone()
    }

    fn ids(&self) -> IdSet {
        self.clone()
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, store: &ReceivedStore) -> bool {
        self.iter().all(|id| store.contains(id))
    }

    fn store_payloads(&self, _store: &mut ReceivedStore) {}
}

impl OrderingValue for MsgSet {
    fn from_unordered(unordered: &IdSet, store: &ReceivedStore) -> Self {
        MsgSet::from_msgs(unordered.iter().map(|id| {
            store
                .get(id)
                .expect("unordered ids always have payloads in the store")
                .clone()
        }))
    }

    fn ids(&self) -> IdSet {
        MsgSet::ids(self)
    }

    fn id_count(&self) -> usize {
        self.len()
    }

    fn held_in(&self, _store: &ReceivedStore) -> bool {
        true // the value carries its own payloads
    }

    fn store_payloads(&self, store: &mut ReceivedStore) {
        for m in self.iter() {
            store.insert(m.clone());
        }
    }
}

/// The node's `rcv` oracle: a view over its received-message store.
///
/// For the *faulty* and *direct* stacks `check_store` is false and the
/// oracle degenerates to "always true, free" — exactly the unchecked
/// behaviour the paper warns about in §2.2.
#[derive(Debug)]
struct NodeOracle<'a> {
    store: &'a ReceivedStore,
    check_store: bool,
    cost_per_id: Duration,
}

impl<'a, V: OrderingValue> RcvOracle<V> for NodeOracle<'a> {
    fn rcv(&self, v: &V) -> bool {
        !self.check_store || v.held_in(self.store)
    }

    fn cost(&self, v: &V) -> Duration {
        if self.check_store {
            self.cost_per_id * v.id_count() as u64
        } else {
            Duration::ZERO
        }
    }
}

/// One process of an atomic broadcast system: reliable (or uniform
/// reliable) broadcast below, a sequence of consensus instances above,
/// a failure detector on the side — composed exactly as Algorithm 1
/// prescribes.
///
/// Construct nodes through the [`crate::stacks`] functions, which pick the
/// broadcast module, the consensus algorithm, and the oracle mode for each
/// of the paper's four stack variants.
pub struct AbcastNode<V: OrderingValue, A: SingleConsensus<V>> {
    me: ProcessId,
    n: usize,
    bcast: Box<dyn Broadcast + Send>,
    fd: Box<dyn FailureDetector + Send>,
    mgr: InstanceManager<V, A>,
    /// `received_p`.
    store: ReceivedStore,
    /// `unordered_p`.
    unordered: IdSet,
    /// `ordered_p`: ordered, not yet delivered.
    ordered: VecDeque<MsgId>,
    /// Every identifier ever ordered (line 13's membership test must cover
    /// already-delivered ids too).
    ordered_ever: HashSet<MsgId>,
    /// Current failure-detector output.
    suspected: ProcessSet,
    /// Whether the oracle really checks the store (`false` = faulty/direct).
    check_store: bool,
    cost: CostModel,
    /// Serial number of the latest consensus instance (line 6).
    k: u64,
    /// Whether instance `k` is still running.
    running: bool,
    /// Sequence number for this process's own broadcasts.
    next_seq: u64,
    delivered_count: u64,
}

impl<V: OrderingValue, A: SingleConsensus<V>> fmt::Debug for AbcastNode<V, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbcastNode")
            .field("me", &self.me)
            .field("k", &self.k)
            .field("running", &self.running)
            .field("unordered", &self.unordered.len())
            .field("ordered_pending", &self.ordered.len())
            .field("delivered", &self.delivered_count)
            .finish()
    }
}

type Ctx<V> = Context<Envelope<V>, AbcastEvent>;

impl<V: OrderingValue, A: SingleConsensus<V>> AbcastNode<V, A> {
    /// Assembles a node from its modules. `algo_factory` builds the state
    /// machine of each consensus instance; `check_store` selects whether
    /// the `rcv` oracle really consults the received-message store.
    pub fn new(
        me: ProcessId,
        n: usize,
        bcast: Box<dyn Broadcast + Send>,
        fd: Box<dyn FailureDetector + Send>,
        algo_factory: impl FnMut(u64) -> A + Send + 'static,
        check_store: bool,
        cost: CostModel,
    ) -> Self {
        AbcastNode {
            me,
            n,
            bcast,
            fd,
            mgr: InstanceManager::new(algo_factory),
            store: ReceivedStore::new(),
            unordered: IdSet::new(),
            ordered: VecDeque::new(),
            ordered_ever: HashSet::new(),
            suspected: ProcessSet::new(),
            check_store,
            cost,
            k: 0,
            running: false,
            next_seq: 0,
            delivered_count: 0,
        }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages a-delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Identifiers ordered but not yet deliverable (payload still missing).
    pub fn ordered_pending(&self) -> usize {
        self.ordered.len()
    }

    /// Identifiers received but not yet ordered.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Serial number of the latest consensus instance.
    pub fn instance(&self) -> u64 {
        self.k
    }

    /// The received-message store (for tests and probes).
    pub fn store(&self) -> &ReceivedStore {
        &self.store
    }

    /// Consensus instance slots currently retained (live + GC cache).
    pub fn consensus_slots(&self) -> usize {
        self.mgr.slot_count()
    }

    fn send_bcast(&self, dest: BcastDest, msg: iabc_broadcast::BcastMsg, ctx: &mut Ctx<V>) {
        match dest {
            BcastDest::To(q) => ctx.send(q, Envelope::Bcast(msg)),
            BcastDest::Others => ctx.send_to_others(Envelope::Bcast(msg)),
        }
    }

    fn apply_bcast_out(&mut self, out: BcastOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            self.send_bcast(dest, msg, ctx);
        }
        for m in out.deliveries {
            self.rdeliver(m, ctx);
        }
    }

    fn apply_fd_out(&mut self, out: FdOut, ctx: &mut Ctx<V>) {
        for (dest, msg) in out.sends {
            match dest {
                FdDest::To(q) => ctx.send(q, Envelope::Fd(msg)),
                FdDest::Others => ctx.send_to_others(Envelope::Fd(msg)),
            }
        }
        for (delay, data) in out.timers {
            ctx.set_timer(delay, TimerId::new(TIMER_FD, data));
        }
        for change in out.changes {
            match change {
                FdEvent::Suspect(p) => {
                    self.suspected.insert(p);
                    // The broadcast layer may need to relay the suspect's
                    // messages (lazy reliable broadcast)...
                    let mut bout = BcastOut::new();
                    self.bcast.on_suspect(p, &mut bout);
                    self.apply_bcast_out(bout, ctx);
                    // ...and waiting consensus instances may need to nack.
                    let mut mout = MgrOut::new();
                    {
                        let oracle = NodeOracle {
                            store: &self.store,
                            check_store: self.check_store,
                            cost_per_id: self.cost.rcv_check_per_id,
                        };
                        self.mgr.on_suspect(p, &oracle, self.suspected, &mut mout);
                    }
                    self.apply_mgr_out(mout, ctx);
                }
                FdEvent::Trust(p) => {
                    self.suspected.remove(p);
                }
            }
        }
    }

    fn apply_mgr_out(&mut self, out: MgrOut<V>, ctx: &mut Ctx<V>) {
        ctx.work(out.work);
        for (k, dest, msg) in out.sends {
            let env = Envelope::Cons { k, msg };
            match dest {
                ConsDest::To(q) => ctx.send(q, env),
                ConsDest::All => ctx.send_to_all(env),
                ConsDest::Others => ctx.send_to_others(env),
            }
        }
        for (k, v) in out.decisions {
            self.handle_decision(k, v, ctx);
        }
    }

    /// Algorithm 1 lines 11–14: R-deliver.
    fn rdeliver(&mut self, m: AppMessage, ctx: &mut Ctx<V>) {
        let id = m.id();
        if !self.store.insert(m) {
            return; // duplicate copies are possible across layers
        }
        if !self.ordered_ever.contains(&id) {
            self.unordered.insert(id);
        }
        self.maybe_propose(ctx);
        // The payload for the head of `ordered_p` may just have arrived.
        self.try_deliver(ctx);
    }

    /// Algorithm 1 lines 15–18: run one consensus at a time while there are
    /// unordered identifiers.
    fn maybe_propose(&mut self, ctx: &mut Ctx<V>) {
        if self.running || self.unordered.is_empty() {
            return;
        }
        self.k += 1;
        self.running = true;
        let proposal = V::from_unordered(&self.unordered, &self.store);
        ctx.work(self.cost.propose_per_id * proposal.id_count() as u64);
        let mut mout = MgrOut::new();
        {
            let oracle = NodeOracle {
                store: &self.store,
                check_store: self.check_store,
                cost_per_id: self.cost.rcv_check_per_id,
            };
            self.mgr.propose(self.k, proposal, &oracle, self.suspected, &mut mout);
        }
        self.apply_mgr_out(mout, ctx);
    }

    /// Algorithm 1 lines 18–21: a decision arrived for instance `k`.
    fn handle_decision(&mut self, k: u64, v: V, ctx: &mut Ctx<V>) {
        debug_assert_eq!(k, self.k, "decisions arrive for the running instance");
        self.running = false;
        // Full-message values teach us payloads we may not have R-delivered
        // yet (and in the classic reduction, this is the only way a slow
        // process learns them in time).
        v.store_payloads(&mut self.store);
        let ids = v.ids();
        ctx.work(self.cost.order_per_id * ids.len() as u64);
        self.unordered.subtract(&ids);
        for id in ids.iter() {
            if self.ordered_ever.insert(id) {
                self.ordered.push_back(id);
            } else {
                debug_assert!(false, "id {id} decided twice");
            }
        }
        self.try_deliver(ctx);
        // Bound the manager's footprint: old decided instances only serve
        // stragglers, and the decide relay already covers those in practice.
        self.mgr.gc_decided_below(self.k, KEEP_DECIDED_INSTANCES);
        self.maybe_propose(ctx);
    }

    /// Algorithm 1 lines 22–25: deliver ordered messages whose payload is
    /// present, in order.
    fn try_deliver(&mut self, ctx: &mut Ctx<V>) {
        while let Some(&head) = self.ordered.front() {
            let Some(m) = self.store.get(head) else { break };
            let msg = m.clone();
            self.ordered.pop_front();
            self.delivered_count += 1;
            ctx.output(AbcastEvent::Delivered { msg });
        }
    }
}

impl<V: OrderingValue, A: SingleConsensus<V>> Node for AbcastNode<V, A> {
    type Msg = Envelope<V>;
    type Command = AbcastCommand;
    type Output = AbcastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<V>) {
        let mut fout = FdOut::new();
        self.fd.on_start(ctx.now(), &mut fout);
        self.apply_fd_out(fout, ctx);
    }

    fn on_command(&mut self, cmd: AbcastCommand, ctx: &mut Ctx<V>) {
        let AbcastCommand::Broadcast(payload) = cmd;
        let id = MsgId::new(self.me, self.next_seq);
        self.next_seq += 1;
        let m = AppMessage::new(id, payload, ctx.now());
        ctx.output(AbcastEvent::Broadcast { id });
        // Algorithm 1 line 8: R-broadcast(m).
        let mut bout = BcastOut::new();
        self.bcast.broadcast(m, &mut bout);
        self.apply_bcast_out(bout, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Envelope<V>, ctx: &mut Ctx<V>) {
        match msg {
            Envelope::Bcast(b) => {
                let mut bout = BcastOut::new();
                self.bcast.on_message(from, b, &mut bout);
                self.apply_bcast_out(bout, ctx);
            }
            Envelope::Cons { k, msg } => {
                let mut mout = MgrOut::new();
                {
                    let oracle = NodeOracle {
                        store: &self.store,
                        check_store: self.check_store,
                        cost_per_id: self.cost.rcv_check_per_id,
                    };
                    self.mgr.on_message(k, from, msg, &oracle, self.suspected, &mut mout);
                }
                self.apply_mgr_out(mout, ctx);
            }
            Envelope::Fd(f) => {
                let mut fout = FdOut::new();
                self.fd.on_message(ctx.now(), from, f, &mut fout);
                self.apply_fd_out(fout, ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Ctx<V>) {
        if timer.kind() == TIMER_FD {
            let mut fout = FdOut::new();
            self.fd.on_timer(ctx.now(), timer.data(), &mut fout);
            self.apply_fd_out(fout, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, Time};

    fn msg(p: u16, seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(p), seq), Payload::zeroed(8), Time::ZERO)
    }

    #[test]
    fn idset_ordering_value() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 5).id()]);
        let v = IdSet::from_unordered(&unordered, &store);
        assert_eq!(v, unordered);
        assert_eq!(v.id_count(), 2);
        assert!(!OrderingValue::held_in(&v, &store), "msg(1,5) is missing");
        store.insert(msg(1, 5));
        assert!(OrderingValue::held_in(&v, &store));
    }

    #[test]
    fn msgset_ordering_value_carries_payloads() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        store.insert(msg(1, 1));
        let unordered = IdSet::from_ids([msg(0, 0).id(), msg(1, 1).id()]);
        let v = MsgSet::from_unordered(&unordered, &store);
        assert_eq!(v.len(), 2);
        assert!(v.held_in(&ReceivedStore::new()), "MsgSet is self-contained");
        // A fresh store learns the payloads from the value.
        let mut fresh = ReceivedStore::new();
        v.store_payloads(&mut fresh);
        assert!(fresh.contains(msg(0, 0).id()));
        assert!(fresh.contains(msg(1, 1).id()));
    }

    #[test]
    fn node_oracle_modes() {
        let mut store = ReceivedStore::new();
        store.insert(msg(0, 0));
        let missing = IdSet::from_ids([msg(9, 9).id()]);

        let checking = NodeOracle {
            store: &store,
            check_store: true,
            cost_per_id: Duration::from_micros(10),
        };
        assert!(!RcvOracle::<IdSet>::rcv(&checking, &missing));
        assert_eq!(RcvOracle::<IdSet>::cost(&checking, &missing), Duration::from_micros(10));

        let faulty = NodeOracle { store: &store, check_store: false, cost_per_id: Duration::ZERO };
        assert!(RcvOracle::<IdSet>::rcv(&faulty, &missing), "the faulty oracle lies");
        assert_eq!(RcvOracle::<IdSet>::cost(&faulty, &missing), Duration::ZERO);
    }
}
