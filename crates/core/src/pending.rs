//! The pending set: accepted-but-undecided broadcasts, persisted so no
//! accepted broadcast is lost across a crash-partition-heal cycle.
//!
//! A broadcast is *accepted* the moment `on_command` assigns it an id and
//! hands it to the reliable broadcast layer. Between that instant and the
//! instant its instance lands in the [decided log](crate::decided), the
//! payload exists only in volatile state — the broadcaster's RB store and
//! whatever frames are in flight. If the broadcaster crashes (or its
//! outbound frames are shed during a partition) before anyone decides the
//! id, the payload can vanish while the application already saw
//! `Broadcast { id }`. The pending store closes that hole:
//!
//! * `on_command` records the message here before flooding it;
//! * the entry is cleared when its instance is appended to the decided log
//!   (the payload is then self-contained in the log entry);
//! * on restart — and again whenever a catch-up episode settles — the node
//!   re-floods every still-pending message. Receivers dedupe by id, so
//!   re-flooding is idempotent.
//!
//! Two implementations mirror the decided log: [`MemPendingStore`] for
//! simulations, [`DurablePendingStore`] as a sidecar file next to the
//! [`DurableDecidedLog`](crate::decided::DurableDecidedLog).
//!
//! On-disk record format (all integers little-endian):
//!
//! ```text
//! ┌────────────┬──────────┬───────────────────────────────┐
//! │ len: u32   │ tag: u8  │ AppMessage (tag 0) / MsgId (1)│
//! ├────────────┼──────────┴───────────────────────────────┤
//! │ 4 bytes    │ body: exactly `len` bytes                │
//! └────────────┴──────────────────────────────────────────┘
//! ```
//!
//! Tag 0 records an accepted message, tag 1 clears one by id. On open the
//! journal is replayed and rewritten compacted (live records only), so the
//! file stays proportional to the pending set, not to history. Corruption
//! handling matches the decided log: the longest valid record prefix wins,
//! everything past it is truncated.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use iabc_types::{AppMessage, Decode, Encode, MsgId};

use crate::decided::MAX_RECORD;

/// Storage for this process's accepted-but-undecided broadcasts.
///
/// Entries keep acceptance order (re-floods replay in the original
/// sequence); `record` of an id already present and `settle` of an absent
/// id are no-ops, so the callers need no own bookkeeping.
pub trait PendingStore: Send {
    /// Re-synchronizes with the backing store (no-op in memory). Called at
    /// node start, before recovery.
    fn reload(&mut self);

    /// Records an accepted broadcast.
    fn record(&mut self, m: AppMessage);

    /// Clears a broadcast whose instance reached the decided log.
    fn settle(&mut self, id: MsgId);

    /// The still-pending messages, oldest first.
    fn entries(&self) -> &[AppMessage];
}

/// An in-memory pending store (no durability).
#[derive(Debug, Default)]
pub struct MemPendingStore {
    entries: Vec<AppMessage>,
}

impl MemPendingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemPendingStore { entries: Vec::new() }
    }
}

impl PendingStore for MemPendingStore {
    fn reload(&mut self) {}

    fn record(&mut self, m: AppMessage) {
        if !self.entries.iter().any(|e| e.id() == m.id()) {
            self.entries.push(m);
        }
    }

    fn settle(&mut self, id: MsgId) {
        self.entries.retain(|e| e.id() != id);
    }

    fn entries(&self) -> &[AppMessage] {
        &self.entries
    }
}

/// Journal record tags (see the module docs for the framing).
const TAG_RECORD: u8 = 0;
const TAG_CLEAR: u8 = 1;

/// A durable pending store: an append-only journal of record/clear
/// entries, compacted on every open.
///
/// Like the decided log, write failures degrade durability, not
/// availability: the in-memory view keeps working and
/// [`DurablePendingStore::io_error`] reports the first failure.
pub struct DurablePendingStore {
    path: PathBuf,
    file: Option<File>,
    entries: Vec<AppMessage>,
    io_error: Option<String>,
}

impl std::fmt::Debug for DurablePendingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurablePendingStore")
            .field("path", &self.path)
            .field("pending", &self.entries.len())
            .field("io_error", &self.io_error)
            .finish()
    }
}

impl DurablePendingStore {
    /// Opens (creating if absent) the journal at `path`, replays it, and
    /// rewrites it compacted. Never panics on corrupt contents: the
    /// longest valid record prefix is kept, the rest truncated.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut store = DurablePendingStore {
            path: path.as_ref().to_path_buf(),
            file: None,
            entries: Vec::new(),
            io_error: None,
        };
        store.recover()?;
        Ok(store)
    }

    /// The first IO failure since open, if any.
    pub fn io_error(&self) -> Option<&str> {
        self.io_error.as_deref()
    }

    fn recover(&mut self) -> std::io::Result<()> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        self.entries.clear();
        let mut offset = 0usize;
        while let Some(header) = raw.get(offset..offset + 4) {
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            if len > MAX_RECORD {
                break; // corrupt length — end of valid prefix
            }
            let Some(body) = raw.get(offset + 4..offset + 4 + len) else {
                break; // torn tail
            };
            if !self.replay(body) {
                break; // undecodable body
            }
            offset += 4 + len;
        }

        // Compact: rewrite only the live records. This also drops any torn
        // tail found above.
        let mut compacted = Vec::new();
        for m in &self.entries {
            append_record(&mut compacted, TAG_RECORD, m);
        }
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&compacted)?;
        self.file = Some(file);
        Ok(())
    }

    /// Applies one journal body to the in-memory view; `false` on a
    /// malformed body.
    fn replay(&mut self, mut body: &[u8]) -> bool {
        let buf = &mut body;
        let Ok(tag) = u8::decode(buf) else { return false };
        match tag {
            TAG_RECORD => {
                let Ok(m) = AppMessage::decode(buf) else { return false };
                if buf.is_empty() {
                    if !self.entries.iter().any(|e| e.id() == m.id()) {
                        self.entries.push(m);
                    }
                    true
                } else {
                    false // trailing bytes: corruption
                }
            }
            TAG_CLEAR => {
                let Ok(id) = MsgId::decode(buf) else { return false };
                if buf.is_empty() {
                    self.entries.retain(|e| e.id() != id);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn write_record(&mut self, tag: u8, value: &impl Encode) {
        let mut rec = Vec::new();
        append_record(&mut rec, tag, value);
        match self.file.as_mut() {
            Some(file) => {
                if let Err(e) = file.write_all(&rec) {
                    self.note_io_error(&e.to_string());
                }
            }
            None => self.note_io_error("pending journal not open"),
        }
    }

    fn note_io_error(&mut self, msg: &str) {
        if self.io_error.is_none() {
            self.io_error = Some(msg.to_string());
        }
    }
}

/// Appends one framed `[len][tag][body]` record to `out`. Oversized bodies
/// are dropped silently — they could never be replayed past `MAX_RECORD`
/// anyway, and a payload that large cannot exist inside the frame cap.
fn append_record(out: &mut Vec<u8>, tag: u8, value: &impl Encode) {
    let mut body = vec![tag];
    value.encode(&mut body);
    if body.len() > MAX_RECORD {
        return;
    }
    let Ok(len) = u32::try_from(body.len()) else { return };
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
}

impl PendingStore for DurablePendingStore {
    fn reload(&mut self) {
        if let Err(e) = self.recover() {
            self.note_io_error(&e.to_string());
        }
    }

    fn record(&mut self, m: AppMessage) {
        if self.entries.iter().any(|e| e.id() == m.id()) {
            return;
        }
        self.write_record(TAG_RECORD, &m);
        self.entries.push(m);
    }

    fn settle(&mut self, id: MsgId) {
        if !self.entries.iter().any(|e| e.id() == id) {
            return;
        }
        self.write_record(TAG_CLEAR, &id);
        self.entries.retain(|e| e.id() != id);
    }

    fn entries(&self) -> &[AppMessage] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, ProcessId, Time};

    fn msg(seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(0), seq), Payload::zeroed(16), Time::ZERO)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("iabc-pending-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn mem_store_records_and_clears_in_order() {
        let mut s = MemPendingStore::new();
        s.record(msg(1));
        s.record(msg(2));
        s.record(msg(1)); // duplicate: no-op
        assert_eq!(s.entries().len(), 2);
        s.settle(msg(1).id());
        s.settle(MsgId::new(ProcessId::new(9), 9)); // absent: no-op
        assert_eq!(s.entries().len(), 1);
        assert_eq!(s.entries()[0].id(), msg(2).id());
    }

    #[test]
    fn durable_store_survives_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = DurablePendingStore::open(&path).unwrap();
            s.record(msg(1));
            s.record(msg(2));
            s.record(msg(3));
            s.settle(msg(2).id());
            assert!(s.io_error().is_none());
        }
        let s = DurablePendingStore::open(&path).unwrap();
        let ids: Vec<u64> = s.entries().iter().map(|m| m.id().seq()).collect();
        assert_eq!(ids, vec![1, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_compacts_the_journal() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = DurablePendingStore::open(&path).unwrap();
            for seq in 0..50 {
                s.record(msg(seq));
            }
            for seq in 0..49 {
                s.settle(msg(seq).id());
            }
        }
        let journal_len = std::fs::metadata(&path).unwrap().len();
        let s = DurablePendingStore::open(&path).unwrap();
        assert_eq!(s.entries().len(), 1);
        let compacted_len = std::fs::metadata(&path).unwrap().len();
        assert!(
            compacted_len < journal_len / 10,
            "compaction must shrink the journal: {journal_len} -> {compacted_len}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = DurablePendingStore::open(&path).unwrap();
            s.record(msg(1));
            s.record(msg(2));
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let s = DurablePendingStore::open(&path).unwrap();
        let ids: Vec<u64> = s.entries().iter().map(|m| m.id().seq()).collect();
        assert_eq!(ids, vec![1], "torn record 2 must be dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_recovers_empty() {
        let path = tmp("garbage");
        std::fs::write(&path, [0xABu8; 23]).unwrap();
        let s = DurablePendingStore::open(&path).unwrap();
        assert!(s.entries().is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
