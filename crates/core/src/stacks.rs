//! Constructors for the paper's four atomic broadcast stacks
//! (× two consensus families × two reliable-broadcast strategies).

use iabc_broadcast::{Broadcast, EagerRb, LazyRb, MajorityAckUrb};
use iabc_consensus::{CtConsensus, CtIndirect, MrConsensus, MrIndirect};
use iabc_fd::{FailureDetector, HeartbeatFd, NeverSuspect};
use iabc_types::{Duration, IdSet, ProcessId, ProcessSet};

use crate::msgset::MsgSet;
use crate::node::{AbcastNode, PipelineConfig};
use crate::store::CostModel;

/// Which ◇S consensus family a stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusFamily {
    /// Chandra–Toueg (centralized, coordinator-driven).
    Ct,
    /// Mostéfaoui–Raynal (decentralized, quorum-driven).
    Mr,
}

/// Which reliable-broadcast dissemination strategy a stack uses
/// (ignored by the URB variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbKind {
    /// Eager flooding: one step, O(n²) messages (Figures 5/7a).
    EagerN2,
    /// Failure-detector triggered relays: O(n) messages in good runs
    /// (Figures 6/7b).
    LazyN,
}

/// The four stack variants compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// RB + indirect consensus on identifiers (the contribution).
    Indirect,
    /// RB + consensus on full message sets (classic reduction \[2\]).
    DirectMessages,
    /// RB + unmodified consensus on identifiers — **unsafe** (§2.2), kept
    /// as the baseline the paper measures against in Figures 3–4.
    FaultyIds,
    /// URB + unmodified consensus on identifiers (the other correct fix).
    UrbIds,
}

/// Which failure detector a stack runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdKind {
    /// Never suspect (fault-free performance runs).
    Never,
    /// Heartbeat ◇S with the given period and suspicion timeout.
    Heartbeat {
        /// Heartbeat period.
        interval: Duration,
        /// Silence threshold after which a peer is suspected.
        timeout: Duration,
    },
}

/// Everything needed to instantiate one process of a stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackParams {
    /// System size.
    pub n: usize,
    /// Reliable-broadcast strategy (for the variants that use RB).
    pub rb: RbKind,
    /// Failure detector.
    pub fd: FdKind,
    /// CPU cost model for the bookkeeping.
    pub cost: CostModel,
    /// Pipeline configuration: window bounds (static `W` when
    /// `w_min == w_max`, the default `1` everywhere — exactly what the
    /// paper-figure bins measure), the adaptive controller's thresholds,
    /// and the server-side proposal cap.
    pub pipeline: PipelineConfig,
    /// Whether the host transport should run the two-class priority lane
    /// (ordering frames served ahead of bulk payload traffic). `false` —
    /// the default everywhere — keeps the single-class FIFO model the
    /// paper-figure bins measure, bit-for-bit.
    ///
    /// ⚠ The lane lives in the *executor*, not the node: this field is the
    /// stack's record of the intended host model, and whoever builds the
    /// world must thread it through (the simulator:
    /// `SimBuilder::new(n, net).priority_lane(params.priority_lane)`;
    /// `iabc_workload::run_variant` does this for every experiment).
    /// Building a world without threading it silently measures the FIFO
    /// model.
    pub priority_lane: bool,
    /// Processes that are learners (read replicas), known to the *whole*
    /// membership. Learners are exempt from heartbeat suspicion, skipped
    /// by consensus coordinator rotation, and left out of every quorum —
    /// the actives reach consensus among themselves at full speed while
    /// the replicas follow via catch-up. Empty by default. A process that
    /// finds itself in this set is built in learner mode automatically
    /// (as if [`StackParams::with_learner`] were set for it).
    pub learners: ProcessSet,
}

impl StackParams {
    /// Parameters for a fault-free logic run: eager RB, no failure
    /// detector, zero bookkeeping costs, window 1.
    pub fn fault_free(n: usize) -> Self {
        StackParams {
            n,
            rb: RbKind::EagerN2,
            fd: FdKind::Never,
            cost: CostModel::zero(),
            pipeline: PipelineConfig::fixed(1),
            priority_lane: false,
            learners: ProcessSet::new(),
        }
    }

    /// Same but with a heartbeat ◇S detector — for runs with crashes.
    pub fn with_heartbeat(n: usize, interval: Duration, timeout: Duration) -> Self {
        StackParams {
            n,
            rb: RbKind::EagerN2,
            fd: FdKind::Heartbeat { interval, timeout },
            cost: CostModel::zero(),
            pipeline: PipelineConfig::fixed(1),
            priority_lane: false,
            learners: ProcessSet::new(),
        }
    }

    /// Sets a *static* pipeline window `W` (clamped to at least 1) — the
    /// controller is inert and the node keeps exactly this many instances
    /// in flight when work is available.
    pub fn with_window(mut self, window: usize) -> Self {
        let w = window.max(1);
        self.pipeline.w_min = w;
        self.pipeline.w_max = w;
        self
    }

    /// Arms the AIMD window controller with bounds `[min, max]` (clamped
    /// to `1 ≤ min ≤ max`): the window starts at `min`, grows additively
    /// while decisions land under the latency target, and halves on
    /// congestion.
    pub fn with_adaptive_window(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        self.pipeline.w_min = min;
        self.pipeline.w_max = max.max(min);
        self
    }

    /// Sets the decision-latency target of the adaptive controller.
    pub fn with_latency_target(mut self, target: Duration) -> Self {
        self.pipeline.latency_target = target;
        self
    }

    /// Sets the `unordered`-backlog depth past which the adaptive
    /// controller treats the pipeline as congested.
    pub fn with_backlog_limit(mut self, limit: usize) -> Self {
        self.pipeline.backlog_limit = limit;
        self
    }

    /// Caps proposals at `cap` identifiers (clamped to at least 1); the
    /// remainder spills to the next consensus instance.
    pub fn with_proposal_cap(mut self, cap: usize) -> Self {
        self.pipeline.max_proposal_ids = cap.max(1);
        self
    }

    /// Runs the transport's two-class priority lane: ordering frames
    /// (consensus, failure detector) are served ahead of queued bulk
    /// payload traffic on every CPU and NIC. Off by default — the
    /// paper-figure bins keep the single-class FIFO model bit-for-bit.
    ///
    /// The executor must thread the flag into world construction (see
    /// [`StackParams::priority_lane`]):
    ///
    /// ```
    /// use iabc_core::stacks::{self, StackParams};
    /// use iabc_sim::{NetworkParams, SimBuilder};
    ///
    /// let params = StackParams::fault_free(3).with_priority_lane(true);
    /// let world = SimBuilder::new(params.n, NetworkParams::setup1())
    ///     .priority_lane(params.priority_lane) // <- without this, FIFO
    ///     .build(|p| stacks::indirect_ct(p, &params));
    /// assert!(world.priority_lane());
    /// ```
    pub fn with_priority_lane(mut self, on: bool) -> Self {
        self.priority_lane = on;
        self
    }

    /// Gates proposals on identifier freshness: ids younger than ~one
    /// measured flood delay (the node's EWMA of RB delivery latency) are
    /// excluded from proposals until they mature, so large proposal caps
    /// stop reaching into ids whose Data frames the proposal would
    /// overtake — the nack churn that forced the priority lane to run a
    /// tight cap. Off by default; no behaviour change for any paper bin.
    pub fn with_proposal_freshness(mut self, on: bool) -> Self {
        self.pipeline.proposal_freshness = on;
        self
    }

    /// Switches the adaptive controller's congestion signal from the
    /// absolute `latency_target` to an EWMA-relative one: the window
    /// halves when decision latency worsens past
    /// [`crate::node::EWMA_WORSEN_FACTOR`]× the controller's own moving
    /// average, whatever the deployment's baseline latency is.
    pub fn with_ewma_signal(mut self) -> Self {
        self.pipeline.ewma_signal = true;
        self
    }

    /// Turns on the decided log and the catch-up protocol: the node keeps
    /// an (in-memory by default — see `AbcastNode::set_decided_log` for
    /// the durable one) append-only log of delivered instances, piggybacks
    /// its decided frontier on every outbound frame, and range-fetches any
    /// prefix a peer advertises past its own. Off by default; the
    /// paper-figure bins stay byte-identical.
    pub fn with_catch_up(mut self, on: bool) -> Self {
        self.pipeline = self.pipeline.with_catch_up(on);
        self
    }

    /// Learner mode (read replica): the node never broadcasts, proposes,
    /// or answers consensus — it consumes peer frontiers and catch-up
    /// batches only. Implies [`StackParams::with_catch_up`].
    ///
    /// This flag marks the *local* node only. Prefer
    /// [`StackParams::with_learner_set`], which tells the whole membership
    /// who the learners are: without it, heartbeat-FD peers suspect the
    /// silent replica and consensus wastes rounds rotating coordination
    /// onto it before the suspicion kicks in.
    pub fn with_learner(mut self, on: bool) -> Self {
        self.pipeline = self.pipeline.with_learner(on);
        self
    }

    /// Declares `learners` as read replicas to the *whole* membership
    /// (same `StackParams` for every process): heartbeat detectors never
    /// suspect them, consensus coordinator rotation skips them, and
    /// quorums are computed over the actives only — so `a` actives
    /// tolerate `f < a/2` (CT) crashes regardless of how many replicas
    /// tag along. A process in the set builds itself in learner mode
    /// (implies catch-up for it, exactly as [`StackParams::with_learner`]
    /// would).
    pub fn with_learner_set(mut self, learners: ProcessSet) -> Self {
        self.learners = learners;
        self
    }
}

/// The pipeline a given process runs: nodes named in the learner set get
/// learner mode switched on automatically.
fn pipeline_for(me: ProcessId, p: &StackParams) -> PipelineConfig {
    if p.learners.contains(me) {
        p.pipeline.with_learner(true)
    } else {
        p.pipeline
    }
}

fn make_rb(kind: RbKind) -> Box<dyn Broadcast + Send> {
    match kind {
        RbKind::EagerN2 => Box::new(EagerRb::new()),
        RbKind::LazyN => Box::new(LazyRb::new()),
    }
}

fn make_fd(p: &StackParams, me: ProcessId) -> Box<dyn FailureDetector + Send> {
    match p.fd {
        FdKind::Never => Box::new(NeverSuspect::new()),
        FdKind::Heartbeat { interval, timeout } => {
            Box::new(HeartbeatFd::new(me, p.n, interval, timeout).with_excluded(p.learners))
        }
    }
}

/// RB + **indirect CT** consensus (Algorithm 1 + Algorithm 2) — the
/// paper's primary stack.
pub fn indirect_ct(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, CtIndirect<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| CtIndirect::with_membership(me, n, k, learners),
        true,
        p.cost,
        pipeline_for(me, p),
    )
}

/// RB + **indirect MR** consensus (Algorithm 1 + Algorithm 3). Remember
/// the reduced resilience: safe only while `f < n/3`.
pub fn indirect_mr(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, MrIndirect<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| MrIndirect::with_membership(me, n, k, learners),
        true,
        p.cost,
        pipeline_for(me, p),
    )
}

/// RB + CT consensus on **full message sets** — the classic reduction of
/// \[2\]: correct, but consensus traffic carries every payload (Figure 1).
pub fn direct_ct_messages(me: ProcessId, p: &StackParams) -> AbcastNode<MsgSet, CtConsensus<MsgSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| CtConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

/// RB + MR consensus on **full message sets**.
pub fn direct_mr_messages(me: ProcessId, p: &StackParams) -> AbcastNode<MsgSet, MrConsensus<MsgSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| MrConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

/// RB + **unmodified** CT consensus on bare identifiers.
///
/// ⚠ This stack is *known-unsafe*: it is the §2.2 counterexample — a
/// single crash can strand an ordered identifier whose payload no correct
/// process holds, blocking delivery forever (Validity violation). It
/// exists to reproduce the paper's Figures 3–4 baseline and its
/// counterexample tests; do not use it for anything else.
pub fn faulty_ct_ids(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, CtConsensus<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| CtConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

/// RB + **unmodified** MR consensus on bare identifiers.
///
/// ⚠ Known-unsafe, like [`faulty_ct_ids`]; additionally this is the
/// algorithm §3.3.2 proves cannot be repaired by local checks alone.
pub fn faulty_mr_ids(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, MrConsensus<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        make_rb(p.rb),
        make_fd(p, me),
        move |k| MrConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

/// **URB** + unmodified CT consensus on identifiers — the other correct
/// solution: uniform reliable broadcast guarantees every ordered payload
/// is everywhere, at the price of O(n²) payload messages and a two-step
/// broadcaster delivery (Figures 5–7).
pub fn urb_ct_ids(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, CtConsensus<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        Box::new(MajorityAckUrb::new(me, n)),
        make_fd(p, me),
        move |k| CtConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

/// **URB** + unmodified MR consensus on identifiers.
pub fn urb_mr_ids(me: ProcessId, p: &StackParams) -> AbcastNode<IdSet, MrConsensus<IdSet>> {
    let n = p.n;
    let learners = p.learners;
    AbcastNode::new(
        me,
        n,
        Box::new(MajorityAckUrb::new(me, n)),
        make_fd(p, me),
        move |k| MrConsensus::with_membership(me, n, k, learners),
        false,
        p.cost,
        pipeline_for(me, p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build() {
        let p = StackParams::fault_free(3);
        let me = ProcessId::new(0);
        let _ = indirect_ct(me, &p);
        let _ = indirect_mr(me, &p);
        let _ = direct_ct_messages(me, &p);
        let _ = direct_mr_messages(me, &p);
        let _ = faulty_ct_ids(me, &p);
        let _ = faulty_mr_ids(me, &p);
        let _ = urb_ct_ids(me, &p);
        let _ = urb_mr_ids(me, &p);
    }

    #[test]
    fn window_defaults_to_one_and_is_clamped() {
        let p = StackParams::fault_free(3);
        assert_eq!((p.pipeline.w_min, p.pipeline.w_max), (1, 1));
        assert!(!p.pipeline.is_adaptive());
        assert_eq!(p.with_window(8).pipeline.w_max, 8);
        assert_eq!(p.with_window(0).pipeline.w_min, 1, "window 0 makes no progress; clamp");
        let node = indirect_ct(ProcessId::new(0), &p.with_window(4));
        assert_eq!(node.window(), 4);
        assert!(!node.is_adaptive_window());
    }

    #[test]
    fn adaptive_params_arm_the_controller() {
        let p = StackParams::fault_free(3)
            .with_adaptive_window(2, 16)
            .with_latency_target(Duration::from_millis(4))
            .with_backlog_limit(256)
            .with_proposal_cap(32);
        assert!(p.pipeline.is_adaptive());
        assert_eq!(p.pipeline.latency_target, Duration::from_millis(4));
        assert_eq!(p.pipeline.backlog_limit, 256);
        assert_eq!(p.pipeline.max_proposal_ids, 32);
        let node = indirect_ct(ProcessId::new(0), &p);
        assert!(node.is_adaptive_window());
        assert_eq!(node.window_bounds(), (2, 16));
        assert_eq!(node.window(), 2, "adaptive windows start at w_min");
        // Degenerate bounds clamp: max < min collapses to static-at-min,
        // and a zero cap still lets one id through per instance.
        let q = StackParams::fault_free(3).with_adaptive_window(0, 0).with_proposal_cap(0);
        assert_eq!((q.pipeline.w_min, q.pipeline.w_max), (1, 1));
        assert_eq!(q.pipeline.max_proposal_ids, 1);
    }

    #[test]
    fn priority_lane_and_ewma_toggles() {
        let p = StackParams::fault_free(3);
        assert!(!p.priority_lane, "paper bins default to the FIFO model");
        assert!(!p.pipeline.ewma_signal);
        let q = p.with_priority_lane(true).with_ewma_signal();
        assert!(q.priority_lane);
        assert!(q.pipeline.ewma_signal);
        // Orthogonal to the rest of the pipeline config.
        assert_eq!((q.pipeline.w_min, q.pipeline.w_max), (1, 1));
        let _ = indirect_ct(ProcessId::new(0), &q);
    }

    #[test]
    fn catch_up_and_learner_toggles() {
        let p = StackParams::fault_free(3);
        assert!(!p.pipeline.catch_up, "paper bins default to no catch-up");
        assert!(!p.pipeline.learner);
        let q = p.with_catch_up(true);
        assert!(q.pipeline.catch_up);
        assert!(!q.pipeline.learner);
        let r = p.with_learner(true);
        assert!(r.pipeline.learner);
        assert!(r.pipeline.catch_up, "learner implies catch-up");
        let node = indirect_ct(ProcessId::new(0), &r);
        assert!(node.is_learner());
        assert_eq!(node.decided_frontier(), 0);
    }

    #[test]
    fn heartbeat_params_build() {
        let p = StackParams::with_heartbeat(
            3,
            Duration::from_millis(5),
            Duration::from_millis(50),
        );
        let _ = indirect_ct(ProcessId::new(1), &p);
        assert!(matches!(p.fd, FdKind::Heartbeat { .. }));
    }
}
