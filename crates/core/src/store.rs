//! The received-message store (`received_p` of Algorithm 1) and the cost
//! model for the bookkeeping the paper charges to indirect consensus.

// The store is lookup-only (insert/contains/get/len) and is never iterated,
// so hash order cannot leak into delivery order; O(1) lookup matters on the
// rcv() hot path.
// lint:allow(D2): lookup-only store, never iterated
use std::collections::HashMap;

use iabc_types::{AppMessage, Duration, MsgId};

/// Per-operation CPU costs of the atomic broadcast bookkeeping, charged to
/// the simulated CPU via `Action::Work`.
///
/// The dominant term is `rcv_check_per_id`: the paper attributes the
/// latency gap between indirect consensus and the faulty direct
/// implementation to the `rcv()` calls, whose cost grows with the batch
/// size and hence with throughput (§4.3, Figures 3–4). The presets are
/// calibrated alongside [`NetworkParams::setup1`/`setup2`] to land the
/// overhead in the paper's range (≈1.3 ms at n=3, ≈9.5 ms at n=5 under
/// 800 msg/s).
///
/// [`NetworkParams::setup1`/`setup2`]: ../../iabc_sim/struct.NetworkParams.html
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// CPU time per identifier for one `rcv(v)` evaluation.
    pub rcv_check_per_id: Duration,
    /// CPU time per identifier for sequencing a decision (Algorithm 1
    /// lines 19–21: set subtraction, deterministic sort, append).
    pub order_per_id: Duration,
    /// CPU time per identifier for assembling a proposal (line 17).
    pub propose_per_id: Duration,
}

impl CostModel {
    /// Cost model matching the paper's Setup 1 (Pentium III, JDK 1.4:
    /// hash lookups through a layered Java stack are expensive).
    pub fn setup1() -> Self {
        CostModel {
            rcv_check_per_id: Duration::from_micros(120),
            order_per_id: Duration::from_micros(15),
            propose_per_id: Duration::from_micros(10),
        }
    }

    /// Cost model matching the paper's Setup 2 (Pentium 4, JDK 1.5).
    pub fn setup2() -> Self {
        CostModel {
            rcv_check_per_id: Duration::from_micros(10),
            order_per_id: Duration::from_micros(2),
            propose_per_id: Duration::from_micros(1),
        }
    }

    /// Zero costs — for logic tests and for the "what if `rcv` were free?"
    /// ablation bench.
    pub fn zero() -> Self {
        CostModel {
            rcv_check_per_id: Duration::ZERO,
            order_per_id: Duration::ZERO,
            propose_per_id: Duration::ZERO,
        }
    }
}

/// `received_p`: every application message R-delivered (or learned through
/// a full-message consensus decision) so far.
///
/// This is the structure the paper's `rcv` function queries: `rcv(v)` is
/// true iff every identifier in `v` is present here.
#[derive(Debug, Default)]
pub struct ReceivedStore {
    // lint:allow(D2): lookup-only — no method iterates this map.
    msgs: HashMap<MsgId, AppMessage>,
}

impl ReceivedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReceivedStore::default()
    }

    /// Inserts a message; returns `true` if it was new.
    pub fn insert(&mut self, m: AppMessage) -> bool {
        use std::collections::hash_map::Entry;
        match self.msgs.entry(m.id()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(m);
                true
            }
        }
    }

    /// Whether the message with identifier `id` is held.
    pub fn contains(&self, id: MsgId) -> bool {
        self.msgs.contains_key(&id)
    }

    /// The message with identifier `id`, if held.
    pub fn get(&self, id: MsgId) -> Option<&AppMessage> {
        self.msgs.get(&id)
    }

    /// Number of messages held.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::{Payload, ProcessId, Time};

    fn msg(seq: u64) -> AppMessage {
        AppMessage::new(MsgId::new(ProcessId::new(0), seq), Payload::zeroed(1), Time::ZERO)
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = ReceivedStore::new();
        assert!(s.insert(msg(0)));
        assert!(!s.insert(msg(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup() {
        let mut s = ReceivedStore::new();
        s.insert(msg(3));
        assert!(s.contains(MsgId::new(ProcessId::new(0), 3)));
        assert!(!s.contains(MsgId::new(ProcessId::new(0), 4)));
        assert_eq!(s.get(MsgId::new(ProcessId::new(0), 3)).unwrap().id().seq(), 3);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let s1 = CostModel::setup1();
        let s2 = CostModel::setup2();
        assert!(s1.rcv_check_per_id > s2.rcv_check_per_id);
        assert_eq!(CostModel::zero().rcv_check_per_id, Duration::ZERO);
    }
}
