//! Property tests for the durable decided-log file format.
//!
//! The recovery contract: whatever prefix of the file survived a crash,
//! `open` never panics, recovers the longest valid record prefix, and
//! truncates the rest — so an append-after-recovery always produces a
//! well-formed log again.

use std::sync::atomic::{AtomicUsize, Ordering};

use iabc_core::{DecidedEntry, DecidedLog, DurableDecidedLog};
use iabc_types::{AppMessage, Encode, IdSet, MsgId, Payload, ProcessId, Time};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch path per generated case (cases run sequentially, but
/// several property functions share the process).
fn scratch() -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("iabc-logprop-{}-{case}", std::process::id()))
}

/// Contiguous entries 1..=n with arbitrary values and payloads.
fn arb_entries() -> impl Strategy<Value = Vec<DecidedEntry<IdSet>>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u16..5, 0u64..200), 0..6),
            proptest::collection::vec(0usize..64, 0..4),
        ),
        0..8,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (ids, sizes))| {
                let k = i as u64 + 1;
                DecidedEntry {
                    k,
                    value: IdSet::from_ids(
                        ids.into_iter().map(|(p, s)| MsgId::new(ProcessId::new(p), s)),
                    ),
                    payloads: sizes
                        .into_iter()
                        .enumerate()
                        .map(|(j, size)| {
                            AppMessage::new(
                                MsgId::new(ProcessId::new(0), k * 100 + j as u64),
                                Payload::zeroed(size),
                                Time::from_nanos(k * 31 + j as u64),
                            )
                        })
                        .collect(),
                }
            })
            .collect()
    })
}

fn write_log(path: &std::path::Path, entries: &[DecidedEntry<IdSet>]) {
    let _ = std::fs::remove_file(path);
    let mut log = DurableDecidedLog::open(path).unwrap();
    for e in entries {
        assert!(log.append(e.clone()), "contiguous append must succeed");
    }
    assert!(log.io_error().is_none(), "append failed: {:?}", log.io_error());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: whatever was appended comes back identically from a
    /// fresh open of the same file.
    #[test]
    fn reopen_returns_exactly_what_was_appended(entries in arb_entries()) {
        let path = scratch();
        write_log(&path, &entries);
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        prop_assert_eq!(log.frontier(), entries.len() as u64);
        for e in &entries {
            prop_assert_eq!(log.get(e.k), Some(e));
        }
        prop_assert_eq!(log.range(1, u64::MAX), &entries[..]);
        let _ = std::fs::remove_file(&path);
    }

    /// Crash truncation: cutting the file at ANY byte length never panics,
    /// and recovery yields exactly the records that fit whole below the
    /// cut — the longest valid prefix.
    #[test]
    fn any_truncation_recovers_the_longest_valid_prefix(
        entries in arb_entries(),
        cut_sel in proptest::prelude::any::<u64>(),
    ) {
        let path = scratch();
        write_log(&path, &entries);

        // Record i ends at boundary[i + 1] (4-byte length prefix + body).
        let mut boundaries = vec![0u64];
        for e in &entries {
            let body = e.to_bytes().len() as u64;
            boundaries.push(boundaries.last().unwrap() + 4 + body);
        }
        let file_len = std::fs::metadata(&path).unwrap().len();
        prop_assert_eq!(file_len, *boundaries.last().unwrap());

        let cut = cut_sel % (file_len + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let expected = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count() as u64;
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        prop_assert_eq!(log.frontier(), expected);
        for e in &entries[..expected as usize] {
            prop_assert_eq!(log.get(e.k), Some(e));
        }
        // The torn bytes are gone from disk: the file ends exactly at the
        // last intact record, so future appends extend a well-formed log.
        prop_assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            boundaries[expected as usize]
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Arbitrary tail corruption (not just truncation) never panics and
    /// always recovers a log that is contiguous from instance 1.
    #[test]
    fn corrupted_tail_never_panics_and_stays_contiguous(
        entries in arb_entries(),
        garbage in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
    ) {
        let path = scratch();
        write_log(&path, &entries);
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&garbage).unwrap();
        }
        let log = DurableDecidedLog::<IdSet>::open(&path).unwrap();
        // Intact records before the garbage all survive...
        prop_assert!(log.frontier() >= entries.len() as u64);
        // ...and whatever was recovered is contiguous from 1.
        for k in 1..=log.frontier() {
            prop_assert_eq!(log.get(k).map(|e| e.k), Some(k));
        }
        let _ = std::fs::remove_file(&path);
    }
}
