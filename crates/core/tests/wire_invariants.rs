//! Wire-size invariants across the complete envelope space.
//!
//! The simulator charges the network model with `wire_size()`, while the
//! TCP runtime ships `encode()` bytes — the two must agree *exactly* for
//! every message the stacks can produce, or the simulation measures a
//! different protocol than the one that runs on sockets.

use iabc_broadcast::BcastMsg;
use iabc_consensus::ConsMsg;
use iabc_core::{Envelope, MsgSet};
use iabc_fd::FdMsg;
use iabc_types::wire::{check_size_invariant, roundtrip};
use iabc_types::{AppMessage, IdSet, MsgId, Payload, ProcessId, Time};
use proptest::prelude::*;

fn msg(sender: u16, seq: u64, size: usize) -> AppMessage {
    AppMessage::new(
        MsgId::new(ProcessId::new(sender), seq),
        Payload::zeroed(size),
        Time::from_nanos(seq * 17),
    )
}

fn arb_idset() -> impl Strategy<Value = IdSet> {
    proptest::collection::vec((0u16..8, 0u64..100), 0..20)
        .prop_map(|v| IdSet::from_ids(v.into_iter().map(|(p, s)| MsgId::new(ProcessId::new(p), s))))
}

fn arb_msgset() -> impl Strategy<Value = MsgSet> {
    proptest::collection::vec((0u16..4, 0u64..50, 0usize..512), 0..8)
        .prop_map(|v| MsgSet::from_msgs(v.into_iter().map(|(p, s, sz)| msg(p, s, sz))))
}

fn arb_cons_ids() -> impl Strategy<Value = ConsMsg<IdSet>> {
    (arb_idset(), 1u64..50, 0u64..50, 0u8..7).prop_map(|(v, round, ts, kind)| match kind {
        0 => ConsMsg::CtEstimate { round, estimate: v, ts },
        1 => ConsMsg::CtProposal { round, estimate: v },
        2 => ConsMsg::CtAck { round },
        3 => ConsMsg::CtNack { round },
        4 => ConsMsg::MrPhase1 { round, estimate: v },
        5 => ConsMsg::MrPhase2 { round, est: if ts % 2 == 0 { Some(v) } else { None } },
        _ => ConsMsg::Decide { value: v },
    })
}

fn arb_bcast() -> impl Strategy<Value = BcastMsg> {
    (0u16..4, 0u64..50, 0usize..1024, 0u8..4).prop_map(|(p, s, sz, kind)| {
        let m = msg(p, s, sz);
        match kind {
            0 => BcastMsg::Data(m),
            1 => BcastMsg::Relay(m),
            2 => BcastMsg::UrbData(m),
            _ => BcastMsg::UrbEcho(m),
        }
    })
}

proptest! {
    /// Every id-based envelope encodes to exactly `wire_size()` bytes and
    /// round-trips losslessly.
    #[test]
    fn id_envelopes_roundtrip_with_exact_sizes(
        kind in 0u8..3,
        cons in arb_cons_ids(),
        bcast in arb_bcast(),
        k in 0u64..1000,
        hb in 0u64..1000,
    ) {
        let env: Envelope<IdSet> = match kind {
            0 => Envelope::Bcast(bcast),
            1 => Envelope::Cons { k, msg: cons },
            _ => Envelope::Fd(FdMsg::Heartbeat(hb)),
        };
        check_size_invariant(&env);
        prop_assert_eq!(roundtrip(&env).unwrap(), env);
    }

    /// Same for the full-message envelopes of the classic reduction.
    #[test]
    fn msgset_envelopes_roundtrip_with_exact_sizes(
        set in arb_msgset(),
        round in 1u64..50,
        k in 0u64..1000,
    ) {
        let env: Envelope<MsgSet> =
            Envelope::Cons { k, msg: ConsMsg::CtProposal { round, estimate: set } };
        check_size_invariant(&env);
        prop_assert_eq!(roundtrip(&env).unwrap(), env);
    }

    /// The paper's core size asymmetry, as an invariant: an id-based
    /// consensus frame never grows with payload size; a full-message frame
    /// always carries at least the payload bytes.
    #[test]
    fn consensus_frame_size_asymmetry(size in 0usize..10_000) {
        let m = msg(0, 1, size);
        let id_frame: Envelope<IdSet> = Envelope::Cons {
            k: 1,
            msg: ConsMsg::CtProposal { round: 1, estimate: IdSet::from_ids([m.id()]) },
        };
        let msg_frame: Envelope<MsgSet> = Envelope::Cons {
            k: 1,
            msg: ConsMsg::CtProposal { round: 1, estimate: MsgSet::from_msgs([m]) },
        };
        prop_assert!(iabc_types::WireSize::wire_size(&id_frame) < 64);
        prop_assert!(iabc_types::WireSize::wire_size(&msg_frame) >= size);
    }
}
