//! Heartbeat-based ◇S failure detector.

use iabc_types::{Duration, ProcessId, ProcessSet, Time};

use crate::{FailureDetector, FdDest, FdEvent, FdMsg, FdOut};

/// Timer payload: time to send the next heartbeat round.
const TICK_SEND: u64 = 0;
/// Timer payload: time to re-examine liveness of the others.
const TICK_CHECK: u64 = 1;

/// The classic heartbeat failure detector.
///
/// Every `send_interval` the process multicasts a heartbeat; a peer that has
/// not been heard from for `timeout` becomes suspected, and is trusted again
/// as soon as a fresh heartbeat arrives. With `timeout` above the actual
/// (eventual) message delay this implements ◇S: crashed processes are
/// eventually suspected forever (strong completeness), and eventually some
/// correct process is never falsely suspected (eventual weak accuracy).
///
/// # Example
///
/// ```
/// use iabc_fd::{FailureDetector, FdOut, HeartbeatFd};
/// use iabc_types::{Duration, ProcessId, Time};
///
/// let mut fd = HeartbeatFd::new(
///     ProcessId::new(0),
///     3,
///     Duration::from_millis(10),
///     Duration::from_millis(50),
/// );
/// let mut out = FdOut::new();
/// fd.on_start(Time::ZERO, &mut out);
/// assert!(!out.sends.is_empty()); // first heartbeat goes out immediately
/// ```
#[derive(Debug)]
pub struct HeartbeatFd {
    me: ProcessId,
    n: usize,
    send_interval: Duration,
    timeout: Duration,
    /// Last time a heartbeat (or any sign of life) was seen, per process.
    last_seen: Vec<Time>,
    suspected: ProcessSet,
    next_seq: u64,
    /// Processes exempt from suspicion (learners / read replicas): they
    /// send no heartbeats by design, so silence from them means nothing.
    excluded: ProcessSet,
}

impl HeartbeatFd {
    /// Creates a detector for process `me` of `n`, multicasting every
    /// `send_interval` and suspecting after `timeout` of silence.
    ///
    /// # Panics
    ///
    /// Panics if `timeout <= send_interval` (such a detector would suspect
    /// everyone between consecutive heartbeats).
    pub fn new(me: ProcessId, n: usize, send_interval: Duration, timeout: Duration) -> Self {
        assert!(
            timeout > send_interval,
            "timeout ({timeout}) must exceed send interval ({send_interval})"
        );
        HeartbeatFd {
            me,
            n,
            send_interval,
            timeout,
            last_seen: vec![Time::ZERO; n],
            suspected: ProcessSet::new(),
            next_seq: 0,
            excluded: ProcessSet::new(),
        }
    }

    /// Exempts `excluded` processes from suspicion. Learners (read
    /// replicas) never send heartbeats, so without this a heartbeat
    /// detector would suspect every replica forever and feed those
    /// pointless suspicions into consensus. Excluded peers are never
    /// reported as [`FdEvent::Suspect`]; a heartbeat from one (e.g. a
    /// misconfigured peer) is still harmless.
    pub fn with_excluded(mut self, excluded: ProcessSet) -> Self {
        self.excluded = excluded;
        self
    }

    fn send_heartbeat(&mut self, out: &mut FdOut) {
        out.sends.push((FdDest::Others, FdMsg::Heartbeat(self.next_seq)));
        self.next_seq += 1;
        out.timers.push((self.send_interval, TICK_SEND));
    }

    fn check(&mut self, now: Time, out: &mut FdOut) {
        for q in ProcessId::all(self.n) {
            if q == self.me || self.excluded.contains(q) {
                continue;
            }
            let silent_for = now.elapsed_since(self.last_seen[q.as_usize()]);
            if silent_for > self.timeout && self.suspected.insert(q) {
                out.changes.push(FdEvent::Suspect(q));
            }
        }
        out.timers.push((self.send_interval, TICK_CHECK));
    }
}

impl FailureDetector for HeartbeatFd {
    fn on_start(&mut self, now: Time, out: &mut FdOut) {
        // Treat everyone as just-seen so that the timeout runs from start.
        for slot in &mut self.last_seen {
            *slot = now;
        }
        self.send_heartbeat(out);
        out.timers.push((self.send_interval, TICK_CHECK));
    }

    fn on_message(&mut self, now: Time, from: ProcessId, msg: FdMsg, out: &mut FdOut) {
        let FdMsg::Heartbeat(_) = msg;
        if from.as_usize() >= self.n {
            return;
        }
        self.last_seen[from.as_usize()] = now;
        if self.suspected.remove(from) {
            out.changes.push(FdEvent::Trust(from));
        }
    }

    fn on_timer(&mut self, now: Time, data: u64, out: &mut FdOut) {
        match data {
            TICK_SEND => self.send_heartbeat(out),
            TICK_CHECK => self.check(now, out),
            _ => {}
        }
    }

    fn suspected(&self) -> ProcessSet {
        self.suspected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn fd() -> HeartbeatFd {
        HeartbeatFd::new(p(0), 3, ms(10), ms(35))
    }

    #[test]
    #[should_panic(expected = "must exceed send interval")]
    fn rejects_timeout_below_interval() {
        let _ = HeartbeatFd::new(p(0), 3, ms(10), ms(10));
    }

    #[test]
    fn start_emits_heartbeat_and_timers() {
        let mut d = fd();
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        assert_eq!(out.sends.len(), 1);
        assert!(matches!(out.sends[0], (FdDest::Others, FdMsg::Heartbeat(0))));
        assert_eq!(out.timers.len(), 2);
        assert!(out.changes.is_empty());
    }

    #[test]
    fn silence_leads_to_suspicion_once() {
        let mut d = fd();
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        // Both peers heartbeat at t=5ms.
        let t5 = Time::ZERO + ms(5);
        d.on_message(t5, p(1), FdMsg::Heartbeat(0), &mut out);
        d.on_message(t5, p(2), FdMsg::Heartbeat(0), &mut out);
        // p1 stays silent; p2 keeps beating.
        let mut out = FdOut::new();
        d.on_message(Time::ZERO + ms(30), p(2), FdMsg::Heartbeat(1), &mut out);
        d.on_timer(Time::ZERO + ms(50), TICK_CHECK, &mut out);
        assert_eq!(out.changes, vec![FdEvent::Suspect(p(1))]);
        assert!(d.suspects(p(1)));
        assert!(!d.suspects(p(2)));
        // A second check does not re-report the same suspicion.
        let mut out = FdOut::new();
        d.on_timer(Time::ZERO + ms(60), TICK_CHECK, &mut out);
        assert!(out.changes.is_empty());
    }

    #[test]
    fn fresh_heartbeat_restores_trust() {
        let mut d = fd();
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        d.on_timer(Time::ZERO + ms(40), TICK_CHECK, &mut out);
        assert!(d.suspects(p(1)));
        let mut out = FdOut::new();
        d.on_message(Time::ZERO + ms(45), p(1), FdMsg::Heartbeat(7), &mut out);
        assert_eq!(out.changes, vec![FdEvent::Trust(p(1))]);
        assert!(!d.suspects(p(1)));
    }

    #[test]
    fn heartbeat_sequence_increments() {
        let mut d = fd();
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        d.on_timer(Time::ZERO + ms(10), TICK_SEND, &mut out);
        d.on_timer(Time::ZERO + ms(20), TICK_SEND, &mut out);
        let seqs: Vec<u64> = out
            .sends
            .iter()
            .map(|(_, m)| match m {
                FdMsg::Heartbeat(s) => *s,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn excluded_peers_are_never_suspected() {
        let mut excluded = ProcessSet::new();
        excluded.insert(p(2));
        let mut d = HeartbeatFd::new(p(0), 3, ms(10), ms(35)).with_excluded(excluded);
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        // Both peers stay silent long past the timeout: only the
        // non-excluded one is suspected.
        let mut out = FdOut::new();
        d.on_timer(Time::ZERO + ms(100), TICK_CHECK, &mut out);
        assert_eq!(out.changes, vec![FdEvent::Suspect(p(1))]);
        assert!(d.suspects(p(1)));
        assert!(!d.suspects(p(2)), "learners must not be suspected");
    }

    #[test]
    fn never_suspects_self() {
        let mut d = fd();
        let mut out = FdOut::new();
        d.on_start(Time::ZERO, &mut out);
        d.on_timer(Time::ZERO + ms(100), TICK_CHECK, &mut out);
        assert!(!d.suspects(p(0)));
    }
}
