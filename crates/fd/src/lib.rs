//! Failure detectors.
//!
//! The paper's consensus algorithms are built on the unreliable failure
//! detector **◇S** (eventual weak accuracy + strong completeness). This
//! crate provides three interchangeable implementations behind the
//! [`FailureDetector`] trait:
//!
//! * [`NeverSuspect`] — never suspects anyone. In fault-free performance
//!   runs (all of the paper's Figures) ◇S never triggers, so this is the
//!   faithful (and cheapest) choice.
//! * [`HeartbeatFd`] — the classic implementation: periodic heartbeats and
//!   a per-process timeout. Provides strong completeness always; accuracy
//!   holds once the network is timely (the "eventually" of ◇S).
//! * [`ScriptedFd`] — replays a pre-programmed suspicion timeline. Used by
//!   tests to force the exact suspicion patterns of the paper's
//!   counterexamples (§2.2, §3.3.2).
//!
//! Like everything in this workspace the detectors are sans-io: they are
//! sub-protocols that a composed node drives through explicit calls and an
//! output buffer ([`FdOut`]).

pub mod heartbeat;
pub mod scripted;

use std::fmt;

use iabc_types::{
    CodecError, Decode, Duration, Encode, ProcessId, ProcessSet, Time, TrafficClass, WireSize,
};

pub use heartbeat::HeartbeatFd;
pub use scripted::ScriptedFd;

/// A change in the suspicion state of the local failure-detector module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    /// `p` is now suspected of having crashed.
    Suspect(ProcessId),
    /// `p` is no longer suspected.
    Trust(ProcessId),
}

/// Destination of a failure-detector message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdDest {
    /// A single process.
    To(ProcessId),
    /// Every process except the sender.
    Others,
}

/// Wire messages exchanged by failure detectors (heartbeats only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdMsg {
    /// "I am alive", with the sender's heartbeat sequence number.
    Heartbeat(u64),
}

impl WireSize for FdMsg {
    fn wire_size(&self) -> usize {
        1 + 8
    }

    fn traffic_class(&self) -> TrafficClass {
        // Heartbeats queueing behind a payload flood are exactly how false
        // suspicions happen under overload: they ride the priority lane.
        TrafficClass::Ordering
    }
}

impl Encode for FdMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FdMsg::Heartbeat(seq) => {
                buf.push(0);
                seq.encode(buf);
            }
        }
    }
}

impl Decode for FdMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(FdMsg::Heartbeat(u64::decode(buf)?)),
            tag => Err(CodecError::InvalidTag { tag, context: "FdMsg" }),
        }
    }
}

/// Output buffer filled by failure-detector callbacks.
#[derive(Debug, Default)]
pub struct FdOut {
    /// Messages to send.
    pub sends: Vec<(FdDest, FdMsg)>,
    /// Timers to arm: `(delay, timer payload)`.
    pub timers: Vec<(Duration, u64)>,
    /// Suspicion changes to report to the layers above (consensus).
    pub changes: Vec<FdEvent>,
}

impl FdOut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FdOut::default()
    }

    /// Whether nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.changes.is_empty()
    }
}

/// A sans-io failure-detector module for one process.
///
/// The composed node calls `on_start` once, routes incoming [`FdMsg`]s to
/// `on_message` and expired timers (armed via [`FdOut::timers`]) to
/// `on_timer`, and reads the current suspicion set with `suspected`.
pub trait FailureDetector: fmt::Debug {
    /// Called once at system start.
    fn on_start(&mut self, now: Time, out: &mut FdOut) {
        let _ = (now, out);
    }

    /// Called when a failure-detector message arrives.
    fn on_message(&mut self, now: Time, from: ProcessId, msg: FdMsg, out: &mut FdOut) {
        let _ = (now, from, msg, out);
    }

    /// Called when a timer armed by this module expires.
    fn on_timer(&mut self, now: Time, data: u64, out: &mut FdOut) {
        let _ = (now, data, out);
    }

    /// The set of processes currently suspected — the query `D_p` of the
    /// paper's algorithms.
    fn suspected(&self) -> ProcessSet;

    /// Whether `p` is currently suspected (`p ∈ D_p`).
    fn suspects(&self, p: ProcessId) -> bool {
        self.suspected().contains(p)
    }
}

/// The trivial detector: never suspects anyone.
///
/// Matches ◇S behaviour in runs without crashes and without false
/// suspicions — the regime of every performance figure in the paper.
#[derive(Debug, Clone, Default)]
pub struct NeverSuspect;

impl NeverSuspect {
    /// Creates the detector.
    pub fn new() -> Self {
        NeverSuspect
    }
}

impl FailureDetector for NeverSuspect {
    fn suspected(&self) -> ProcessSet {
        ProcessSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::wire::roundtrip;

    #[test]
    fn never_suspect_is_empty() {
        let fd = NeverSuspect::new();
        assert!(fd.suspected().is_empty());
        assert!(!fd.suspects(ProcessId::new(0)));
    }

    #[test]
    fn never_suspect_callbacks_are_noops() {
        let mut fd = NeverSuspect::new();
        let mut out = FdOut::new();
        fd.on_start(Time::ZERO, &mut out);
        fd.on_message(Time::ZERO, ProcessId::new(1), FdMsg::Heartbeat(0), &mut out);
        fd.on_timer(Time::ZERO, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fd_msg_codec_roundtrip() {
        let m = FdMsg::Heartbeat(42);
        assert_eq!(roundtrip(&m).unwrap(), m);
    }

    #[test]
    fn fd_msg_rejects_bad_tag() {
        let mut buf: &[u8] = &[9, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(FdMsg::decode(&mut buf).is_err());
    }
}
