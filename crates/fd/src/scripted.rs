//! A failure detector that replays a pre-programmed suspicion timeline.

use iabc_types::{Duration, ProcessSet, Time};

use crate::{FailureDetector, FdEvent, FdOut};

/// Replays `(delay-from-start, event)` entries, regardless of what actually
/// happens in the run.
///
/// This is the tool for reproducing the paper's counterexample executions:
/// ◇S is *unreliable*, so **any** finite suspicion pattern is a legal ◇S
/// behaviour, and a test may script exactly the pattern that exhibits a
/// protocol flaw.
///
/// # Example
///
/// ```
/// use iabc_fd::{FailureDetector, FdEvent, FdOut, ScriptedFd};
/// use iabc_types::{Duration, ProcessId, Time};
///
/// let mut fd = ScriptedFd::new(vec![
///     (Duration::from_millis(5), FdEvent::Suspect(ProcessId::new(0))),
/// ]);
/// let mut out = FdOut::new();
/// fd.on_start(Time::ZERO, &mut out);
/// assert_eq!(out.timers.len(), 1); // one timer per scripted entry
/// ```
#[derive(Debug)]
pub struct ScriptedFd {
    script: Vec<(Duration, FdEvent)>,
    suspected: ProcessSet,
}

impl ScriptedFd {
    /// Creates a detector replaying the given timeline.
    pub fn new(script: Vec<(Duration, FdEvent)>) -> Self {
        ScriptedFd { script, suspected: ProcessSet::new() }
    }

    /// A detector that suspects nothing, ever (empty script).
    pub fn silent() -> Self {
        ScriptedFd::new(Vec::new())
    }

    fn apply(&mut self, event: FdEvent, out: &mut FdOut) {
        let changed = match event {
            FdEvent::Suspect(p) => self.suspected.insert(p),
            FdEvent::Trust(p) => self.suspected.remove(p),
        };
        if changed {
            out.changes.push(event);
        }
    }
}

impl FailureDetector for ScriptedFd {
    fn on_start(&mut self, _now: Time, out: &mut FdOut) {
        for (idx, (delay, _)) in self.script.iter().enumerate() {
            out.timers.push((*delay, idx as u64));
        }
    }

    fn on_timer(&mut self, _now: Time, data: u64, out: &mut FdOut) {
        if let Some(&(_, event)) = self.script.get(data as usize) {
            self.apply(event, out);
        }
    }

    fn suspected(&self) -> ProcessSet {
        self.suspected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::ProcessId;

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn replays_script_in_timer_order() {
        let mut fd = ScriptedFd::new(vec![
            (Duration::from_millis(1), FdEvent::Suspect(p(2))),
            (Duration::from_millis(2), FdEvent::Trust(p(2))),
        ]);
        let mut out = FdOut::new();
        fd.on_start(Time::ZERO, &mut out);
        assert_eq!(out.timers, vec![(Duration::from_millis(1), 0), (Duration::from_millis(2), 1)]);

        let mut out = FdOut::new();
        fd.on_timer(Time::ZERO + Duration::from_millis(1), 0, &mut out);
        assert_eq!(out.changes, vec![FdEvent::Suspect(p(2))]);
        assert!(fd.suspects(p(2)));

        let mut out = FdOut::new();
        fd.on_timer(Time::ZERO + Duration::from_millis(2), 1, &mut out);
        assert_eq!(out.changes, vec![FdEvent::Trust(p(2))]);
        assert!(!fd.suspects(p(2)));
    }

    #[test]
    fn duplicate_events_are_not_rereported() {
        let mut fd = ScriptedFd::new(vec![
            (Duration::from_millis(1), FdEvent::Suspect(p(1))),
            (Duration::from_millis(2), FdEvent::Suspect(p(1))),
        ]);
        let mut out = FdOut::new();
        fd.on_start(Time::ZERO, &mut out);
        fd.on_timer(Time::ZERO, 0, &mut out);
        fd.on_timer(Time::ZERO, 1, &mut out);
        assert_eq!(out.changes.len(), 1);
    }

    #[test]
    fn silent_detector_never_suspects() {
        let mut fd = ScriptedFd::silent();
        let mut out = FdOut::new();
        fd.on_start(Time::ZERO, &mut out);
        assert!(out.is_empty());
        assert!(fd.suspected().is_empty());
    }

    #[test]
    fn unknown_timer_payload_is_ignored() {
        let mut fd = ScriptedFd::silent();
        let mut out = FdOut::new();
        fd.on_timer(Time::ZERO, 99, &mut out);
        assert!(out.is_empty());
    }
}
