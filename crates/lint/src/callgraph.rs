//! Per-function fact extraction and the intra-workspace call graph.
//!
//! Each function body (as delimited by [`crate::parser`]) is walked once
//! to extract the facts the flow rules need: which locks it acquires and
//! in what order, which guards are live where, which blocking operations
//! it performs, which panic-capable constructs it contains, and which
//! other functions it calls. The call graph then resolves calls *by
//! simple name* to every workspace function of that name — a deliberate
//! over-approximation (method-name collisions create edges that do not
//! exist at runtime), which keeps the analysis conservative: it can
//! produce a spurious edge, never miss a real one within the workspace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Token, TokenKind};
use crate::parser::FnItem;

/// Method/free-call names treated as blocking: syscalls that can park the
/// calling thread for an unbounded (or scheduler-decided) time. `lock()`
/// itself is deliberately absent — lock acquisition order is O1's domain,
/// not B1's.
pub const BLOCKING_OPS: &[&str] = &[
    "write_all",
    "write_vectored",
    "write",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "send_timeout",
    "sleep",
    "park",
    "join",
    "accept",
    "connect",
];

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "as", "in", "let", "fn", "move", "ref",
    "mut", "box", "unsafe", "else", "break", "continue", "impl", "dyn", "where", "pub", "use",
    "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "await",
    "async", "yield",
];

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Simple callee name (last path segment / method name).
    pub name: String,
    /// Qualifier hint for `Type::name(…)` call syntax (`Self` already
    /// resolved to the enclosing impl type). `None` for method-call and
    /// free-function syntax.
    pub qual: Option<String>,
    /// 1-based source line.
    pub line: usize,
    /// Lock names whose guards are live at the call.
    pub held: Vec<String>,
}

/// A `.lock()` acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the receiver chain text (e.g. `self.state`).
    pub lock: String,
    /// 1-based source line.
    pub line: usize,
    /// Locks already held when this one is acquired.
    pub held: Vec<String>,
}

/// A blocking operation site.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// Description of the operation (e.g. `write_all` or
    /// `waits on condvar self.ready`).
    pub op: String,
    /// 1-based source line.
    pub line: usize,
    /// Locks whose guards are (still) held across the operation. For an
    /// idiomatic own-guard condvar wait this excludes the waited guard's
    /// lock — `Condvar::wait` releases it for the duration.
    pub held: Vec<String>,
}

/// A panic-capable construct (for call-graph-aware P1).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What was found (`.unwrap()`, `panic!`, …).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// Everything the flow rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// `crates/<name>/` the file belongs to, if any.
    pub crate_name: Option<String>,
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type, if any.
    pub qualifier: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Call sites, in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions, in body order.
    pub locks: Vec<LockSite>,
    /// Blocking operations, in body order.
    pub blocking: Vec<BlockSite>,
    /// Panic-capable constructs, in body order.
    pub panics: Vec<PanicSite>,
}

impl FnInfo {
    /// `Type::name` or plain `name`, for messages.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A live lock guard during the body walk.
struct Guard {
    /// Binding name (`None` for a statement-temporary guard).
    name: Option<String>,
    /// The lock it guards (receiver chain text).
    lock: String,
    /// Brace depth at which it was bound — dies when the block closes.
    depth: usize,
    /// Statement temporary: dies at the next `;` at its depth.
    temp: bool,
}

/// Extracts [`FnInfo`] from one function body. `code` is the file's full
/// code-token slice; `item.body` indexes into it.
pub fn extract_fn_info(
    file: &str,
    crate_name: Option<&str>,
    item: &FnItem,
    code: &[&Token],
) -> FnInfo {
    let mut info = FnInfo {
        file: file.to_string(),
        crate_name: crate_name.map(str::to_string),
        name: item.name.clone(),
        qualifier: item.qualifier.clone(),
        line: item.line,
        calls: Vec::new(),
        locks: Vec::new(),
        blocking: Vec::new(),
        panics: Vec::new(),
    };
    let Some((open, close)) = item.body else { return info };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let held = |guards: &[Guard]| -> Vec<String> {
        let mut h: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        h.dedup();
        h
    };

    let mut k = open + 1;
    while k < close {
        let t = code[k];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                k += 1;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                k += 1;
                continue;
            }
            ";" => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                k += 1;
                continue;
            }
            _ => {}
        }
        if t.kind != TokenKind::Ident {
            k += 1;
            continue;
        }

        // `drop(g)` ends a guard's life early.
        if t.is_ident("drop")
            && code.get(k + 1).is_some_and(|x| x.is_punct("("))
            && code.get(k + 3).is_some_and(|x| x.is_punct(")"))
        {
            if let Some(g) = code.get(k + 2) {
                if g.kind == TokenKind::Ident {
                    guards.retain(|gu| gu.name.as_deref() != Some(g.text.as_str()));
                }
            }
            k += 4;
            continue;
        }

        let is_method = k > open && code[k - 1].is_punct(".");
        let next_is_call = code.get(k + 1).is_some_and(|x| x.is_punct("("));
        let next_is_bang = code.get(k + 1).is_some_and(|x| x.is_punct("!"));

        // Panic-capable constructs (for call-graph-aware P1).
        match t.text.as_str() {
            "unwrap" | "expect"
                if is_method
                    && code
                        .get(k + 1)
                        .is_some_and(|x| x.is_punct("(") || x.is_punct("::")) =>
            {
                info.panics.push(PanicSite { what: format!(".{}()", t.text), line: t.line });
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is_bang => {
                info.panics.push(PanicSite { what: format!("{}!", t.text), line: t.line });
            }
            _ => {}
        }

        // `.lock()` acquisition.
        if t.is_ident("lock")
            && is_method
            && next_is_call
            && code.get(k + 2).is_some_and(|x| x.is_punct(")"))
        {
            let (chain_start, lock_name) = receiver_chain(code, k - 1, open);
            let lock_name = if lock_name.is_empty() { "<unknown>".to_string() } else { lock_name };
            info.locks.push(LockSite {
                lock: lock_name.clone(),
                line: t.line,
                held: held(&guards),
            });
            // Binding: `let [mut] NAME = <chain>.lock()…` or a plain
            // reassignment `NAME = <chain>.lock()…`. Anything else is a
            // statement temporary, dropped at the end of the statement.
            let bound = binding_before(code, chain_start, open);
            match bound {
                Some(name) => {
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                    guards.push(Guard { name: Some(name), lock: lock_name, depth, temp: false });
                }
                None => {
                    guards.push(Guard { name: None, lock: lock_name, depth, temp: true });
                }
            }
            k += 3;
            continue;
        }

        // Condvar waits: `g = cv.wait(g)` re-acquires g's own lock and is
        // the idiomatic pattern; it still blocks (callers under *other*
        // locks must know), and it is a B1 hazard if another guard stays
        // held across it.
        if (t.is_ident("wait") || t.is_ident("wait_timeout") || t.is_ident("wait_while"))
            && is_method
            && next_is_call
        {
            let (_, cv) = receiver_chain(code, k - 1, open);
            let arg = code.get(k + 2);
            let arg_is_own_guard = arg.is_some_and(|a| {
                a.kind == TokenKind::Ident
                    && guards.iter().any(|g| g.name.as_deref() == Some(a.text.as_str()))
                    && code.get(k + 3).is_some_and(|x| x.is_punct(")") || x.is_punct(","))
            });
            let waited_lock: Option<String> = if arg_is_own_guard {
                let a = arg.map(|a| a.text.as_str());
                guards
                    .iter()
                    .find(|g| g.name.as_deref() == a)
                    .map(|g| g.lock.clone())
            } else {
                None
            };
            let mut held_across = held(&guards);
            if let Some(w) = &waited_lock {
                held_across.retain(|l| l != w);
            }
            let op = if arg_is_own_guard {
                format!("waits on condvar `{cv}` (releasing its own guard)")
            } else {
                format!("cross-object `.{}()` on `{cv}`", t.text)
            };
            info.blocking.push(BlockSite { op, line: t.line, held: held_across });
            k += 2;
            continue;
        }

        // Other blocking operations.
        if BLOCKING_OPS.contains(&t.text.as_str()) && next_is_call && !next_is_bang {
            info.blocking.push(BlockSite {
                op: t.text.clone(),
                line: t.line,
                held: held(&guards),
            });
            // Fall through: also record it as a call, in case a workspace
            // function shares the name.
        }

        // Generic call site.
        if next_is_call
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !(k > open && code[k - 1].is_ident("fn"))
        {
            // `Type::name(…)` carries a qualifier hint for resolution.
            let qual = if k >= 2 && code[k - 1].is_punct("::") && code[k - 2].kind == TokenKind::Ident
            {
                let q = code[k - 2].text.as_str();
                if q == "Self" {
                    item.qualifier.clone()
                } else {
                    Some(q.to_string())
                }
            } else {
                None
            };
            info.calls.push(CallSite {
                name: t.text.clone(),
                qual,
                line: t.line,
                held: held(&guards),
            });
        }
        k += 1;
    }
    info
}

/// Walks the postfix receiver chain backwards from `dot` (the `.` before
/// a method name). Returns (index of the chain's first token, chain text
/// like `self.state`). Stops at any token that cannot continue a postfix
/// chain (operators, `=`, `(`, `,`, …).
fn receiver_chain(code: &[&Token], dot: usize, floor: usize) -> (usize, String) {
    let mut j = dot; // at the `.`
    // Accept alternating ident / `.` / `::` going left; also numeric
    // tuple-field literals (`self.0`).
    let mut start = dot;
    while j > floor {
        let prev = &code[j - 1];
        let ok = match prev.kind {
            TokenKind::Ident => true,
            TokenKind::Literal => prev.text.chars().all(|c| c.is_ascii_digit()),
            TokenKind::Punct => prev.text == "." || prev.text == "::",
            _ => false,
        };
        if !ok {
            break;
        }
        j -= 1;
        start = j;
    }
    let text: String = code[start..dot].iter().map(|t| t.text.as_str()).collect();
    (start, text)
}

/// If the token before `chain_start` is an `=` of a `let` binding (or a
/// plain reassignment), returns the bound name.
fn binding_before(code: &[&Token], chain_start: usize, floor: usize) -> Option<String> {
    if chain_start <= floor + 1 {
        return None;
    }
    let eq = chain_start - 1;
    if !code[eq].is_punct("=") {
        return None;
    }
    // `==` lexes as two `=` tokens; a comparison is not a binding.
    if eq > floor && code[eq - 1].is_punct("=") {
        return None;
    }
    let name_tok = &code[eq - 1];
    if name_tok.kind != TokenKind::Ident || name_tok.text == "_" {
        return None;
    }
    // Either `let [mut] name =` or a plain `name =` reassignment (the
    // rebinding in `s = cv.wait(s)` keeps the guard alive; a fresh
    // `name = x.lock()` starts one).
    Some(name_tok.text.clone())
}

/// The intra-workspace call graph over non-test functions.
pub struct CallGraph {
    /// All functions, in (file, body order).
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph; call resolution is by simple name.
    pub fn build(fns: Vec<FnInfo>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        CallGraph { fns, by_name }
    }

    /// All workspace functions a call to `name` may resolve to.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves one call site. Method-call syntax resolves by simple name
    /// to every workspace fn of that name (conservative: collisions
    /// create spurious edges, never miss real ones). `Type::name` syntax
    /// uses the qualifier: a multi-letter qualifier must match the
    /// callee's impl type (so `Vec::new` or `BTreeMap::insert` create no
    /// workspace edges), while a single-letter qualifier is treated as a
    /// generic type parameter (`M::decode`) and falls back to name-only
    /// resolution — dropping those edges would un-conservatively hide
    /// every trait impl called through a generic.
    pub fn resolve_call(&self, c: &CallSite) -> Vec<usize> {
        let by_name = self.resolve(&c.name);
        match &c.qual {
            Some(q) if q.len() > 1 => by_name
                .iter()
                .copied()
                .filter(|&i| self.fns[i].qualifier.as_deref() == Some(q.as_str()))
                .collect(),
            _ => by_name.to_vec(),
        }
    }

    /// Per-function transitive lock-acquisition sets: every lock the
    /// function may acquire directly or through any (name-resolved)
    /// callee. Fixpoint over the cyclic graph — sets only grow.
    pub fn transitive_acquires(&self) -> Vec<BTreeSet<String>> {
        let mut acq: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| f.locks.iter().map(|l| l.lock.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in &self.fns[i].calls {
                    for j in self.resolve_call(c) {
                        if j != i {
                            add.extend(acq[j].iter().cloned());
                        }
                    }
                }
                for l in add {
                    changed |= acq[i].insert(l);
                }
            }
            if !changed {
                return acq;
            }
        }
    }

    /// Per-function blocking summary: `Some(reason)` if the function may
    /// block directly or through any callee. Fixpoint over cycles.
    pub fn transitive_blocking(&self) -> Vec<Option<String>> {
        self.transitive_blocking_where(|_| false)
    }

    /// [`CallGraph::transitive_blocking`] with an exemption predicate:
    /// a function for which `exempt` returns true is treated as never
    /// blocking — its direct blocking operations are ignored and nothing
    /// propagates out of it. Rule E1 uses this to sanction the poller
    /// module, whose `read`/`write` shims wrap `O_NONBLOCK` fds.
    pub fn transitive_blocking_where(
        &self,
        exempt: impl Fn(&FnInfo) -> bool,
    ) -> Vec<Option<String>> {
        let mut blk: Vec<Option<String>> = self
            .fns
            .iter()
            .map(|f| {
                if exempt(f) {
                    None
                } else {
                    f.blocking.first().map(|b| format!("{} (line {})", b.op, b.line))
                }
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if blk[i].is_some() || exempt(&self.fns[i]) {
                    continue;
                }
                let mut found: Option<String> = None;
                for c in &self.fns[i].calls {
                    for j in self.resolve_call(c) {
                        if j != i {
                            if let Some(r) = &blk[j] {
                                // Keep only the first hop of the chain so
                                // messages stay readable.
                                let root = r.split(", which calls").next().unwrap_or(r);
                                found = Some(format!("calls `{}`, which blocks: {root}",
                                    self.fns[j].display_name()));
                                break;
                            }
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
                if let Some(r) = found {
                    blk[i] = Some(r);
                    changed = true;
                }
            }
            if !changed {
                return blk;
            }
        }
    }

    /// BFS reachability from `seeds`, returning a parent map
    /// (`reached fn → caller fn` , seeds map to themselves). Cycle-safe.
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(s);
                queue.push_back(s);
            }
        }
        while let Some(i) = queue.pop_front() {
            for c in &self.fns[i].calls {
                for j in self.resolve_call(c) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(j) {
                        e.insert(i);
                        queue.push_back(j);
                    }
                }
            }
        }
        parent
    }

    /// Call path `seed → … → target` as display names, reconstructed from
    /// a [`CallGraph::reachable`] parent map.
    pub fn path_to(&self, parent: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.fns[i].display_name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::{code_tokens, parse};

    fn infos(file: &str, src: &str) -> Vec<FnInfo> {
        let tokens = tokenize(src);
        let code = code_tokens(&tokens);
        parse(&code)
            .iter()
            .filter(|f| !f.cfg_test)
            .map(|f| extract_fn_info(file, Some("x"), f, &code))
            .collect()
    }

    #[test]
    fn lock_guard_liveness_and_order() {
        let src = "\
fn f(&self) {\n\
    let mut a = self.alpha.lock().unwrap();\n\
    let b = self.beta.lock().unwrap();\n\
    drop(b);\n\
    self.gamma.lock().unwrap().x = 1;\n\
    touch(&mut a);\n\
}\n";
        let fi = &infos("crates/x/src/a.rs", src)[0];
        let locks: Vec<(&str, Vec<String>)> =
            fi.locks.iter().map(|l| (l.lock.as_str(), l.held.clone())).collect();
        assert_eq!(locks[0], ("self.alpha", vec![]));
        assert_eq!(locks[1], ("self.beta", vec!["self.alpha".into()]));
        // gamma acquired after drop(b): only alpha held.
        assert_eq!(locks[2], ("self.gamma", vec!["self.alpha".into()]));
        // The gamma guard is a statement temporary — dead at `touch`.
        let touch = fi.calls.iter().find(|c| c.name == "touch").unwrap();
        assert_eq!(touch.held, vec!["self.alpha".to_string()]);
    }

    #[test]
    fn block_scope_ends_guards() {
        let src = "\
fn f(&self) {\n\
    {\n\
        let g = self.state.lock().unwrap();\n\
        use_it(&g);\n\
    }\n\
    after();\n\
}\n";
        let fi = &infos("crates/x/src/a.rs", src)[0];
        let use_it = fi.calls.iter().find(|c| c.name == "use_it").unwrap();
        assert_eq!(use_it.held, vec!["self.state".to_string()]);
        let after = fi.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.held.is_empty());
    }

    #[test]
    fn own_guard_condvar_wait_is_blocking_but_releases_its_lock() {
        let src = "\
fn push(&self) {\n\
    let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
    while s.full() {\n\
        s = self.space.wait(s).unwrap_or_else(|e| e.into_inner());\n\
    }\n\
    s.q.push_back(1);\n\
}\n";
        let fi = &infos("crates/x/src/a.rs", src)[0];
        assert_eq!(fi.blocking.len(), 1);
        let b = &fi.blocking[0];
        assert!(b.op.contains("self.space"), "{:?}", b.op);
        // The waited guard's own lock is released during the wait.
        assert!(b.held.is_empty(), "{:?}", b.held);
        // Rebinding via `s = …wait(s)` keeps the guard alive afterwards.
        let pb = fi.calls.iter().find(|c| c.name == "push_back").unwrap();
        assert_eq!(pb.held, vec!["self.state".to_string()]);
    }

    #[test]
    fn blocking_ops_record_held_guards() {
        let src = "\
fn flush_locked(&self, w: &mut W) {\n\
    let s = self.state.lock().unwrap();\n\
    w.write_all(&s.buf).ok();\n\
}\n\
fn flush_unlocked(&self, w: &mut W) {\n\
    let batch = { let mut s = self.state.lock().unwrap(); s.take() };\n\
    w.write_all(&batch).ok();\n\
}\n";
        let fs = infos("crates/x/src/a.rs", src);
        let locked = &fs[0].blocking[0];
        assert_eq!(locked.op, "write_all");
        assert_eq!(locked.held, vec!["self.state".to_string()]);
        let unlocked = &fs[1].blocking[0];
        assert!(unlocked.held.is_empty(), "{:?}", unlocked.held);
    }

    #[test]
    fn call_graph_resolves_cycles_and_collisions() {
        let src = "\
fn a(&self) { self.b(); }\n\
fn b(&self) { a(); other(); }\n\
fn other(&self) { let g = self.m.lock().unwrap(); g.touch(); }\n";
        let g = CallGraph::build(infos("crates/x/src/a.rs", src));
        // Cycle a → b → a must terminate with both reaching `other`'s lock.
        let acq = g.transitive_acquires();
        assert!(acq[0].contains("self.m"));
        assert!(acq[1].contains("self.m"));
        // Method-name collision: two fns named `close` both resolve.
        let src2 = "\
impl A { fn close(&self) { x.sleep(); } }\n\
impl B { fn close(&self) {} }\n\
fn caller(&self) { y.close(); }\n";
        let g2 = CallGraph::build(infos("crates/x/src/b.rs", src2));
        assert_eq!(g2.resolve("close").len(), 2);
        let blk = g2.transitive_blocking();
        // caller conservatively inherits blocking from either candidate.
        assert!(blk[2].is_some());
    }

    #[test]
    fn qualified_calls_resolve_by_impl_type() {
        let src = "\
impl Alpha { fn new() -> Alpha { loop {} } }\n\
impl Beta { fn new() -> Beta { x.unwrap(); loop {} } }\n\
fn uses_alpha() { let a = Alpha::new(); }\n\
fn uses_std() { let v = Vec::new(); }\n\
fn uses_generic(x: u8) { let m = M::decode(x); }\n";
        let g = CallGraph::build(infos("crates/x/src/q.rs", src));
        let alpha_call = &g.fns[2].calls[0];
        assert_eq!(alpha_call.qual.as_deref(), Some("Alpha"));
        // `Alpha::new` resolves to Alpha's fn only — not Beta's.
        let targets = g.resolve_call(alpha_call);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].qualifier.as_deref(), Some("Alpha"));
        // `Vec::new` has no workspace impl: no edges at all.
        assert!(g.resolve_call(&g.fns[3].calls[0]).is_empty());
        // A single-letter qualifier is a generic parameter: falls back to
        // name-only resolution (here: no workspace fn named `decode`).
        let gen_call = &g.fns[4].calls[0];
        assert_eq!(gen_call.qual.as_deref(), Some("M"));
        assert!(g.resolve_call(gen_call).is_empty());
    }

    #[test]
    fn reachability_paths() {
        let src = "\
fn entry() { helper(); }\n\
fn helper() { deep(); }\n\
fn deep() { x.unwrap(); }\n\
fn unrelated() { y.unwrap(); }\n";
        let g = CallGraph::build(infos("crates/net/src/a.rs", src));
        let parent = g.reachable(&[0]);
        assert!(parent.contains_key(&2));
        assert!(!parent.contains_key(&3));
        assert_eq!(g.path_to(&parent, 2), vec!["entry", "helper", "deep"]);
    }
}
