//! Findings and their machine-readable rendering.

use std::fmt;

/// One lint finding: a rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`D1`, `D2`, `P1`, `W1`, `W2`, `O1`, `B1`, `L1`, or `A1`
    /// for a malformed `lint:allow` annotation).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the hazard.
    pub message: String,
    /// Stable identity: rule + file + a hash of the *normalized source
    /// line* (not the line number), so inserting unrelated lines above a
    /// finding does not change its id. Empty until [`assign_ids`] runs —
    /// ids need the file contents, which individual rules do not carry.
    pub id: String,
}

impl Finding {
    /// Creates a finding (id assigned later by [`assign_ids`]).
    pub fn new(rule: &str, file: &str, line: usize, message: String) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message,
            id: String::new(),
        }
    }
}

/// Assigns stable ids to `findings`. `source_of` maps a workspace-relative
/// path to that file's contents (`None` if unavailable — the id then
/// hashes an empty snippet, still stable for a given rule+file).
///
/// The id is `<rule>-<fnv1a64 hex>` over
/// `rule | file | normalized snippet | occurrence`, where the snippet is
/// the finding's source line with whitespace collapsed, and `occurrence`
/// disambiguates repeated identical lines (k-th duplicate keeps id k even
/// as unrelated lines move it around).
pub fn assign_ids(findings: &mut [Finding], source_of: &dyn Fn(&str) -> Option<String>) {
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for f in findings.iter_mut() {
        let snippet = source_of(&f.file)
            .and_then(|src| src.lines().nth(f.line.saturating_sub(1)).map(normalize_line))
            .unwrap_or_default();
        let key = format!("{}|{}|{}", f.rule, f.file, snippet);
        let occurrence = seen.entry(key.clone()).or_insert(0);
        f.id = format!("{}-{:016x}", f.rule, fnv1a64(format!("{key}|{occurrence}").as_bytes()));
        *occurrence += 1;
    }
}

/// Collapses runs of whitespace to single spaces and trims — so
/// reformatting that does not change tokens keeps the id stable.
fn normalize_line(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// FNV-1a 64-bit — tiny, dependency-free, stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts the set of finding ids from a baseline JSON report previously
/// written by [`Report::to_json`]. Tolerant by construction: it scans for
/// `"id": "<…>"` pairs, so hand-edited or truncated baselines degrade to
/// fewer known ids (more findings reported), never to silently ignoring
/// new ones.
pub fn baseline_ids(json: &str) -> std::collections::BTreeSet<String> {
    let mut ids = std::collections::BTreeSet::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"id\": \"") {
        rest = &rest[at + "\"id\": \"".len()..];
        if let Some(end) = rest.find('"') {
            ids.insert(rest[..end].to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    ids
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as JSON (machine-readable; uploaded as a CI
    /// artifact on failure). Hand-rolled because the analyzer is std-only
    /// by design.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!(
                "\"id\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
                json_str(&f.id),
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned
        ));
        s
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let r = Report {
            findings: vec![Finding::new("D2", "crates/x/src/a.rs", 3, "use \"BTreeMap\"".into())],
            files_scanned: 2,
        };
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"D2\""));
        assert!(j.contains("\\\"BTreeMap\\\""));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"files_scanned\": 2"));
        // Empty report is valid JSON with an empty array.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"findings\": []"));
    }

    fn ids_for(src: &str, findings: &mut [Finding]) -> Vec<String> {
        let owned = src.to_string();
        assign_ids(findings, &|_| Some(owned.clone()));
        findings.iter().map(|f| f.id.clone()).collect()
    }

    #[test]
    fn ids_are_stable_across_unrelated_line_insertions() {
        let before = "fn a() {}\nlet m = HashMap::new();\n";
        let after = "// new comment\nfn unrelated() {}\nfn a() {}\nlet m = HashMap::new();\n";
        let mut f1 = [Finding::new("D2", "crates/x/src/a.rs", 2, "m".into())];
        let mut f2 = [Finding::new("D2", "crates/x/src/a.rs", 4, "m".into())];
        let id1 = ids_for(before, &mut f1);
        let id2 = ids_for(after, &mut f2);
        assert_eq!(id1, id2, "moving a finding down must not change its id");
        assert!(id1[0].starts_with("D2-"), "{id1:?}");
    }

    #[test]
    fn duplicate_lines_get_distinct_stable_ids() {
        let src = "x.unwrap();\nx.unwrap();\n";
        let mut fs = [
            Finding::new("P1", "crates/net/src/a.rs", 1, "u".into()),
            Finding::new("P1", "crates/net/src/a.rs", 2, "u".into()),
        ];
        let ids = ids_for(src, &mut fs);
        assert_ne!(ids[0], ids[1], "occurrence counter must disambiguate");
        // Different rule or file changes the id.
        let mut other = [Finding::new("P1", "crates/net/src/b.rs", 1, "u".into())];
        let other_ids = ids_for(src, &mut other);
        assert_ne!(ids[0], other_ids[0]);
    }

    #[test]
    fn baseline_roundtrip() {
        let mut r = Report {
            findings: vec![
                Finding::new("W2", "crates/types/src/t.rs", 1, "narrow".into()),
                Finding::new("B1", "crates/net/src/t.rs", 2, "block".into()),
            ],
            files_scanned: 2,
        };
        assign_ids(&mut r.findings, &|_| Some("a as u8\nwrite under lock\n".into()));
        let ids = baseline_ids(&r.to_json());
        assert_eq!(ids.len(), 2);
        assert!(r.findings.iter().all(|f| ids.contains(&f.id)));
        // Garbage in, graceful degradation out.
        assert!(baseline_ids("not json at all").is_empty());
    }
}
