//! Findings and their machine-readable rendering.

use std::fmt;

/// One lint finding: a rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`D1`, `D2`, `P1`, `W1`, `L1`, or `A1` for a malformed
    /// `lint:allow` annotation).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the hazard.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(rule: &str, file: &str, line: usize, message: String) -> Self {
        Finding { rule: rule.to_string(), file: file.to_string(), line, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as JSON (machine-readable; uploaded as a CI
    /// artifact on failure). Hand-rolled because the analyzer is std-only
    /// by design.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!(
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned
        ));
        s
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let r = Report {
            findings: vec![Finding::new("D2", "crates/x/src/a.rs", 3, "use \"BTreeMap\"".into())],
            files_scanned: 2,
        };
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"D2\""));
        assert!(j.contains("\\\"BTreeMap\\\""));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"files_scanned\": 2"));
        // Empty report is valid JSON with an empty array.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"findings\": []"));
    }
}
