//! Workspace-level flow rules: O1 lock-order, B1 hold-while-blocking,
//! E1 no-blocking-in-the-event-loop, and call-graph-aware P1.
//!
//! These rules need to see every file at once — a lock-order inversion is
//! a property of two functions that may live in different files, and a
//! panic two calls below a `net` entry point is invisible to any per-file
//! scan. [`analyze_files`] takes the whole workspace's sources, extracts
//! per-function facts through [`crate::parser`]/[`crate::callgraph`], and
//! emits findings. Per-file `lint:allow` annotations suppress findings in
//! that file exactly as they do for the token-level rules.

use std::collections::BTreeMap;

use crate::callgraph::{extract_fn_info, CallGraph, FnInfo};
use crate::findings::Finding;
use crate::lexer::tokenize;
use crate::parser::{code_tokens, parse};
use crate::rules::{collect_allows, crate_of, Allows, REMOTE_INPUT_CRATES};

/// Runs the flow rules over a set of `(workspace-relative path, source)`
/// files — normally the whole workspace, or a synthetic set in tests.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Finding> {
    let mut infos: Vec<FnInfo> = Vec::new();
    let mut allows: BTreeMap<String, Allows> = BTreeMap::new();
    for (rel_path, source) in files {
        let tokens = tokenize(source);
        allows.insert(rel_path.clone(), collect_allows(&tokens));
        let code = code_tokens(&tokens);
        let crate_name = crate_of(rel_path);
        for item in parse(&code) {
            // Test functions neither seed nor receive flow findings, and
            // excluding them from the graph keeps a test helper from
            // aliasing a production function by name.
            if item.cfg_test || item.body.is_none() {
                continue;
            }
            infos.push(extract_fn_info(rel_path, crate_name, &item, &code));
        }
    }
    let graph = CallGraph::build(infos);

    let mut findings = Vec::new();
    rule_o1(&graph, &mut findings);
    rule_b1(&graph, &mut findings);
    rule_e1(&graph, &mut findings);
    rule_p1_transitive(&graph, &mut findings);

    findings.retain(|f| {
        allows
            .get(&f.file)
            .is_none_or(|a| !a.suppresses(&f.rule, f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    findings
}

/// One observed "holding A, acquire B" ordering with its provenance.
struct OrderSite {
    fn_idx: usize,
    line: usize,
    how: String,
}

// ---------------------------------------------------------------------
// O1 — inconsistent lock acquisition order (static deadlock detector)
// ---------------------------------------------------------------------

fn rule_o1(graph: &CallGraph, findings: &mut Vec<Finding>) {
    // First observed site per ordered lock pair (A held, B acquired),
    // both directly and through calls whose transitive acquisition set
    // contains B.
    let acq = graph.transitive_acquires();
    let mut pairs: BTreeMap<(String, String), OrderSite> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        for l in &f.locks {
            for h in &l.held {
                if *h != l.lock {
                    pairs.entry((h.clone(), l.lock.clone())).or_insert(OrderSite {
                        fn_idx: i,
                        line: l.line,
                        how: format!("`.lock()` on `{}`", l.lock),
                    });
                }
            }
        }
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            for j in graph.resolve_call(c) {
                for lock in &acq[j] {
                    for h in &c.held {
                        if h != lock {
                            pairs.entry((h.clone(), lock.clone())).or_insert(OrderSite {
                                fn_idx: i,
                                line: c.line,
                                how: format!(
                                    "call to `{}`, which acquires `{lock}`",
                                    graph.fns[j].display_name()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    // An inversion is a pair present in both orders anywhere in the
    // workspace. Report at both sites so each side sees the other.
    for ((a, b), site) in &pairs {
        let Some(rev) = pairs.get(&(b.clone(), a.clone())) else { continue };
        let f = &graph.fns[site.fn_idx];
        let other = &graph.fns[rev.fn_idx];
        findings.push(Finding::new(
            "O1",
            &f.file,
            site.line,
            format!(
                "lock-order inversion: `{}` holds `{a}` and then takes `{b}` ({how}), but \
                 `{other_fn}` ({other_file}:{other_line}) acquires them in the opposite \
                 order — two threads interleaving these paths can deadlock; pick one \
                 canonical order (see the module doc of the file that owns the locks)",
                f.display_name(),
                how = site.how,
                other_fn = other.display_name(),
                other_file = other.file,
                other_line = rev.line,
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// B1 — blocking operation while a lock guard is live
// ---------------------------------------------------------------------

fn rule_b1(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let blocking = graph.transitive_blocking();
    for (i, f) in graph.fns.iter().enumerate() {
        // Direct: a blocking op with a guard still held.
        for b in &f.blocking {
            if b.held.is_empty() {
                continue;
            }
            findings.push(Finding::new(
                "B1",
                &f.file,
                b.line,
                format!(
                    "`{}` blocks while `{}` holds the guard of `{}` — every thread \
                     contending for that lock stalls for the full I/O; move the blocking \
                     call after the guard is dropped",
                    b.op,
                    f.display_name(),
                    b.held.join("`, `"),
                ),
            ));
        }
        // Transitive: calling a function that may block, guard held.
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            for j in graph.resolve_call(c) {
                if j == i {
                    continue;
                }
                if let Some(reason) = &blocking[j] {
                    findings.push(Finding::new(
                        "B1",
                        &f.file,
                        c.line,
                        format!(
                            "`{}` calls `{}` while holding the guard of `{}`, and that \
                             callee may block ({reason}) — move the call after the guard \
                             is dropped or split the callee",
                            f.display_name(),
                            graph.fns[j].display_name(),
                            c.held.join("`, `"),
                        ),
                    ));
                    break; // one finding per call site is enough
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// E1 — blocking operation inside the event-loop module set
// ---------------------------------------------------------------------

/// Files that make up the event-driven transport's hot loop. One I/O
/// loop serves every connection of the process, so a single blocking
/// call here stalls them all — rule E1 flags every function defined in
/// these files that may block, directly or through a callee.
pub const EVENT_LOOP_FILES: &[&str] = &[
    "crates/net/src/event_loop.rs",
    // Loop-resident helpers: the reconnect state machine and the fault
    // shim both run on the loop thread, so they inherit its no-blocking
    // contract.
    "crates/net/src/reconnect.rs",
    "crates/net/src/netfault.rs",
];

/// Files exempt from E1 propagation: the poller and its syscall shims.
/// The `try_read`/`try_write*` helpers wrap `O_NONBLOCK` fds — their
/// `read`/`write` calls return `WouldBlock` instead of parking — and
/// `Poller::wait` is the loop's single sanctioned parking point,
/// accounted for with a reasoned `lint:allow(E1)` at its call site.
pub const EVENT_LOOP_SANCTIONED_FILES: &[&str] = &["crates/net/src/poll.rs"];

fn rule_e1(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let blocking = graph
        .transitive_blocking_where(|f| EVENT_LOOP_SANCTIONED_FILES.contains(&f.file.as_str()));
    for (i, f) in graph.fns.iter().enumerate() {
        if !EVENT_LOOP_FILES.contains(&f.file.as_str()) {
            continue;
        }
        // Direct: a blocking op in the loop's own body, guards or not.
        for b in &f.blocking {
            findings.push(Finding::new(
                "E1",
                &f.file,
                b.line,
                format!(
                    "`{}` blocks inside the event-loop module (`{}`): one I/O loop serves \
                     every connection of the process, so a parked loop stalls them all — \
                     hand the fd to the poller and retry on readiness, or prove the call \
                     cannot park and annotate `lint:allow(E1): <why>`",
                    b.op,
                    f.display_name(),
                ),
            ));
        }
        // Transitive: calling anything that may block, wherever it lives.
        for c in &f.calls {
            for j in graph.resolve_call(c) {
                if j == i {
                    continue;
                }
                if let Some(reason) = &blocking[j] {
                    findings.push(Finding::new(
                        "E1",
                        &f.file,
                        c.line,
                        format!(
                            "`{}` calls `{}` from the event-loop module, and that callee \
                             may block ({reason}) — one I/O loop serves every connection \
                             of the process, so a parked loop stalls them all; make the \
                             callee nonblocking or move the call off-loop",
                            f.display_name(),
                            graph.fns[j].display_name(),
                        ),
                    ));
                    break; // one finding per call site is enough
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// P1 (call-graph-aware) — panics reachable from remote-input entries
// ---------------------------------------------------------------------

fn rule_p1_transitive(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.crate_name
                .as_deref()
                .is_some_and(|c| REMOTE_INPUT_CRATES.contains(&c))
        })
        .map(|(i, _)| i)
        .collect();
    let parent = graph.reachable(&seeds);
    for &i in parent.keys() {
        let f = &graph.fns[i];
        // Functions inside the remote-input crates are already covered by
        // the token-level P1; this rule extends coverage to helpers they
        // reach in other crates.
        if f.crate_name
            .as_deref()
            .is_some_and(|c| REMOTE_INPUT_CRATES.contains(&c))
        {
            continue;
        }
        for p in &f.panics {
            let path = graph.path_to(&parent, i).join("` → `");
            findings.push(Finding::new(
                "P1",
                &f.file,
                p.line,
                format!(
                    "`{}` in `{}` is reachable from a remote-input entry point \
                     (`{path}`): a malformed frame can take the process down — propagate \
                     the error, or prove the invariant and annotate \
                     `lint:allow(P1): <why>`",
                    p.what,
                    f.display_name(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        analyze_files(&owned)
    }

    #[test]
    fn o1_fires_on_cross_function_inversion() {
        let src = "\
fn forward(&self) {\n\
    let a = self.alpha.lock().unwrap();\n\
    let b = self.beta.lock().unwrap();\n\
    drop(b); drop(a);\n\
}\n\
fn backward(&self) {\n\
    let b = self.beta.lock().unwrap();\n\
    let a = self.alpha.lock().unwrap();\n\
    drop(a); drop(b);\n\
}\n";
        let f = run(&[("crates/net/src/x.rs", src)]);
        let o1: Vec<_> = f.iter().filter(|f| f.rule == "O1").collect();
        assert_eq!(o1.len(), 2, "{f:?}");
    }

    #[test]
    fn o1_sees_inversions_through_calls() {
        let a = "\
fn outer(&self) {\n\
    let a = self.alpha.lock().unwrap();\n\
    self.inner();\n\
    drop(a);\n\
}\n";
        let b = "\
fn inner(&self) {\n\
    let b = self.beta.lock().unwrap();\n\
    drop(b);\n\
}\n\
fn reversed(&self) {\n\
    let b = self.beta.lock().unwrap();\n\
    let a = self.alpha.lock().unwrap();\n\
    drop(a); drop(b);\n\
}\n";
        let f = run(&[("crates/net/src/a.rs", a), ("crates/net/src/b.rs", b)]);
        assert!(f.iter().any(|f| f.rule == "O1" && f.file == "crates/net/src/a.rs"), "{f:?}");
    }

    #[test]
    fn consistent_order_is_quiet() {
        let src = "\
fn one(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
fn two(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n";
        let f = run(&[("crates/net/src/x.rs", src)]);
        assert!(f.iter().all(|f| f.rule != "O1"), "{f:?}");
    }

    #[test]
    fn b1_direct_and_transitive() {
        let src = "\
fn bad(&self, w: &mut W) {\n\
    let s = self.state.lock().unwrap();\n\
    w.write_all(&s.buf).ok();\n\
}\n\
fn helper(&self, w: &mut W) { w.flush().ok(); }\n\
fn bad_transitive(&self, w: &mut W) {\n\
    let s = self.state.lock().unwrap();\n\
    self.helper(w);\n\
}\n\
fn good(&self, w: &mut W) {\n\
    let batch = { let s = self.state.lock().unwrap(); s.take() };\n\
    w.write_all(&batch).ok();\n\
}\n";
        let f = run(&[("crates/net/src/x.rs", src)]);
        let b1_lines: Vec<usize> = f.iter().filter(|f| f.rule == "B1").map(|f| f.line).collect();
        assert_eq!(b1_lines, vec![3, 8], "{f:?}");
    }

    #[test]
    fn p1_transitive_reaches_helpers_in_other_crates() {
        let net = "fn reader_loop(buf: &[u8]) { decode_helper(buf); }\n";
        let types = "\
pub fn decode_helper(buf: &[u8]) -> u32 { buf.first().copied().unwrap() as u32 }\n\
pub fn unrelated(buf: &[u8]) -> u32 { buf.first().copied().unwrap() as u32 }\n";
        let f = run(&[("crates/net/src/r.rs", net), ("crates/types/src/h.rs", types)]);
        let p1: Vec<_> = f.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 1, "{f:?}");
        assert_eq!(p1[0].line, 1);
        assert!(p1[0].message.contains("reader_loop"), "{}", p1[0].message);
        // An allow in the helper's file suppresses it.
        let types_allowed = "\
// lint:allow(P1): input is length-checked by the caller\n\
pub fn decode_helper(buf: &[u8]) -> u32 { buf.first().copied().unwrap() as u32 }\n";
        let f2 = run(&[("crates/net/src/r.rs", net), ("crates/types/src/h.rs", types_allowed)]);
        assert!(f2.iter().all(|f| f.rule != "P1"), "{f2:?}");
    }

    #[test]
    fn e1_covers_the_reconnect_and_fault_modules() {
        // The reconnect state machine and the fault shim run on the loop
        // thread: a blocking op there must flag exactly like one in
        // event_loop.rs, and the pure fixture must stay quiet.
        let blocking = "\
fn dial(&mut self, s: &mut TcpStream) {\n\
    std::thread::sleep(core::time::Duration::from_millis(1));\n\
}\n";
        let f = run(&[("crates/net/src/reconnect.rs", blocking)]);
        assert!(
            f.iter().any(|f| f.rule == "E1" && f.file == "crates/net/src/reconnect.rs"),
            "{f:?}"
        );
        let f = run(&[("crates/net/src/netfault.rs", blocking)]);
        assert!(f.iter().any(|f| f.rule == "E1"), "{f:?}");
        // A clean fixture shaped like the real module: arithmetic on
        // passed-in times, no clocks, no syscalls.
        let clean = "\
fn due_attempt(&mut self, now: Duration) -> bool {\n\
    if self.next <= now { self.attempts += 1; true } else { false }\n\
}\n\
fn backoff(&self, attempt: u64) -> Duration {\n\
    self.base.saturating_mul(1u64 << attempt.min(5))\n\
}\n";
        let f = run(&[("crates/net/src/reconnect.rs", clean)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_functions_are_invisible_to_the_graph() {
        let net = "fn entry() { helper(); }\n";
        let other = "\
#[cfg(test)]\n\
fn helper() { x.unwrap(); }\n";
        let f = run(&[("crates/net/src/r.rs", net), ("crates/core/src/h.rs", other)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
