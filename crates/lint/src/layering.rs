//! Rule L1 — crate layering, parsed from the workspace `Cargo.toml`s.
//!
//! The layering exists so the deterministic simulator can never grow a
//! dependency on the real transport (or vice versa into the bench
//! harness) by accident:
//!
//! ```text
//! types ← runtime ← {fd, broadcast, consensus} ← core ← {sim, net}
//!                                                        ← workload ← bench
//! ```
//!
//! Checked invariants, over `[dependencies]` only (dev-dependencies may
//! reach up — tests legitimately drive higher layers):
//!
//! * a crate depends only on strictly lower layers (no cycles, no
//!   same-layer coupling — in particular `sim` never depends on `net`);
//! * nothing depends on `bench` or on `lint` (terminal crates);
//! * `lint` depends on no workspace crate at all (std-only tool).

use crate::findings::Finding;

/// Layer of each workspace crate (strictly-lower-only dependencies).
pub const LAYERS: &[(&str, u32)] = &[
    ("iabc-types", 0),
    ("iabc-runtime", 1),
    ("iabc-fd", 2),
    ("iabc-broadcast", 2),
    ("iabc-consensus", 2),
    ("iabc-core", 3),
    ("iabc-sim", 4),
    ("iabc-net", 4),
    ("iabc-workload", 5),
    ("iabc-bench", 6),
    ("iabc-lint", 0),
];

/// Crates nothing may depend on.
pub const TERMINAL: &[&str] = &["iabc-bench", "iabc-lint"];

fn layer_of(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, l)| *l)
}

/// A `[dependencies]` entry of one crate manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Dependency package name (e.g. `iabc-types`).
    pub name: String,
    /// 1-based line in the manifest.
    pub line: usize,
}

/// Extracts normal `[dependencies]` (not dev/build) from manifest text.
/// Recognizes both inline entries under a `[dependencies]` table and
/// dotted sections `[dependencies.<name>]`.
pub fn parse_dependencies(manifest: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut in_deps_table = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps_table = line == "[dependencies]";
            if let Some(rest) = line.strip_prefix("[dependencies.") {
                if let Some(name) = rest.strip_suffix(']') {
                    deps.push(Dep { name: name.trim().trim_matches('"').to_string(), line: idx + 1 });
                }
            }
            continue;
        }
        if !in_deps_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let name = line[..eq].trim().trim_matches('"');
            if !name.is_empty() {
                deps.push(Dep { name: name.to_string(), line: idx + 1 });
            }
        }
    }
    deps
}

/// Checks one crate's dependency list against the layering. Pure — unit
/// tests feed synthetic manifests; `check_layering` feeds the real ones.
pub fn check_crate_deps(crate_pkg: &str, manifest_path: &str, deps: &[Dep]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(my_layer) = layer_of(crate_pkg) else {
        return findings; // not a workspace crate we govern
    };
    for dep in deps {
        let Some(dep_layer) = layer_of(&dep.name) else {
            continue; // external (vendored) dependency
        };
        if TERMINAL.contains(&dep.name.as_str()) {
            findings.push(Finding::new(
                "L1",
                manifest_path,
                dep.line,
                format!("`{crate_pkg}` depends on terminal crate `{}` — nothing may", dep.name),
            ));
            continue;
        }
        if crate_pkg == "iabc-lint" {
            findings.push(Finding::new(
                "L1",
                manifest_path,
                dep.line,
                format!("`iabc-lint` must stay std-only but depends on `{}`", dep.name),
            ));
            continue;
        }
        if dep_layer >= my_layer {
            findings.push(Finding::new(
                "L1",
                manifest_path,
                dep.line,
                format!(
                    "`{crate_pkg}` (layer {my_layer}) depends on `{}` (layer {dep_layer}) — \
                     dependencies must point strictly down the layering \
                     (types ← runtime ← fd/broadcast/consensus ← core ← sim/net ← workload ← bench)",
                    dep.name
                ),
            ));
        }
    }
    findings
}

/// The package name from a manifest (`name = "…"` under `[package]`).
pub fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_BAD: &str = "\
[package]
name = \"iabc-sim\"

[dependencies]
iabc-types = { workspace = true }
iabc-net = { workspace = true }

[dev-dependencies]
iabc-core = { workspace = true }
";

    #[test]
    fn sim_must_not_depend_on_net() {
        let deps = parse_dependencies(SIM_BAD);
        assert_eq!(deps.len(), 2, "dev-dependencies must not count: {deps:?}");
        let f = check_crate_deps("iabc-sim", "crates/sim/Cargo.toml", &deps);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("iabc-net"));
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn nothing_depends_on_bench_or_lint() {
        let deps = vec![
            Dep { name: "iabc-bench".into(), line: 4 },
            Dep { name: "iabc-lint".into(), line: 5 },
        ];
        let f = check_crate_deps("iabc-workload", "x", &deps);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "L1"));
    }

    #[test]
    fn lint_must_be_std_only() {
        let deps = vec![Dep { name: "iabc-types".into(), line: 7 }];
        let f = check_crate_deps("iabc-lint", "crates/lint/Cargo.toml", &deps);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("std-only"));
    }

    #[test]
    fn legal_stack_is_quiet() {
        for (pkg, deps) in [
            ("iabc-core", vec!["iabc-types", "iabc-runtime", "iabc-fd", "iabc-broadcast", "iabc-consensus"]),
            ("iabc-sim", vec!["iabc-types", "iabc-runtime"]),
            ("iabc-bench", vec!["iabc-types", "iabc-core", "iabc-sim", "iabc-workload"]),
        ] {
            let deps: Vec<Dep> =
                deps.into_iter().enumerate().map(|(i, n)| Dep { name: n.into(), line: i + 1 }).collect();
            assert!(check_crate_deps(pkg, "x", &deps).is_empty(), "{pkg} should be legal");
        }
    }

    #[test]
    fn dotted_dependency_sections_are_seen() {
        let m = "[package]\nname = \"iabc-sim\"\n[dependencies.iabc-net]\nworkspace = true\n";
        let deps = parse_dependencies(m);
        assert_eq!(deps, vec![Dep { name: "iabc-net".into(), line: 3 }]);
        assert_eq!(package_name(m).as_deref(), Some("iabc-sim"));
    }

    #[test]
    fn external_deps_are_ignored() {
        let m = "[dependencies]\nserde = { workspace = true }\ncrossbeam = { workspace = true }\n";
        let f = check_crate_deps("iabc-net", "x", &parse_dependencies(m));
        assert!(f.is_empty());
    }
}
