//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: identifiers, punctuation, literals, and comments, each with
//! a 1-based line number.
//!
//! The goal is *not* to parse Rust. It is to make the rules immune to the
//! classic grep failure modes: forbidden names inside string literals,
//! inside comments, or split across lines. Everything trickier (generics,
//! macro bodies, attribute grammar) is left to the token-level heuristics
//! in `rules`.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`match`, `HashMap`, `unwrap`, …).
    Ident,
    /// One punctuation unit. Multi-char operators the rules care about
    /// (`::`, `=>`, `->`, `..`) are single tokens; everything else is one
    /// character per token.
    Punct,
    /// String/char/byte/numeric literal. The text of string literals is
    /// the raw source slice including quotes.
    Literal,
    /// Line or block comment, including doc comments. The text includes
    /// the comment markers.
    Comment,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexical token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Tokenizes `source`. Never fails: unterminated strings/comments simply
/// consume to end of input (the compiler, not the linter, owns syntax
/// errors).
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string();
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'"' => self.string(),
                b'\'' => self.quote(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: usize) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token { kind, text, line: start_line });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::Comment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Comment, start, line);
    }

    /// Looks ahead for `r"`, `r#"`, `br"`, `br#"` (raw string starts) at
    /// the current position — as opposed to `r` / `b` starting a plain
    /// identifier or a raw identifier `r#ident`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = self.pos;
        if self.src[i] == b'b' {
            i += 1;
        }
        if self.src.get(i).copied() != Some(b'r') {
            return false;
        }
        i += 1;
        while self.src.get(i).copied() == Some(b'#') {
            i += 1;
        }
        // `r#ident` (raw identifier) has an ident char after exactly one
        // `#` and no quote; a raw string always reaches a `"` here.
        self.src.get(i).copied() == Some(b'"')
    }

    fn raw_string(&mut self) {
        let (start, line) = (self.pos, self.line);
        if self.src[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        self.push(TokenKind::Literal, start, line);
    }

    fn string(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Literal, start, line);
    }

    fn char_literal(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Literal, start, line);
    }

    /// Disambiguates `'x'` (char literal) from `'lifetime`.
    fn quote(&mut self) {
        // An escape is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.char_literal();
            return;
        }
        // `'c'` with a single char: char literal.
        if self.peek(2) == Some(b'\'') {
            self.char_literal();
            return;
        }
        // Otherwise a lifetime: `'` followed by an identifier run.
        let (start, line) = (self.pos, self.line);
        self.pos += 1;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokenKind::Lifetime, start, line);
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c == b'.' || c.is_ascii_alphanumeric())
        {
            // Do not swallow `..` (range) or a method call on a literal.
            if self.src[self.pos] == b'.'
                && !self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Literal, start, line);
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        let two = [self.src[self.pos], self.peek(1).unwrap_or(0)];
        match &two {
            b"::" | b"=>" | b"->" | b".." => self.pos += 2,
            _ => self.pos += 1,
        }
        self.push(TokenKind::Punct, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo::bar => _");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "bar".into()),
                (TokenKind::Punct, "=>".into()),
                (TokenKind::Ident, "_".into()),
            ]
        );
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        let t = tokenize(r#"let s = "HashMap::unwrap() // not a comment";"#);
        assert!(t.iter().all(|tok| !tok.is_ident("HashMap")));
        assert!(t.iter().any(|tok| tok.kind == TokenKind::Literal));
        assert!(t.iter().all(|tok| tok.kind != TokenKind::Comment));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = tokenize(r###"let s = r#"Instant::now()"#; x"###);
        assert!(t.iter().all(|tok| !tok.is_ident("Instant")));
        assert!(t.iter().any(|tok| tok.is_ident("x")));
    }

    #[test]
    fn comments_capture_text_and_line() {
        let t = tokenize("a\n// lint:allow(D2): reason\nb /* block\nstill */ c");
        let comments: Vec<_> = t.iter().filter(|t| t.kind == TokenKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("lint:allow"));
        assert_eq!(comments[1].line, 3);
        let b = t.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        let c = t.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 4, "block comment newlines must advance the line counter");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = kinds("&'a str; 'x'; '\\n'; '_'");
        assert!(t.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(t.contains(&(TokenKind::Literal, "'x'".into())));
        assert!(t.contains(&(TokenKind::Literal, "'\\n'".into())));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_calls() {
        let t = kinds("0..4 1.0 2.max(3)");
        assert!(t.contains(&(TokenKind::Literal, "0".into())));
        assert!(t.contains(&(TokenKind::Punct, "..".into())));
        assert!(t.contains(&(TokenKind::Literal, "1.0".into())));
        assert!(t.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* a /* b */ c */ x");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Comment).count(), 1);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let t = kinds(r#"b"SystemTime" br"x" r#match x"#);
        assert!(!t.contains(&(TokenKind::Ident, "SystemTime".into())));
        // `r#match` lexes as punct/ident soup but never as a string eating
        // the rest of the line.
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
    }
}
