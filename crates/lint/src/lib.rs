//! `iabc-lint` — workspace determinism & protocol-hygiene analyzer.
//!
//! A self-contained, std-only static analyzer for this workspace. The
//! overload-control arc rests on properties nothing else enforces: the
//! simulator must be deterministic per seed, committed bench baselines
//! must be byte-identical across refactors, and every wire message must
//! classify into the priority lane. This crate checks the cheap,
//! mechanical versions of those invariants on every CI run:
//!
//! | rule | hazard |
//! |------|--------|
//! | `D1` | wall clock / ambient randomness in sim-reachable crates |
//! | `D2` | `HashMap`/`HashSet` (nondeterministic iteration order) in sim-reachable crates |
//! | `P1` | `unwrap`/`expect`/`panic!`-family in the remote-input `net` crate |
//! | `W1` | wildcard `_ =>` arms in matches over wire enums |
//! | `L1` | crate-layering violations in `Cargo.toml` dependencies |
//! | `A1` | malformed `lint:allow` annotations (reason is mandatory) |
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>` on the offending line
//! or the line above. The reason is mandatory — an allow without one is
//! itself a finding and suppresses nothing.
//!
//! Run with `cargo run --release -p iabc-lint` from anywhere in the
//! workspace; see `--help` for JSON output options.

#![warn(missing_docs)]

mod findings;
mod layering;
mod lexer;
mod rules;

pub use findings::{Finding, Report};
pub use layering::{check_crate_deps, package_name, parse_dependencies, Dep, LAYERS};
pub use lexer::{tokenize, Token, TokenKind};
pub use rules::{lint_source, DETERMINISTIC_CRATES, REMOTE_INPUT_CRATES, RULES, WIRE_ENUMS};

use std::path::{Path, PathBuf};

/// Walks up from `start` to the workspace root (the first ancestor whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Runs every rule over the workspace at `root`: all `crates/*/src/**/*.rs`
/// files (D1/D2/P1/W1 + allow hygiene) and all `crates/*/Cargo.toml`
/// manifests (L1).
///
/// # Errors
///
/// Fails only on I/O errors walking the tree; findings are not errors.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    // Deterministic file order — the analyzer must hold itself to its own
    // standard.
    crate_dirs.sort();

    for crate_dir in crate_dirs {
        // L1 over the manifest.
        let manifest_path = crate_dir.join("Cargo.toml");
        if let Ok(manifest) = std::fs::read_to_string(&manifest_path) {
            if let Some(pkg) = package_name(&manifest) {
                let rel = rel_path(root, &manifest_path);
                let deps = parse_dependencies(&manifest);
                report.findings.extend(check_crate_deps(&pkg, &rel, &deps));
                report.files_scanned += 1;
            }
        }
        // Source rules over src/**/*.rs.
        let src_dir = crate_dir.join("src");
        if src_dir.is_dir() {
            let mut files = Vec::new();
            collect_rs_files(&src_dir, &mut files)?;
            files.sort();
            for file in files {
                let source = std::fs::read_to_string(&file)?;
                let rel = rel_path(root, &file);
                report.findings.extend(lint_source(&rel, &source));
                report.files_scanned += 1;
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
