//! `iabc-lint` — workspace determinism & protocol-hygiene analyzer.
//!
//! A self-contained, std-only static analyzer for this workspace. The
//! overload-control arc rests on properties nothing else enforces: the
//! simulator must be deterministic per seed, committed bench baselines
//! must be byte-identical across refactors, and every wire message must
//! classify into the priority lane. This crate checks the cheap,
//! mechanical versions of those invariants on every CI run:
//!
//! | rule | hazard |
//! |------|--------|
//! | `D1` | wall clock / ambient randomness in sim-reachable crates |
//! | `D2` | `HashMap`/`HashSet` (nondeterministic iteration order) in sim-reachable crates |
//! | `P1` | `unwrap`/`expect`/`panic!`-family in the remote-input `net` crate, *and* in any workspace function reachable from it through the call graph |
//! | `W1` | wildcard `_ =>` arms in matches over wire enums |
//! | `W2` | narrowing or float→int `as`-casts on wire-facing integers in `types`/`net` without a visible bound check |
//! | `O1` | inconsistent lock acquisition order across the workspace (static deadlock detector) |
//! | `B1` | blocking I/O / sleeps / cross-object waits while a `.lock()` guard is live |
//! | `E1` | blocking operations (direct or through the call graph) in the event-driven transport's I/O loop — one loop serves every connection, so a parked loop stalls the whole process |
//! | `L1` | crate-layering violations in `Cargo.toml` dependencies |
//! | `A1` | malformed `lint:allow` annotations (reason is mandatory) |
//!
//! D1/D2/P1/W1/W2 are token-level per-file rules; O1/B1/E1 and the
//! call-graph half of P1 are flow-aware: a lightweight item/block parser
//! ([`parser`]) recovers function bodies and lock-guard scopes, and a
//! name-resolved call graph ([`callgraph`]) propagates lock-acquisition
//! and may-block facts across files ([`flow`]).
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>` on the offending line
//! or the line above. The reason is mandatory — an allow without one is
//! itself a finding and suppresses nothing.
//!
//! Run with `cargo run --release -p iabc-lint` from anywhere in the
//! workspace; see `--help` for JSON output options.

#![warn(missing_docs)]

pub mod callgraph;
mod findings;
pub mod flow;
mod layering;
mod lexer;
pub mod parser;
mod rules;

pub use findings::{assign_ids, baseline_ids, Finding, Report};
pub use flow::{analyze_files, EVENT_LOOP_FILES, EVENT_LOOP_SANCTIONED_FILES};
pub use layering::{check_crate_deps, package_name, parse_dependencies, Dep, LAYERS};
pub use lexer::{tokenize, Token, TokenKind};
pub use rules::{
    lint_source, DETERMINISTIC_CRATES, REMOTE_INPUT_CRATES, REMOTE_INPUT_FILES, RULES,
    WIRE_CRATES, WIRE_ENUMS,
};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Walks up from `start` to the workspace root (the first ancestor whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Runs every rule over the workspace at `root`: all `crates/*/src/**/*.rs`
/// files (D1/D2/P1/W1/W2 + allow hygiene), the workspace-level flow rules
/// (O1/B1 and call-graph P1) over the same set, and all
/// `crates/*/Cargo.toml` manifests (L1). Stable finding ids are assigned
/// before the report is returned.
///
/// # Errors
///
/// Fails only on I/O errors walking the tree; findings are not errors.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    // Deterministic file order — the analyzer must hold itself to its own
    // standard.
    crate_dirs.sort();

    let mut manifests: BTreeMap<String, String> = BTreeMap::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for crate_dir in crate_dirs {
        // L1 over the manifest.
        let manifest_path = crate_dir.join("Cargo.toml");
        if let Ok(manifest) = std::fs::read_to_string(&manifest_path) {
            if let Some(pkg) = package_name(&manifest) {
                let rel = rel_path(root, &manifest_path);
                let deps = parse_dependencies(&manifest);
                report.findings.extend(check_crate_deps(&pkg, &rel, &deps));
                report.files_scanned += 1;
                manifests.insert(rel, manifest);
            }
        }
        // Collect src/**/*.rs once; both the per-file and the
        // workspace-level rules run over the same snapshot.
        let src_dir = crate_dir.join("src");
        if src_dir.is_dir() {
            let mut files = Vec::new();
            collect_rs_files(&src_dir, &mut files)?;
            files.sort();
            for file in files {
                let source = std::fs::read_to_string(&file)?;
                sources.push((rel_path(root, &file), source));
                report.files_scanned += 1;
            }
        }
    }
    for (rel, source) in &sources {
        report.findings.extend(lint_source(rel, source));
    }
    report.findings.extend(flow::analyze_files(&sources));

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    let source_of = |path: &str| -> Option<String> {
        sources
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| s.clone())
            .or_else(|| manifests.get(path).cloned())
    };
    assign_ids(&mut report.findings, &source_of);
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
