//! CLI for `iabc-lint`.
//!
//! ```text
//! iabc-lint [ROOT] [--json] [--out PATH]
//! ```
//!
//! * `ROOT` — workspace root (default: discovered from the current
//!   directory).
//! * `--json` — print the machine-readable report to stdout instead of
//!   human-readable lines.
//! * `--out PATH` — additionally write the JSON report to `PATH`
//!   (written on success *and* failure, so CI can upload it as an
//!   artifact when the step fails).
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: iabc-lint [ROOT] [--json] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match iabc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match iabc_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "iabc-lint: {} finding(s) across {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
