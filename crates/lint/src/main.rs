//! CLI for `iabc-lint`.
//!
//! ```text
//! iabc-lint [ROOT] [--json] [--out PATH] [--baseline PATH] [--max-seconds N]
//! ```
//!
//! * `ROOT` — workspace root (default: discovered from the current
//!   directory).
//! * `--json` — print the machine-readable report to stdout instead of
//!   human-readable lines.
//! * `--out PATH` — additionally write the JSON report to `PATH`
//!   (written on success *and* failure, so CI can upload it as an
//!   artifact when the step fails).
//! * `--baseline PATH` — delta mode: read a previous JSON report and fail
//!   only on findings whose stable id is *not* in it. Lets CI stay green
//!   while a sweep of known findings is in flight, without letting new
//!   ones in.
//! * `--max-seconds N` — self-runtime smoke assertion: fail (exit 2) if
//!   the analysis itself took longer than `N` seconds. Keeps the analyzer
//!   from quietly becoming the slowest CI stage.
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new findings,
//! `2` usage/I-O error or blown time budget.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut max_seconds: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--max-seconds" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(n) if n > 0.0 => max_seconds = Some(n),
                _ => {
                    eprintln!("--max-seconds requires a positive number");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: iabc-lint [ROOT] [--json] [--out PATH] [--baseline PATH] \
                     [--max-seconds N]"
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match iabc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let known: std::collections::BTreeSet<String> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => iabc_lint::baseline_ids(&text),
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => Default::default(),
    };

    let started = Instant::now();
    let report = match iabc_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let (new, suppressed): (Vec<_>, Vec<_>) =
        report.findings.iter().partition(|f| !known.contains(&f.id));

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &new {
            println!("{f}");
        }
        let suffix = if suppressed.is_empty() {
            String::new()
        } else {
            format!(" ({} known finding(s) suppressed by baseline)", suppressed.len())
        };
        eprintln!(
            "iabc-lint: {} new finding(s) across {} file(s) in {elapsed:.2}s{suffix}",
            new.len(),
            report.files_scanned
        );
    }

    if let Some(budget) = max_seconds {
        if elapsed > budget {
            eprintln!(
                "iabc-lint: analysis took {elapsed:.2}s, over the --max-seconds {budget} \
                 budget — the linter must not become the slowest CI stage"
            );
            return ExitCode::from(2);
        }
    }

    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
