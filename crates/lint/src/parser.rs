//! A lightweight item/block parser over the token stream.
//!
//! The flow-aware rules (O1 lock-order, B1 hold-while-blocking, W2 wire
//! truncation, call-graph P1) need more structure than a flat token list:
//! function boundaries, the `impl`/`mod` item a function lives in, and
//! whether it sits under `#[cfg(test)]`. This module recovers exactly that
//! much — a list of function items with body token ranges — and nothing
//! more. It is *not* a Rust parser:
//!
//! * `macro_rules!` bodies are skipped entirely (macro grammar is not
//!   token-tree Rust, and rules over it would be guesses);
//! * nested `fn` items inside a function body are attributed to the outer
//!   function (their tokens are part of the outer body range);
//! * const-generic braces in paths (`Foo<{N}>`) would confuse body
//!   detection — the workspace does not use them.
//!
//! Anything the parser cannot place in a function is simply invisible to
//! the flow rules; the token-level rules in [`crate::rules`] still see
//! every token, so the conservative direction is preserved.

use crate::lexer::{Token, TokenKind};

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The self type of the enclosing `impl` (or the enclosing trait's
    /// name for default methods), if any.
    pub qualifier: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function (or an enclosing item) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Inclusive token-index range of the body braces `{` … `}` in the
    /// code-token slice the parser was fed. `None` for bodyless trait
    /// signatures.
    pub body: Option<(usize, usize)>,
}

/// Filters a token list down to code tokens (everything but comments),
/// preserving order. The flow rules and [`parse`] index into this slice.
pub fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect()
}

/// Recovers every `fn` item (with its body range and test-ness) from a
/// code-token slice produced by [`code_tokens`].
pub fn parse(code: &[&Token]) -> Vec<FnItem> {
    let mut p = Parser { code, i: 0, out: Vec::new() };
    let end = code.len();
    p.items(false, None, end);
    p.out
}

struct Parser<'a, 't> {
    code: &'a [&'t Token],
    i: usize,
    out: Vec<FnItem>,
}

impl Parser<'_, '_> {
    /// Scans item positions in `code[self.i..end]`, recursing into `mod`,
    /// `impl`, and `trait` bodies.
    fn items(&mut self, in_test: bool, qualifier: Option<&str>, end: usize) {
        while self.i < end {
            // Attributes in front of the next item.
            let mut attr_test = false;
            while self.at_attr() {
                attr_test |= self.skip_attr_is_cfg_test();
            }
            // Visibility and fn qualifiers sit between the attributes and
            // the item keyword (`#[cfg(test)] pub(crate) mod tests`,
            // `pub const unsafe fn …`); skip them here so `attr_test`
            // still applies to the item they modify.
            while self.i < end {
                match self.code[self.i].text.as_str() {
                    "pub" => {
                        self.i += 1;
                        // `pub(crate)` / `pub(in path)` restriction group.
                        if self.code.get(self.i).is_some_and(|t| t.is_punct("(")) {
                            let close = self.matching_close(self.i, end);
                            self.i = close + 1;
                        }
                    }
                    "unsafe" | "async" => self.i += 1,
                    // `const` and `extern` qualify an fn only when one
                    // follows; `const X: … = …;` and `extern crate` keep
                    // their own handling in the match below.
                    "const" | "extern"
                        if self.code[self.i + 1..end.min(self.code.len())]
                            .iter()
                            .take(2)
                            .any(|t| t.is_ident("fn")) =>
                    {
                        self.i += 1;
                    }
                    _ => break,
                }
            }
            if self.i >= end {
                break;
            }
            let t = self.code[self.i];
            match t.text.as_str() {
                "macro_rules" => self.skip_macro_rules(end),
                "mod" => self.mod_item(in_test || attr_test, end),
                "impl" | "trait" => self.impl_item(in_test || attr_test, end),
                "fn" => self.fn_item(in_test || attr_test, qualifier, end),
                "{" | "(" | "[" => {
                    // Anonymous group (const initializer, array literal…):
                    // skip it whole so its contents are not mistaken for
                    // items.
                    let close = self.matching_close(self.i, end);
                    self.i = close + 1;
                }
                _ => self.i += 1,
            }
        }
        self.i = end;
    }

    fn at_attr(&self) -> bool {
        let t = self.code.get(self.i);
        let open = self.code.get(self.i + 1).map(|t| t.text.as_str());
        t.is_some_and(|t| t.is_punct("#"))
            && (open == Some("[") || (open == Some("!") && self.code.get(self.i + 2).is_some_and(|t| t.is_punct("["))))
    }

    /// Skips one attribute, returning whether it is a `#[cfg(… test …)]`.
    fn skip_attr_is_cfg_test(&mut self) -> bool {
        // `#` (`!`)? `[` … `]`
        self.i += 1;
        if self.code.get(self.i).is_some_and(|t| t.is_punct("!")) {
            self.i += 1;
        }
        let open = self.i;
        let close = self.matching_close(open, self.code.len());
        let is_cfg = self.code.get(open + 1).is_some_and(|t| t.is_ident("cfg"));
        let has_test = is_cfg
            && self.code[open..close.min(self.code.len())]
                .iter()
                .any(|t| t.is_ident("test"));
        self.i = close + 1;
        is_cfg && has_test
    }

    /// `macro_rules! name { … }` — skip the whole definition.
    fn skip_macro_rules(&mut self, end: usize) {
        self.i += 1; // macro_rules
        if self.code.get(self.i).is_some_and(|t| t.is_punct("!")) {
            self.i += 1;
        }
        if self.code.get(self.i).is_some_and(|t| t.kind == TokenKind::Ident) {
            self.i += 1;
        }
        if self.i < end && matches!(self.code[self.i].text.as_str(), "{" | "(" | "[") {
            let close = self.matching_close(self.i, end);
            self.i = close + 1;
        }
    }

    /// `mod name { items… }` or `mod name;`
    fn mod_item(&mut self, test: bool, end: usize) {
        self.i += 1; // mod
        if self.code.get(self.i).is_some_and(|t| t.kind == TokenKind::Ident) {
            self.i += 1;
        }
        match self.code.get(self.i).map(|t| t.text.as_str()) {
            Some("{") => {
                let close = self.matching_close(self.i, end);
                self.i += 1;
                self.items(test, None, close);
                self.i = close + 1;
            }
            _ => self.i += 1, // `mod x;`
        }
    }

    /// `impl … {` / `trait Name {` — recurse with the self-type (or trait
    /// name) as the qualifier of contained fns.
    fn impl_item(&mut self, test: bool, end: usize) {
        let is_trait = self.code[self.i].is_ident("trait");
        self.i += 1;
        // Collect the header up to the body `{` (or a terminating `;`,
        // e.g. `impl Foo;` which is not real Rust but keeps us safe).
        let mut angle = 0i32;
        let mut last_path_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut seen_for = false;
        while self.i < end {
            let t = self.code[self.i];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "where" if angle <= 0 => {
                    // Type names after `where` are bounds, not the self
                    // type — stop collecting.
                    while self.i < end && !matches!(self.code[self.i].text.as_str(), "{" | ";") {
                        self.i += 1;
                    }
                    continue;
                }
                "for" if angle <= 0 => seen_for = true,
                "{" | ";" if angle <= 0 => break,
                _ => {
                    if t.kind == TokenKind::Ident && angle <= 0 {
                        if seen_for {
                            // Last path segment after `for` is the type.
                            after_for = Some(t.text.clone());
                        } else {
                            last_path_ident = Some(t.text.clone());
                        }
                    }
                }
            }
            self.i += 1;
        }
        let qualifier = if is_trait { last_path_ident } else { after_for.or(last_path_ident) };
        if self.code.get(self.i).is_some_and(|t| t.is_punct("{")) {
            let close = self.matching_close(self.i, end);
            self.i += 1;
            self.items(test, qualifier.as_deref(), close);
            self.i = close + 1;
        } else {
            self.i += 1;
        }
    }

    /// `fn name…(…) … { body }` or `fn name…(…);`
    fn fn_item(&mut self, test: bool, qualifier: Option<&str>, end: usize) {
        let line = self.code[self.i].line;
        self.i += 1; // fn
        let Some(name_tok) = self.code.get(self.i) else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.i += 1;
        // Find the body `{` (or `;`) at paren/bracket depth 0.
        let mut pd = 0usize;
        let mut bd = 0usize;
        while self.i < end {
            match self.code[self.i].text.as_str() {
                "(" => pd += 1,
                ")" => pd = pd.saturating_sub(1),
                "[" => bd += 1,
                "]" => bd = bd.saturating_sub(1),
                "{" if pd == 0 && bd == 0 => {
                    let open = self.i;
                    let close = self.matching_close(open, end);
                    self.out.push(FnItem {
                        name,
                        qualifier: qualifier.map(str::to_string),
                        line,
                        cfg_test: test,
                        body: Some((open, close)),
                    });
                    self.i = close + 1;
                    return;
                }
                ";" if pd == 0 && bd == 0 => {
                    self.out.push(FnItem {
                        name,
                        qualifier: qualifier.map(str::to_string),
                        line,
                        cfg_test: test,
                        body: None,
                    });
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Index of the delimiter matching the opener at `open` (`{`/`(`/`[`),
    /// or `end - 1` if the source is truncated. All three delimiter kinds
    /// count toward depth, so mixed nesting stays balanced.
    fn matching_close(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < end {
            match self.code[k].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        end.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn fns(src: &str) -> Vec<FnItem> {
        let tokens = tokenize(src);
        let code = code_tokens(&tokens);
        parse(&code)
    }

    #[test]
    fn free_and_impl_fns_are_found() {
        let src = "\
fn alpha() { let x = 1; }\n\
struct S;\n\
impl S {\n\
    fn beta(&self) -> u32 { 2 }\n\
}\n\
impl Clone for S {\n\
    fn clone(&self) -> S { S }\n\
}\n";
        let fs = fns(src);
        let names: Vec<(String, Option<String>)> =
            fs.iter().map(|f| (f.name.clone(), f.qualifier.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("alpha".into(), None),
                ("beta".into(), Some("S".into())),
                ("clone".into(), Some("S".into())),
            ]
        );
        assert!(fs.iter().all(|f| !f.cfg_test));
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let src = "\
impl<M: WireSize> PeerQueue<M> {\n\
    fn push(&self, m: M) {}\n\
}\n\
impl<M: Decode + path::WireSize> path::WireSize for TaggedOwned<M> {\n\
    fn wire_size(&self) -> usize { 2 }\n\
}\n";
        let fs = fns(src);
        assert_eq!(fs[0].qualifier.as_deref(), Some("PeerQueue"));
        assert_eq!(fs[1].qualifier.as_deref(), Some("TaggedOwned"));
    }

    #[test]
    fn cfg_test_marks_fns_and_modules() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
fn helper() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn inner() {}\n\
}\n\
#[cfg(all(test, feature = \"x\"))]\n\
mod more { fn deep() {} }\n";
        let fs = fns(src);
        let test_flags: Vec<(String, bool)> =
            fs.iter().map(|f| (f.name.clone(), f.cfg_test)).collect();
        assert_eq!(
            test_flags,
            vec![
                ("live".into(), false),
                ("helper".into(), true),
                ("inner".into(), true),
                ("deep".into(), true),
            ]
        );
    }

    #[test]
    fn cfg_test_survives_visibility_between_attr_and_item() {
        // The attribute's test-ness must reach the item it modifies even
        // when `pub`, `pub(crate)`, or fn qualifiers sit in between —
        // dropping it here lints test helpers as production code.
        let src = "\
#[cfg(test)]\n\
pub(crate) mod tests {\n\
    pub(crate) fn fixture() {}\n\
}\n\
#[cfg(test)]\n\
pub const fn helper() {}\n\
pub(crate) fn live() {}\n\
const LIMIT: usize = 4;\n\
fn after_const() {}\n";
        let fs = fns(src);
        let test_flags: Vec<(String, bool)> =
            fs.iter().map(|f| (f.name.clone(), f.cfg_test)).collect();
        assert_eq!(
            test_flags,
            vec![
                ("fixture".into(), true),
                ("helper".into(), true),
                ("live".into(), false),
                ("after_const".into(), false),
            ]
        );
    }

    #[test]
    fn macro_rules_bodies_are_invisible() {
        let src = "\
macro_rules! gen {\n\
    ($t:ty) => { fn hidden() { x.unwrap(); } };\n\
}\n\
fn visible() {}\n";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "visible");
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let src = "\
trait Codec {\n\
    fn size(&self) -> usize;\n\
    fn class(&self) -> u8 { 0 }\n\
}\n";
        let fs = fns(src);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name, "size");
        assert!(fs[0].body.is_none());
        assert_eq!(fs[0].qualifier.as_deref(), Some("Codec"));
        assert!(fs[1].body.is_some());
    }

    #[test]
    fn body_ranges_cover_nested_blocks() {
        let src = "fn f() { if a { b(); } match c { _ => {} } }\nfn g() {}\n";
        let tokens = tokenize(src);
        let code = code_tokens(&tokens);
        let fs = parse(&code);
        assert_eq!(fs.len(), 2);
        let (open, close) = fs[0].body.unwrap();
        assert!(code[open].is_punct("{") && code[close].is_punct("}"));
        // g's body must start after f's body ends.
        let (g_open, _) = fs[1].body.unwrap();
        assert!(g_open > close);
    }

    #[test]
    fn where_clauses_do_not_change_the_qualifier() {
        let src = "impl<T> Wrapper<T> where T: Ord { fn get(&self) {} }\n";
        let fs = fns(src);
        assert_eq!(fs[0].qualifier.as_deref(), Some("Wrapper"));
    }
}
