//! Token-level lint rules over one source file.
//!
//! Every rule is deliberately conservative: it flags patterns a tokenizer
//! can prove are *present*, and the `// lint:allow(<rule>): <reason>`
//! escape hatch (reason mandatory) covers the cases a human can prove are
//! safe. See the README's "Static analysis & determinism rules" section
//! for the hazard each rule guards against.

use crate::findings::Finding;
use crate::lexer::{tokenize, Token, TokenKind};

/// Crates whose code is reachable from the deterministic simulator: wall
/// clocks, ambient randomness, and hash-order iteration are forbidden
/// here (rules D1/D2). `runtime` is sim-reachable too: its context/timer
/// plumbing runs inside every simulated node.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["types", "runtime", "consensus", "broadcast", "fd", "core", "sim", "workload"];

/// Individual files outside [`DETERMINISTIC_CRATES`] whose logic must be
/// replayable from a seed: the transport's reconnect backoff and fault
/// shim decide *when* links heal and *which* frames drop — nemesis runs
/// only reproduce if those draws come from the plan's seed, never from
/// ambient clocks or entropy (rules D1/D2).
pub const DETERMINISTIC_FILES: &[&str] =
    &["crates/net/src/reconnect.rs", "crates/net/src/netfault.rs"];

/// Crates whose code handles remote input: panics are forbidden (rule P1)
/// — a malformed frame must poison the connection, not the process.
pub const REMOTE_INPUT_CRATES: &[&str] = &["net"];

/// Individual files outside [`REMOTE_INPUT_CRATES`] that decode remote (or
/// crash-torn on-disk) bytes: the envelope codec decodes every frame a
/// peer sends — the catch-up request/reply paths included — and the
/// durable decided log re-reads whatever prefix of its file survived a
/// crash. Both must degrade, never panic (rule P1).
pub const REMOTE_INPUT_FILES: &[&str] =
    &["crates/core/src/envelope.rs", "crates/core/src/decided.rs"];

/// Wire-facing enums: a `match` whose patterns name these must not have a
/// wildcard `_` arm (rule W1) — a new message type must be classified
/// explicitly, not silently defaulted (e.g. into the Bulk traffic class).
/// The catch-up frames (`CatchUpRequest`/`CatchUpReply`) are `Envelope`
/// variants — listed here so a match that names them through an imported
/// path still counts as wire-facing.
pub const WIRE_ENUMS: &[&str] =
    &["Envelope", "ConsMsg", "BcastMsg", "FdMsg", "CatchUpRequest", "CatchUpReply"];

/// Crates whose integers can end up on the wire: narrowing `as`-casts are
/// forbidden here (rule W2) — a silently truncated length or id corrupts
/// the frame for every peer.
pub const WIRE_CRATES: &[&str] = &["types", "net"];

/// All checkable rule names (used to validate `lint:allow` annotations).
pub const RULES: &[&str] = &["D1", "D2", "P1", "W1", "W2", "O1", "B1", "E1", "L1"];

/// Lints one Rust source file. `rel_path` must be workspace-relative
/// (e.g. `crates/net/src/tcp.rs`) — rule scoping is derived from the
/// `crates/<name>/` prefix.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let crate_name = crate_of(rel_path);
    let tokens = tokenize(source);
    let allows = collect_allows(&tokens);

    let mut findings: Vec<Finding> = Vec::new();
    // Allow annotations that are malformed are findings themselves (and
    // never suppress anything).
    for bad in &allows.malformed {
        findings.push(Finding::new("A1", rel_path, bad.line, bad.message.clone()));
    }

    // Code tokens outside `#[cfg(test)]` items: unit tests legitimately
    // unwrap, iterate hash maps for assertions, and match loosely.
    let code: Vec<&Token> = non_test_code_tokens(&tokens);

    let deterministic = crate_name.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
        || DETERMINISTIC_FILES.contains(&rel_path);
    let remote_input = crate_name.is_some_and(|c| REMOTE_INPUT_CRATES.contains(&c))
        || REMOTE_INPUT_FILES.contains(&rel_path);

    if deterministic {
        rule_d1(rel_path, &code, &mut findings);
        rule_d2(rel_path, &code, &mut findings);
    }
    if remote_input {
        rule_p1(rel_path, &code, &mut findings);
    }
    rule_w1(rel_path, &code, &mut findings);
    if crate_name.is_some_and(|c| WIRE_CRATES.contains(&c)) {
        rule_w2(rel_path, &tokens, &mut findings);
    }

    findings.retain(|f| !allows.suppresses(&f.rule, f.line));
    findings.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.message == b.message);
    findings
}

/// The `<name>` of a `crates/<name>/...` path, if any.
pub(crate) fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

// ---------------------------------------------------------------------
// allow annotations
// ---------------------------------------------------------------------

struct Malformed {
    line: usize,
    message: String,
}

pub(crate) struct Allows {
    /// (rule, line-of-annotation) pairs. An allow suppresses findings of
    /// that rule on its own line (trailing comment) and on the next line
    /// (annotation on its own line above the code).
    allowed: Vec<(String, usize)>,
    malformed: Vec<Malformed>,
}

impl Allows {
    pub(crate) fn suppresses(&self, rule: &str, line: usize) -> bool {
        self.allowed
            .iter()
            .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Extracts `lint:allow(<rule>): <reason>` annotations from comments. The
/// reason is mandatory: an allow without one is reported and ignored.
pub(crate) fn collect_allows(tokens: &[Token]) -> Allows {
    let mut allows = Allows { allowed: Vec::new(), malformed: Vec::new() };
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        // Only comments that *start* with the annotation count — prose
        // that merely mentions the `lint:allow` syntax (docs, rule
        // messages) is not an annotation.
        let content = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !content.starts_with("lint:allow") {
            continue;
        }
        let mut rest = content;
        while let Some(idx) = rest.find("lint:allow") {
            rest = &rest[idx + "lint:allow".len()..];
            let Some(inner) = rest.strip_prefix('(') else {
                allows.malformed.push(Malformed {
                    line: t.line,
                    message: "malformed lint:allow — expected `lint:allow(<rule>): <reason>`"
                        .into(),
                });
                continue;
            };
            let Some(close) = inner.find(')') else {
                allows.malformed.push(Malformed {
                    line: t.line,
                    message: "malformed lint:allow — missing `)`".into(),
                });
                break;
            };
            let rule = inner[..close].trim().to_string();
            rest = &inner[close + 1..];
            if !RULES.contains(&rule.as_str()) {
                allows.malformed.push(Malformed {
                    line: t.line,
                    message: format!("lint:allow names unknown rule `{rule}`"),
                });
                continue;
            }
            // Mandatory reason: `): <non-empty text>`.
            let reason_ok = rest
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|r| {
                    // The reason runs to the end of the comment (or the
                    // next annotation); it must contain a word.
                    let upto = r.find("lint:allow").unwrap_or(r.len());
                    r[..upto].trim().chars().any(|c| c.is_alphanumeric())
                });
            if reason_ok {
                allows.allowed.push((rule, t.line));
            } else {
                allows.malformed.push(Malformed {
                    line: t.line,
                    message: format!(
                        "lint:allow({rule}) without a reason — write \
                         `lint:allow({rule}): <why this is safe>`"
                    ),
                });
            }
        }
    }
    allows
}

// ---------------------------------------------------------------------
// #[cfg(test)] exclusion
// ---------------------------------------------------------------------

/// Returns the non-comment tokens that are *outside* any `#[cfg(test)]`
/// item (module, function, impl, …).
fn non_test_code_tokens(tokens: &[Token]) -> Vec<&Token> {
    let code: Vec<&Token> = tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect();
    let mut skip_until: Vec<(usize, usize)> = Vec::new(); // index ranges
    let mut i = 0;
    while i < code.len() {
        if let Some(end) = cfg_test_item_end(&code, i) {
            skip_until.push((i, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    code.iter()
        .enumerate()
        .filter(|(idx, _)| !skip_until.iter().any(|(s, e)| idx >= s && idx <= e))
        .map(|(_, t)| *t)
        .collect()
}

/// If `code[i]` starts a `#[cfg(… test …)]` attribute, returns the index
/// of the last token of the item it decorates.
fn cfg_test_item_end(code: &[&Token], i: usize) -> Option<usize> {
    if !(code[i].is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("["))) {
        return None;
    }
    // Find the attribute's closing `]` and check it is a cfg containing
    // the `test` flag.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut is_cfg = false;
    let mut has_test = false;
    while j < code.len() {
        match code[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "cfg" if depth == 1 && j == i + 2 => is_cfg = true,
            "test" if is_cfg => has_test = true,
            _ => {}
        }
        j += 1;
    }
    if !(is_cfg && has_test) || j >= code.len() {
        return None;
    }
    // Skip any further attributes between this one and the item.
    let mut k = j + 1;
    while k < code.len() && code[k].is_punct("#") && code.get(k + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut d = 0usize;
        k += 1;
        while k < code.len() {
            match code[k].text.as_str() {
                "[" => d += 1,
                "]" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        k += 1;
    }
    // The item runs to the first `;` at depth 0 (e.g. `mod tests;`) or to
    // the `}` matching its first `{`.
    let mut braces = 0usize;
    let mut parens = 0usize;
    let mut brackets = 0usize;
    while k < code.len() {
        match code[k].text.as_str() {
            "{" => braces += 1,
            "}" => {
                braces = braces.saturating_sub(1);
                if braces == 0 {
                    return Some(k);
                }
            }
            "(" => parens += 1,
            ")" => parens = parens.saturating_sub(1),
            "[" => brackets += 1,
            "]" => brackets = brackets.saturating_sub(1),
            ";" if braces == 0 && parens == 0 && brackets == 0 => return Some(k),
            _ => {}
        }
        k += 1;
    }
    Some(code.len() - 1)
}

// ---------------------------------------------------------------------
// D1 — no wall clock / ambient randomness in deterministic crates
// ---------------------------------------------------------------------

fn rule_d1(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let seq2 = |a: &str, b: &str| {
            t.is_ident(a)
                && code.get(i + 1).is_some_and(|x| x.is_punct("::"))
                && code.get(i + 2).is_some_and(|x| x.is_ident(b))
        };
        let hit = match t.text.as_str() {
            "Instant" if seq2("Instant", "now") => {
                Some("`Instant::now()` reads the wall clock; deterministic code must use sim time")
            }
            "Instant"
                if i >= 2
                    && code[i - 1].is_punct("::")
                    && code[i - 2].is_ident("time") =>
            {
                Some("`std::time::Instant` import in a deterministic crate; use sim time")
            }
            "SystemTime" => {
                Some("`SystemTime` reads the wall clock; deterministic code must use sim time")
            }
            "thread_rng" => Some(
                "`thread_rng()` is ambient randomness; thread the seeded RNG through instead",
            ),
            "from_entropy" => Some(
                "`from_entropy()` seeds from the OS; thread the experiment seed through instead",
            ),
            _ => None,
        };
        if let Some(msg) = hit {
            findings.push(Finding::new("D1", rel_path, t.line, msg.to_string()));
        }
    }
}

// ---------------------------------------------------------------------
// D2 — no HashMap/HashSet in deterministic crates
// ---------------------------------------------------------------------

fn rule_d2(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for t in code {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            findings.push(Finding::new(
                "D2",
                rel_path,
                t.line,
                format!(
                    "`{}` in a deterministic crate: hash iteration order is nondeterministic \
                     and can leak into proposal/decision order — use BTreeMap/BTreeSet, or \
                     annotate a provably lookup-only use with `lint:allow(D2): <proof>`",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// P1 — no panics in remote-input crates
// ---------------------------------------------------------------------

fn rule_p1(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && i >= 1
                && code[i - 1].is_punct(".")
                && code.get(i + 1).is_some_and(|x| x.is_punct("(") || x.is_punct("::"))
        };
        let macro_call =
            |name: &str| t.is_ident(name) && code.get(i + 1).is_some_and(|x| x.is_punct("!"));
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if method_call(&t.text) => Some(format!(
                "`.{}()` on a remote-input path can take the process down on a malformed \
                 frame — propagate the error and poison the connection instead",
                t.text
            )),
            "panic" | "unreachable" | "todo" | "unimplemented" if macro_call(&t.text) => {
                Some(format!(
                    "`{}!` on a remote-input path can take the process down on a malformed \
                     frame — propagate the error and poison the connection instead",
                    t.text
                ))
            }
            _ => None,
        };
        if let Some(msg) = hit {
            findings.push(Finding::new("P1", rel_path, t.line, msg));
        }
    }
}

// ---------------------------------------------------------------------
// W1 — no wildcard arms in matches over wire enums
// ---------------------------------------------------------------------

fn rule_w1(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // The match body is the first `{` after the scrutinee (struct
        // literals are not allowed in scrutinee position without parens,
        // so depth-0 `{` is the body).
        let mut j = i + 1;
        let mut parens = 0usize;
        let mut brackets = 0usize;
        let mut body_open = None;
        while j < code.len() {
            match code[j].text.as_str() {
                "(" => parens += 1,
                ")" => parens = parens.saturating_sub(1),
                "[" => brackets += 1,
                "]" => brackets = brackets.saturating_sub(1),
                "{" if parens == 0 && brackets == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if parens == 0 && brackets == 0 => break, // not a match expr after all
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        // Walk the body, find its matching close, note (a) wire-enum
        // paths and (b) direct wildcard arms `_ =>` at body depth 1.
        let mut depth = 0usize;
        let mut k = open;
        let mut names_wire_enum = false;
        let mut wildcard_line = None;
        while k < code.len() {
            match code[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if code[k].kind == TokenKind::Ident
                && WIRE_ENUMS.contains(&code[k].text.as_str())
                && code.get(k + 1).is_some_and(|x| x.is_punct("::"))
            {
                names_wire_enum = true;
            }
            if depth == 1
                && code[k].is_ident("_")
                && code.get(k + 1).is_some_and(|x| x.is_punct("=>"))
                && (k == open + 1
                    || code[k - 1].is_punct(",")
                    || code[k - 1].is_punct("{")
                    || code[k - 1].is_punct("}")
                    || code[k - 1].is_punct("|"))
            {
                wildcard_line.get_or_insert(code[k].line);
            }
            k += 1;
        }
        if names_wire_enum {
            if let Some(line) = wildcard_line {
                findings.push(Finding::new(
                    "W1",
                    rel_path,
                    line,
                    "wildcard `_ =>` arm in a match over a wire enum: a newly added message \
                     type would silently fall through (e.g. default to the Bulk traffic class \
                     or get dropped) — name every variant"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// W2 — narrowing `as`-casts on wire-facing integers
// ---------------------------------------------------------------------

/// Targets that can silently drop high bits from the usize/u64 values the
/// codec traffics in.
const NARROW_INT_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
/// All integer targets — relevant when the operand is a float expression
/// (float→int `as` saturates/truncates silently at any width).
const INT_TARGETS: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];
/// Operand-chain evidence that the cast source is a float.
const FLOAT_EVIDENCE: &[&str] = &["f32", "f64", "round", "ceil", "floor", "trunc"];
/// Operand-chain methods that clamp the value — counted as a guard.
const CLAMPING_METHODS: &[&str] = &["min", "max", "clamp", "rem_euclid"];

fn rule_w2(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let code = crate::parser::code_tokens(tokens);
    for item in crate::parser::parse(&code) {
        if item.cfg_test {
            continue;
        }
        let Some((open, close)) = item.body else { continue };
        for k in open + 1..close {
            if !code[k].is_ident("as") {
                continue;
            }
            let Some(target) = code.get(k + 1) else { continue };
            if target.kind != TokenKind::Ident {
                continue;
            }
            let ty = target.text.as_str();
            if !INT_TARGETS.contains(&ty) {
                continue;
            }
            let chain = operand_chain_idents(&code, k, open);
            let float_source = chain.iter().any(|c| FLOAT_EVIDENCE.contains(&c.as_str()));
            let narrowing = NARROW_INT_TARGETS.contains(&ty);
            if !narrowing && !float_source {
                continue;
            }
            if cast_is_guarded(&code, open, k, &chain) {
                continue;
            }
            let msg = if float_source {
                format!(
                    "float→int `as {ty}` saturates/truncates silently — guard the range \
                     explicitly (compare against `{ty}::MAX`) or prove the bound and \
                     annotate `lint:allow(W2): <bound>`"
                )
            } else {
                format!(
                    "narrowing `as {ty}` cast on a wire-facing value silently drops high \
                     bits and corrupts the frame for every peer — use `{ty}::try_from` \
                     with an error path, or prove the bound and annotate \
                     `lint:allow(W2): <bound>`"
                )
            };
            findings.push(Finding::new("W2", rel_path, code[k].line, msg));
        }
    }
}

/// Identifiers participating in the postfix operand expression of an `as`
/// cast at `as_idx`, collected by walking left: closing delimiters skip to
/// their opener (collecting inner idents on the way), identifier/`.`/`::`
/// runs continue the chain, and any other token ends it.
fn operand_chain_idents(code: &[&Token], as_idx: usize, floor: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = as_idx;
    while j > floor + 1 {
        let prev = &code[j - 1];
        match prev.text.as_str() {
            ")" | "]" => {
                // Skip (and harvest) the delimited group.
                let mut depth = 0usize;
                let mut m = j - 1;
                loop {
                    match code[m].text.as_str() {
                        ")" | "]" | "}" => depth += 1,
                        "(" | "[" | "{" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if code[m].kind == TokenKind::Ident {
                                idents.push(code[m].text.clone());
                            }
                        }
                    }
                    if m == floor {
                        break;
                    }
                    m -= 1;
                }
                j = m;
                continue;
            }
            "." | "::" => {
                j -= 1;
                continue;
            }
            _ => {}
        }
        if prev.kind == TokenKind::Ident {
            idents.push(prev.text.clone());
            j -= 1;
            continue;
        }
        break;
    }
    idents
}

/// Heuristic bound-check detection: the cast counts as guarded when the
/// operand chain itself clamps (`.min(…)`, `.clamp(…)`, `try_from`), or
/// when an earlier token in the same function compares one of the
/// operand's identifiers (`x < LIMIT`, `assert!(n <= u16::MAX …)`). This
/// errs toward trusting a visible comparison — the reviewer-facing signal
/// — and `lint:allow(W2)` documents anything subtler.
fn cast_is_guarded(code: &[&Token], body_open: usize, as_idx: usize, chain: &[String]) -> bool {
    if chain
        .iter()
        .any(|c| CLAMPING_METHODS.contains(&c.as_str()) || c == "try_from")
    {
        return true;
    }
    // Identifiers that can meaningfully appear in a bound comparison:
    // drop `self` (ubiquitous) and primitive type names.
    let meaningful: Vec<&str> = chain
        .iter()
        .map(String::as_str)
        .filter(|c| *c != "self" && !INT_TARGETS.contains(c) && !FLOAT_EVIDENCE.contains(c))
        .collect();
    if meaningful.is_empty() {
        return false;
    }
    for j in body_open + 1..as_idx {
        if !(code[j].is_punct("<") || code[j].is_punct(">")) {
            continue;
        }
        let left_hit = code
            .get(j.wrapping_sub(1))
            .is_some_and(|t| t.kind == TokenKind::Ident && meaningful.contains(&t.text.as_str()));
        // The right operand may start with `=` (`<=`, `>=` lex as two
        // tokens) or a path prefix.
        let mut r = j + 1;
        if code.get(r).is_some_and(|t| t.is_punct("=")) {
            r += 1;
        }
        let right_hit = code
            .get(r)
            .is_some_and(|t| t.kind == TokenKind::Ident && meaningful.contains(&t.text.as_str()));
        if left_hit || right_hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/net/src/tcp.rs"), Some("net"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn allow_on_same_or_next_line_suppresses() {
        let src = "\
use std::collections::HashMap; // lint:allow(D2): lookup-only proof here\n\
// lint:allow(D2): field is never iterated\n\
struct S { m: HashMap<u32, u32> }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "expected clean, got {f:?}");
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // lint:allow(D2)\n";
        let f = lint_source("crates/core/src/x.rs", src);
        let rules: Vec<_> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"A1"), "missing A1 in {f:?}");
        assert!(rules.contains(&"D2"), "allow without reason must not suppress: {f:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let f = lint_source("crates/core/src/x.rs", "// lint:allow(Z9): because\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let src = "\
pub fn ok() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    fn f() { let x: Option<u32> = None; x.unwrap(); }\n\
}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        assert!(lint_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn d1_fires_on_wall_clock_and_ambient_rng() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "D1").count(), 2, "{f:?}");
        // Same code in a non-deterministic crate is fine.
        assert!(lint_source("crates/net/src/x.rs", src)
            .iter()
            .all(|f| f.rule != "D1"));
    }

    #[test]
    fn p1_fires_only_on_calls_not_fields() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\nstruct S { unwrap: u32 }\n";
        let f = lint_source("crates/net/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn w2_flags_unguarded_narrowing_in_wire_crates() {
        let src = "fn f(len: usize, buf: &mut Vec<u8>) { buf.push(len as u8); }\n";
        let f = lint_source("crates/types/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "W2").count(), 1, "{f:?}");
        // Same code outside the wire crates is quiet.
        assert!(lint_source("crates/sim/src/x.rs", src).iter().all(|f| f.rule != "W2"));
        // And in test code.
        let test_src = "#[cfg(test)]\nmod tests { fn f(n: usize) -> u8 { n as u8 } }\n";
        assert!(lint_source("crates/types/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn w2_accepts_guarded_and_clamped_casts() {
        // Explicit comparison on the operand before the cast.
        let guarded = "\
fn f(body_len: usize) -> u32 {\n\
    if body_len > MAX_FRAME { return 0; }\n\
    body_len as u32\n\
}\n";
        assert!(lint_source("crates/net/src/x.rs", guarded).is_empty());
        // Clamped chain.
        let clamped = "fn f(n: u64) -> u16 { n.min(65535) as u16 }\n";
        assert!(lint_source("crates/types/src/x.rs", clamped).is_empty());
        // Assert-style guard.
        let asserted = "fn f(ns: f64) -> u64 { assert!(ns <= MAX_NS); ns.round() as u64 }\n";
        assert!(lint_source("crates/types/src/x.rs", asserted).is_empty());
        // A reasoned allow.
        let allowed = "\
fn f(b: bool, buf: &mut Vec<u8>) {\n\
    buf.push(b as u8); // lint:allow(W2): bool is 0 or 1, always fits\n\
}\n";
        assert!(lint_source("crates/types/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn w2_flags_unguarded_float_to_int_at_any_width() {
        let src = "fn f(x: f64) -> u64 { (x * 2.0).round() as u64 }\n";
        let f = lint_source("crates/types/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "W2").count(), 1, "{f:?}");
        // Widening int→int at u64 stays quiet (no float evidence).
        let widen = "fn f(x: u32) -> u64 { x as u64 }\n";
        assert!(lint_source("crates/types/src/x.rs", widen).is_empty());
    }

    #[test]
    fn p1_covers_the_decode_files_outside_net() {
        // The envelope codec and the durable decided log decode remote /
        // crash-torn bytes: a panic there takes the process down on input
        // it does not control, exactly the hazard P1 exists for.
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        for file in REMOTE_INPUT_FILES {
            let f = lint_source(file, src);
            assert_eq!(f.iter().filter(|f| f.rule == "P1").count(), 1, "{file}: {f:?}");
        }
        // The rest of `core` keeps its crate-level scope (no P1).
        assert!(lint_source("crates/core/src/node.rs", src).is_empty());
    }

    #[test]
    fn w1_covers_the_catch_up_frames() {
        // Matching the catch-up variants through an imported path must
        // still count as wire-facing: a wildcard arm here would silently
        // drop a future frame kind.
        let src = "fn f(e: E) -> u32 { match e { CatchUpRequest::X => 1, _ => 0 } }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "W1").count(), 1, "{f:?}");
    }

    #[test]
    fn w1_needs_both_wire_enum_and_wildcard() {
        let over_wire = "fn f(e: E) -> u32 { match e { ConsMsg::Nack => 1, _ => 0 } }\n";
        let f = lint_source("crates/core/src/x.rs", over_wire);
        assert_eq!(f.iter().filter(|f| f.rule == "W1").count(), 1, "{f:?}");
        // Wildcard over a non-wire enum: quiet.
        let plain = "fn f(x: u32) -> u32 { match x { 1 => 1, _ => 0 } }\n";
        assert!(lint_source("crates/core/src/x.rs", plain).is_empty());
        // Exhaustive match over a wire enum: quiet.
        let exhaustive = "fn f(m: FdMsg) { match m { FdMsg::Heartbeat(h) => drop(h) } }\n";
        assert!(lint_source("crates/fd/src/x.rs", exhaustive).is_empty());
        // `Some(_)` patterns are not wildcard arms.
        let inner = "fn f(m: Option<u32>) -> u32 { match m { Some(_) => ConsMsg::x(), None => 0 } }\n";
        assert!(lint_source("crates/core/src/x.rs", inner).is_empty());
    }
}
