// Fixture: rule A1 must fire — allows without a reason (or naming an
// unknown rule) are findings and suppress nothing. Linted as
// `crates/core/src/fixture.rs`.

// lint:allow(D2)
use std::collections::HashMap;

// lint:allow(Q9): no such rule
pub struct S {
    m: HashMap<u32, u32>,
}
