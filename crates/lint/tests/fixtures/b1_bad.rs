// Fixture: rule B1 must fire — blocking I/O while the queue guard is
// live, both directly (`flush_locked`) and through a call
// (`flush_via_helper`). Analyzed as `crates/net/src/fixture.rs`.
use std::io::Write;

pub struct Flusher {
    state: std::sync::Mutex<Vec<u8>>,
}

impl Flusher {
    pub fn flush_locked(&self, stream: &mut std::net::TcpStream) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        stream.write_all(&s).ok();
    }

    pub fn flush_via_helper(&self, stream: &mut std::net::TcpStream) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.helper(stream, &s);
    }

    fn helper(&self, stream: &mut std::net::TcpStream, bytes: &[u8]) {
        stream.write_all(bytes).ok();
    }
}
