// Fixture: rule B1 must stay quiet — the batch is moved out under the
// guard, the guard is dropped (explicitly or by scope), and only then
// does the write happen. The condvar wait releases its own guard's lock,
// so it is not a hold-while-blocking hazard either. Analyzed as
// `crates/net/src/fixture.rs`.
use std::io::Write;

pub struct Flusher {
    state: std::sync::Mutex<Vec<u8>>,
    ready: std::sync::Condvar,
}

impl Flusher {
    pub fn flush_after_drop(&self, stream: &mut std::net::TcpStream) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let batch = std::mem::take(&mut *s);
        drop(s);
        stream.write_all(&batch).ok();
    }

    pub fn flush_after_scope(&self, stream: &mut std::net::TcpStream) {
        let batch = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *s)
        };
        stream.write_all(&batch).ok();
    }

    pub fn next_batch(&self) -> Vec<u8> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !s.is_empty() {
                return std::mem::take(&mut *s);
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}
