// Fixture: rule D1 must fire — wall clock and ambient randomness in a
// deterministic crate. Linted as `crates/sim/src/fixture.rs`.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
