// Fixture: rule D1 must stay quiet — sim time only, seeded RNG threaded
// through. Linted as `crates/sim/src/fixture.rs`.
pub fn stamp(now: Time) -> Time {
    now
}

pub fn roll(rng: &mut SplitMix64) -> u64 {
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    // Wall clock in a test module is fine: tests are not sim-reachable.
    #[test]
    fn timing() {
        let _t = std::time::Instant::now();
    }
}
