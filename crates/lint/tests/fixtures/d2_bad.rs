// Fixture: rule D2 must fire — hash collections in a deterministic crate.
// Linted as `crates/core/src/fixture.rs`.
use std::collections::{HashMap, HashSet};

pub struct State {
    pending: HashMap<u64, Vec<u8>>,
    seen: HashSet<u64>,
}

impl State {
    pub fn drain(&mut self) -> Vec<u64> {
        // Iterating a hash map: order leaks into the output.
        self.pending.keys().copied().collect()
    }
}
