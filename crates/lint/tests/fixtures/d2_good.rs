// Fixture: rule D2 must stay quiet — ordered collections, plus one
// annotated lookup-only hash map. Linted as `crates/core/src/fixture.rs`.
use std::collections::{BTreeMap, BTreeSet};

pub struct State {
    pending: BTreeMap<u64, Vec<u8>>,
    seen: BTreeSet<u64>,
    // lint:allow(D2): lookup-only cache, never iterated
    cache: std::collections::HashMap<u64, u64>,
}

impl State {
    pub fn drain(&mut self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    pub fn cached(&self, k: u64) -> Option<u64> {
        self.cache.get(&k).copied()
    }
}
