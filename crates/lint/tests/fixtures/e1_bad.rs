// Fixture: rule E1 must fire — blocking operations inside the event-loop
// module, both directly (`drain_peer` writes, `idle` sleeps) and through
// a call into a helper that blocks (`flush_all` → `flush_one`). Analyzed
// as `crates/net/src/event_loop.rs`.
use std::io::Write;

pub fn drain_peer(stream: &mut std::net::TcpStream, batch: &[u8]) {
    stream.write_all(batch).ok();
}

pub fn idle() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn flush_all(stream: &mut std::net::TcpStream, batches: &[Vec<u8>]) {
    for b in batches {
        flush_one(stream, b);
    }
}

fn flush_one(stream: &mut std::net::TcpStream, bytes: &[u8]) {
    stream.write_all(bytes).ok();
}
