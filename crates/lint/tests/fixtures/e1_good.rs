// Fixture: rule E1 must stay quiet — the loop never parks. Frames move
// through nonblocking try-calls, the single sanctioned parking point
// (the poller wait) carries a reasoned allow, and the shutdown join runs
// on the caller's thread, not the loop (also allowed). Analyzed as
// `crates/net/src/event_loop.rs`.

pub struct EventLoop {
    poller: Poller,
}

impl EventLoop {
    pub fn run(&mut self, peers: &mut [Peer]) {
        loop {
            // lint:allow(E1): poll(2) with a bounded tick is the loop's one sanctioned parking point
            self.poller.wait(peers);
            for p in peers.iter_mut() {
                if let Some(batch) = p.queue.try_take_batch() {
                    p.scratch.extend_from_slice(&batch);
                }
            }
        }
    }
}

pub struct Handle {
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Handle {
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            // lint:allow(E1): shutdown path on the caller's thread — the loop itself never joins
            let _ = t.join();
        }
    }
}
