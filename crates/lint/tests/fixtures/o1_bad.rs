// Fixture: rule O1 must fire — a genuine two-lock order inversion across
// two functions. `drain` takes `pending` then `flushing`; `requeue` takes
// them in the opposite order, so a thread in each can deadlock. Analyzed
// as `crates/net/src/fixture.rs` through `analyze_files`.
pub struct Queues {
    pending: std::sync::Mutex<Vec<u8>>,
    flushing: std::sync::Mutex<Vec<u8>>,
}

impl Queues {
    pub fn drain(&self) {
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        let mut f = self.flushing.lock().unwrap_or_else(|e| e.into_inner());
        f.append(&mut p);
    }

    pub fn requeue(&self) {
        let mut f = self.flushing.lock().unwrap_or_else(|e| e.into_inner());
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        p.append(&mut f);
    }
}
