// Fixture: rule O1 must stay quiet — every path takes `pending` before
// `flushing` (one canonical order), including a nested acquisition that
// happens through a call. Analyzed as `crates/net/src/fixture.rs`.
pub struct Queues {
    pending: std::sync::Mutex<Vec<u8>>,
    flushing: std::sync::Mutex<Vec<u8>>,
}

impl Queues {
    pub fn drain(&self) {
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        let mut f = self.flushing.lock().unwrap_or_else(|e| e.into_inner());
        f.append(&mut p);
    }

    pub fn requeue(&self) {
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        self.take_flushing(&mut p);
    }

    fn take_flushing(&self, p: &mut Vec<u8>) {
        let mut f = self.flushing.lock().unwrap_or_else(|e| e.into_inner());
        p.append(&mut f);
    }
}
