// Fixture: rule P1 must fire — panics on the remote-input path. Linted as
// `crates/net/src/fixture.rs`.
pub fn decode(buf: &[u8]) -> u32 {
    let len: [u8; 4] = buf[0..4].try_into().expect("4 bytes");
    if buf.len() < 4 {
        panic!("short frame");
    }
    u32::from_le_bytes(len)
}

pub fn route(tag: u8) -> &'static str {
    match tag {
        0 => "data",
        1 => "ack",
        _ => unreachable!("unknown tag"),
    }
}

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}
