// Fixture: rule P1 must stay quiet — errors propagate, the connection gets
// poisoned, the process survives. Linted as `crates/net/src/fixture.rs`.
pub fn decode(buf: &[u8]) -> Result<u32, &'static str> {
    if buf.len() < 4 {
        return Err("short frame");
    }
    Ok(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]))
}

pub fn route(tag: u8) -> Result<&'static str, &'static str> {
    match tag {
        0 => Ok("data"),
        1 => Ok("ack"),
        _ => Err("unknown tag"),
    }
}

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // Unwrap in a test module is fine: tests run on local input.
    #[test]
    fn round_trip() {
        assert_eq!(super::decode(&[1, 0, 0, 0]).unwrap(), 1);
    }
}
