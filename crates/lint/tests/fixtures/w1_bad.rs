// Fixture: rule W1 must fire — wildcard arm in a match over a wire enum.
// Linted as `crates/core/src/fixture.rs`.
pub fn classify(e: &Envelope) -> u8 {
    match e {
        Envelope::Cons(ConsMsg::Propose(_)) => 0,
        Envelope::Cons(ConsMsg::Ack(_)) => 1,
        _ => 2,
    }
}
