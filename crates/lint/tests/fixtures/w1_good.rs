// Fixture: rule W1 must stay quiet — every variant named over the wire
// enum; wildcards over non-wire types are fine. Linted as
// `crates/core/src/fixture.rs`.
pub fn classify(m: &FdMsg) -> u8 {
    match m {
        FdMsg::Heartbeat(_) => 0,
        FdMsg::Suspect(_) => 1,
    }
}

pub fn bucket(n: u32) -> u8 {
    // Not a wire enum: a wildcard is idiomatic here.
    match n {
        0 => 0,
        1..=9 => 1,
        _ => 2,
    }
}
