// Fixture: rule W2 must fire — unguarded narrowing casts on wire-facing
// values, and an unguarded float→int cast. Linted as
// `crates/types/src/fixture.rs`.
pub fn encode_len(len: usize, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(len as u32).to_le_bytes());
}

pub fn tag_of(id: u64) -> u8 {
    id as u8
}

pub fn to_nanos(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}
