// Fixture: rule W2 must stay quiet — every narrowing conversion is either
// checked (`try_from`), visibly bounded before the cast, clamped in the
// cast chain, or carries a reasoned allow. Linted as
// `crates/types/src/fixture.rs`.
pub fn encode_len(len: usize, buf: &mut Vec<u8>) -> bool {
    let Ok(prefix) = u32::try_from(len) else { return false };
    buf.extend_from_slice(&prefix.to_le_bytes());
    true
}

pub fn bounded_len(body_len: usize, max_frame: usize, buf: &mut Vec<u8>) {
    if body_len > max_frame {
        return;
    }
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
}

pub fn clamped_tag(id: u64) -> u8 {
    id.min(255) as u8
}

pub fn to_nanos(secs: f64) -> u64 {
    assert!(secs <= MAX_SECS);
    (secs * 1e9).round() as u64
}

pub fn flag_byte(b: bool) -> u8 {
    // lint:allow(W2): bool is 0 or 1, always fits in u8
    b as u8
}

const MAX_SECS: f64 = 1e9;
