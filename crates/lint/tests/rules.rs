//! Fixture tests: every rule has a firing (`*_bad`) and a quiet
//! (`*_good`) fixture under `tests/fixtures/`. The fixtures are plain
//! source text fed through `lint_source` with a synthetic in-scope path —
//! they are not compiled.

use iabc_lint::{
    analyze_files, check_crate_deps, lint_source, package_name, parse_dependencies, Finding,
};

/// Run the flow rules (O1/B1/P1-transitive) over one fixture as if it
/// lived at `path` inside the workspace.
fn flow_findings(path: &str, source: &str) -> Vec<Finding> {
    analyze_files(&[(path.to_string(), source.to_string())])
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn assert_only_rule(findings: &[Finding], rule: &str) {
    assert!(!findings.is_empty(), "expected {rule} findings, got none");
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "expected only {rule}, got {findings:?}"
    );
}

// --- D1: wall clock / ambient randomness ------------------------------

#[test]
fn d1_bad_fires() {
    let f = lint_source("crates/sim/src/fixture.rs", include_str!("fixtures/d1_bad.rs"));
    assert_only_rule(&f, "D1");
    // Instant::now, the std::time::Instant import, thread_rng, SystemTime.
    assert!(f.len() >= 4, "{f:?}");
}

#[test]
fn d1_good_is_quiet() {
    let f = lint_source("crates/sim/src/fixture.rs", include_str!("fixtures/d1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d1_out_of_scope_is_quiet() {
    // The same hazards outside a deterministic crate are not D1's business.
    let f = lint_source("crates/net/src/fixture.rs", include_str!("fixtures/d1_bad.rs"));
    assert!(f.iter().all(|f| f.rule != "D1"), "{f:?}");
}

// --- D2: hash collections ---------------------------------------------

#[test]
fn d2_bad_fires() {
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/d2_bad.rs"));
    assert_only_rule(&f, "D2");
}

#[test]
fn d2_good_is_quiet() {
    // BTree collections plus one annotated lookup-only HashMap.
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/d2_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// --- P1: panics on remote-input paths ---------------------------------

#[test]
fn p1_bad_fires() {
    let f = lint_source("crates/net/src/fixture.rs", include_str!("fixtures/p1_bad.rs"));
    assert_only_rule(&f, "P1");
    // expect, panic!, unreachable!, unwrap.
    assert!(f.len() >= 4, "{f:?}");
}

#[test]
fn p1_good_is_quiet() {
    let f = lint_source("crates/net/src/fixture.rs", include_str!("fixtures/p1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn p1_out_of_scope_is_quiet() {
    // Panics outside the remote-input crates are not P1's business (D1/D2
    // do not fire on this fixture either — it has no clocks or hash maps).
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/p1_bad.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// --- W1: wildcard arms over wire enums --------------------------------

#[test]
fn w1_bad_fires() {
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/w1_bad.rs"));
    assert_only_rule(&f, "W1");
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn w1_good_is_quiet() {
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/w1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// --- W2: narrowing casts in wire crates --------------------------------

#[test]
fn w2_bad_fires() {
    let f = lint_source("crates/types/src/fixture.rs", include_str!("fixtures/w2_bad.rs"));
    assert_only_rule(&f, "W2");
    // len as u32, id as u8, and the unguarded float→int cast.
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn w2_good_is_quiet() {
    let f = lint_source("crates/types/src/fixture.rs", include_str!("fixtures/w2_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn w2_out_of_scope_is_quiet() {
    // The same casts outside the wire crates are not W2's business.
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/w2_bad.rs"));
    assert!(f.iter().all(|f| f.rule != "W2"), "{f:?}");
}

// --- O1: lock-order inversion ------------------------------------------

#[test]
fn o1_bad_fires() {
    let f = flow_findings("crates/net/src/fixture.rs", include_str!("fixtures/o1_bad.rs"));
    assert_only_rule(&f, "O1");
    // One finding at each side of the inversion.
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(
        f.iter().any(|f| f.message.contains("pending")) && f.iter().any(|f| f.message.contains("flushing")),
        "messages should name both locks: {f:?}"
    );
}

#[test]
fn o1_good_is_quiet() {
    // Consistent canonical order, including an acquisition through a call.
    let f = flow_findings("crates/net/src/fixture.rs", include_str!("fixtures/o1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// --- B1: blocking while holding a guard --------------------------------

#[test]
fn b1_bad_fires() {
    let f = flow_findings("crates/net/src/fixture.rs", include_str!("fixtures/b1_bad.rs"));
    assert_only_rule(&f, "B1");
    // The direct write under the guard, and the call into a helper that blocks.
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn b1_good_is_quiet() {
    // Guard dropped (explicitly or by scope) before the write; the condvar
    // wait releases its own guard's lock.
    let f = flow_findings("crates/net/src/fixture.rs", include_str!("fixtures/b1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// --- E1: blocking inside the event-loop module --------------------------

#[test]
fn e1_bad_fires() {
    let f = flow_findings("crates/net/src/event_loop.rs", include_str!("fixtures/e1_bad.rs"));
    assert_only_rule(&f, "E1");
    // Direct write, direct sleep, the call into the blocking helper, and
    // the helper's own write (it lives in the module set too).
    assert_eq!(f.len(), 4, "{f:?}");
}

#[test]
fn e1_good_is_quiet() {
    let f = flow_findings("crates/net/src/event_loop.rs", include_str!("fixtures/e1_good.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn e1_out_of_scope_is_quiet() {
    // The same blocking code outside the event-loop module set is not
    // E1's business (the threaded control transport blocks by design).
    let f = flow_findings("crates/net/src/tcp_threaded.rs", include_str!("fixtures/e1_bad.rs"));
    assert!(f.iter().all(|f| f.rule != "E1"), "{f:?}");
}

#[test]
fn e1_sanctions_the_poller_shims() {
    // A call from the loop into the poller module is exempt even though
    // the shim contains a `read` call — `O_NONBLOCK` makes it return
    // `WouldBlock` instead of parking. The identical helper anywhere
    // else propagates its blocking fact into the loop.
    let loop_src = "fn service(s: &mut S) { try_read_chunk(s); }\n".to_string();
    let shim = "pub fn try_read_chunk(s: &mut S) -> usize { s.stream.read(&mut s.buf).unwrap_or(0) }\n";
    let quiet = analyze_files(&[
        ("crates/net/src/event_loop.rs".to_string(), loop_src.clone()),
        ("crates/net/src/poll.rs".to_string(), shim.to_string()),
    ]);
    assert!(quiet.iter().all(|f| f.rule != "E1"), "{quiet:?}");
    let loud = analyze_files(&[
        ("crates/net/src/event_loop.rs".to_string(), loop_src),
        ("crates/net/src/io.rs".to_string(), shim.to_string()),
    ]);
    assert!(
        loud.iter().any(|f| f.rule == "E1" && f.file == "crates/net/src/event_loop.rs"),
        "{loud:?}"
    );
}

// --- A1: allow hygiene -------------------------------------------------

#[test]
fn allow_without_reason_is_flagged_and_does_not_suppress() {
    let f = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/allow_bad.rs"));
    let rules = rules_of(&f);
    // Two malformed allows (missing reason, unknown rule) ...
    assert_eq!(rules.iter().filter(|r| **r == "A1").count(), 2, "{f:?}");
    // ... and the HashMap findings they failed to suppress.
    assert_eq!(rules.iter().filter(|r| **r == "D2").count(), 2, "{f:?}");
}

// --- L1: layering ------------------------------------------------------

#[test]
fn l1_bad_fires() {
    let manifest = include_str!("fixtures/l1_bad.toml");
    let pkg = package_name(manifest).expect("fixture has a package name");
    let f = check_crate_deps(&pkg, "crates/sim/Cargo.toml", &parse_dependencies(manifest));
    assert_only_rule(&f, "L1");
    // sim → net (same layer) and sim → bench (terminal).
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn l1_good_is_quiet() {
    let manifest = include_str!("fixtures/l1_good.toml");
    let pkg = package_name(manifest).expect("fixture has a package name");
    let f = check_crate_deps(&pkg, "crates/sim/Cargo.toml", &parse_dependencies(manifest));
    assert!(f.is_empty(), "{f:?}");
}
