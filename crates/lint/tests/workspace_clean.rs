//! The workspace must ship lint-clean: `run_workspace` over the real repo
//! returns zero findings. This is the same check CI runs via the binary —
//! having it in `cargo test` means a plain test run catches a regression
//! before the lint step does.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
}

#[test]
fn workspace_is_lint_clean() {
    let report = iabc_lint::run_workspace(workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 0, "scan found no files — wrong root?");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn all_rules_are_enabled() {
    // The clean run above only means something if the full rule set is on.
    // Guard against a rule being dropped from the registry.
    for rule in ["D1", "D2", "P1", "W1", "W2", "O1", "B1", "E1", "L1"] {
        assert!(
            iabc_lint::RULES.contains(&rule),
            "rule {rule} missing from RULES — workspace_is_lint_clean no longer covers it"
        );
    }
}

#[test]
fn workspace_findings_get_stable_ids() {
    // Every finding the scanner could emit must carry a content-hash id,
    // or `--baseline` delta mode silently stops matching. The workspace is
    // clean, so exercise the id path on a synthetic finding instead.
    let src = "pub fn f(x: u64) -> u8 { x as u8 }\n";
    let mut findings = iabc_lint::lint_source("crates/types/src/fixture.rs", src);
    assert!(!findings.is_empty(), "fixture should produce a W2 finding");
    iabc_lint::assign_ids(&mut findings, &|path| {
        (path == "crates/types/src/fixture.rs").then(|| src.to_string())
    });
    for f in &findings {
        assert!(
            f.id.starts_with(&format!("{}-", f.rule)),
            "finding id should be rule-prefixed: {f:?}"
        );
    }
}
