//! The workspace must ship lint-clean: `run_workspace` over the real repo
//! returns zero findings. This is the same check CI runs via the binary —
//! having it in `cargo test` means a plain test run catches a regression
//! before the lint step does.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up");
    let report = iabc_lint::run_workspace(root).expect("workspace scan");
    assert!(report.files_scanned > 0, "scan found no files — wrong root?");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
