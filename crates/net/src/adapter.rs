//! The node adapter shared by both TCP transports: forwards remote sends
//! into per-peer outbound queues.

use std::sync::Arc;

use iabc_runtime::Node;
use iabc_types::{Encode, ProcessId};

use crate::event_loop::Waker;
use crate::queue::PeerQueue;

/// `outbound[i][j]`: the queue feeding the `i → j` connection's drainer
/// (`None` on the diagonal).
pub(crate) type OutboundMesh<M> = Vec<Vec<Option<Arc<PeerQueue<M>>>>>;

/// Adapter node: intercepts `Send` actions for remote peers and enqueues
/// them for the peer connection's drainer; self-sends and everything else
/// pass through. With a [`Waker`] attached (the event-driven transport),
/// one wake per action batch tells the I/O loop the queues changed; the
/// threaded transport passes `None` (its flushers park on the queue
/// condvar instead).
pub(crate) struct MsgOverTcp<N: Node> {
    pub(crate) node: N,
    pub(crate) me: ProcessId,
    pub(crate) writers: Vec<Option<Arc<PeerQueue<N::Msg>>>>,
    pub(crate) waker: Option<Arc<Waker>>,
}

impl<N: Node> std::fmt::Debug for MsgOverTcp<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgOverTcp").field("me", &self.me).finish()
    }
}

impl<N> Node for MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    type Msg = N::Msg;
    type Command = N::Command;
    type Output = N::Output;

    fn on_start(&mut self, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_start(ctx);
        self.redirect(ctx);
    }

    fn on_command(&mut self, cmd: Self::Command, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_command(cmd, ctx);
        self.redirect(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>,
    ) {
        self.node.on_message(from, msg, ctx);
        self.redirect(ctx);
    }

    fn on_timer(&mut self, timer: iabc_runtime::TimerId, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_timer(timer, ctx);
        self.redirect(ctx);
    }
}

impl<N> MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    /// Rewrites remote sends into outbound-queue pushes, keeping
    /// everything else; wakes the I/O loop once per action batch if any
    /// push landed.
    fn redirect(&mut self, ctx: &mut iabc_runtime::Context<N::Msg, N::Output>) {
        use iabc_runtime::Action;
        let actions = ctx.take_actions();
        let mut pushed = false;
        for action in actions {
            match action {
                Action::Send { to, msg } if to != self.me => {
                    if let Some(queue) = &self.writers[to.as_usize()] {
                        // A dead peer's queue is closed: drops silently.
                        queue.enqueue(msg);
                        pushed = true;
                    }
                }
                other => {
                    // Self-sends, timers, work, outputs: hand back to the
                    // channel machinery.
                    match other {
                        Action::Send { to, msg } => ctx.send(to, msg),
                        Action::SetTimer { delay, timer } => ctx.set_timer(delay, timer),
                        Action::Work { duration } => ctx.work(duration),
                        Action::Output(o) => ctx.output(o),
                    }
                }
            }
        }
        if pushed {
            if let Some(waker) = &self.waker {
                waker.wake();
            }
        }
    }
}
