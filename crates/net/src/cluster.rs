//! In-process thread cluster: one thread per node, channels as links.

use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use iabc_runtime::{Action, Context, Node, TimerId};
use iabc_types::{ProcessId, Time};

use crate::NetOutput;

enum Input<M, C> {
    Msg(ProcessId, M),
    Cmd(C),
    Stop,
}

/// A pending wall-clock timer.
struct PendingTimer {
    due: Instant,
    timer: TimerId,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.timer == other.timer
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due) // min-heap
    }
}

/// Runs `n` nodes on `n` OS threads connected by in-process channels.
///
/// # Example
///
/// ```
/// use iabc_core::stacks::{self, StackParams};
/// use iabc_core::{AbcastCommand, AbcastEvent};
/// use iabc_net::ThreadCluster;
/// use iabc_types::{Payload, ProcessId};
///
/// let params = StackParams::fault_free(3);
/// let mut cluster = ThreadCluster::start(3, |p| stacks::indirect_ct(p, &params));
/// cluster.send_command(ProcessId::new(0), AbcastCommand::Broadcast(Payload::zeroed(8)));
/// let outputs = cluster.run_for(std::time::Duration::from_millis(300));
/// let deliveries = outputs
///     .iter()
///     .filter(|o| matches!(o.output, AbcastEvent::Delivered { .. }))
///     .count();
/// assert_eq!(deliveries, 3);
/// cluster.shutdown();
/// ```
pub struct ThreadCluster<N: Node> {
    inputs: Vec<Sender<Input<N::Msg, N::Command>>>,
    outputs: Receiver<NetOutput<N::Output>>,
    handles: Vec<JoinHandle<()>>,
}

impl<N> ThreadCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: Send,
    N::Command: Send,
    N::Output: Send,
{
    /// Builds the nodes with `factory` and starts one thread per node.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn start(n: usize, mut factory: impl FnMut(ProcessId) -> N) -> Self {
        assert!(n > 0, "need at least one process");
        // Process ids travel as u16 on the wire; the cast below is bounded
        // by this assert.
        assert!(n <= usize::from(u16::MAX) + 1, "process ids are u16 on the wire");
        let epoch = Instant::now();
        let (out_tx, out_rx) = unbounded();
        let channels: Vec<(Sender<_>, Receiver<_>)> = (0..n).map(|_| unbounded()).collect();
        let inputs: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let mut handles = Vec::with_capacity(n);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            // lint:allow(W2): i < n and start() asserts n fits in u16
            let me = ProcessId::new(i as u16);
            let node = factory(me);
            let peers = inputs.clone();
            let out_tx = out_tx.clone();
            handles.push(std::thread::spawn(move || {
                node_loop(node, me, n, epoch, rx, peers, out_tx);
            }));
        }
        ThreadCluster { inputs, outputs: out_rx, handles }
    }

    /// Sends an application command to process `p`.
    pub fn send_command(&self, p: ProcessId, cmd: N::Command) {
        // A send to a stopped node is not an error for the caller.
        let _ = self.inputs[p.as_usize()].send(Input::Cmd(cmd));
    }

    /// Returns an injector that feeds messages into `p`'s input queue as if
    /// they came off the network — the hook alternative transports (TCP)
    /// use to deliver decoded frames. The injector reports `Err(())` once
    /// the node has stopped.
    pub fn message_injector(
        &self,
        p: ProcessId,
    ) -> impl Fn(ProcessId, N::Msg) -> Result<(), ()> + Send + 'static {
        let tx = self.inputs[p.as_usize()].clone();
        move |from, msg| tx.send(Input::Msg(from, msg)).map_err(|_| ())
    }

    /// Collects outputs for (wall-clock) `dur`, then returns them.
    pub fn run_for(&mut self, dur: std::time::Duration) -> Vec<NetOutput<N::Output>> {
        let deadline = Instant::now() + dur;
        let mut out = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.outputs.recv_timeout(deadline - now) {
                Ok(rec) => out.push(rec),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    /// Collects outputs until `count` have arrived or `timeout` elapses —
    /// the latency-friendly alternative to [`ThreadCluster::run_for`] when
    /// the caller knows how many outputs to expect (benches, tests): it
    /// returns the moment the last expected output lands instead of
    /// sleeping out a fixed window.
    pub fn wait_for_outputs(
        &mut self,
        count: usize,
        timeout: std::time::Duration,
    ) -> Vec<NetOutput<N::Output>> {
        let deadline = Instant::now() + timeout;
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.outputs.recv_timeout(deadline - now) {
                Ok(rec) => out.push(rec),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    /// Stops all node threads and waits for them.
    pub fn shutdown(mut self) {
        for tx in &self.inputs {
            let _ = tx.send(Input::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn node_loop<N>(
    mut node: N,
    me: ProcessId,
    n: usize,
    epoch: Instant,
    rx: Receiver<Input<N::Msg, N::Command>>,
    peers: Vec<Sender<Input<N::Msg, N::Command>>>,
    out_tx: Sender<NetOutput<N::Output>>,
) where
    N: Node,
{
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let now_time = |epoch: Instant| Time::from_nanos(epoch.elapsed().as_nanos() as u64);

    // Start the node.
    let mut ctx = Context::new(me, n, now_time(epoch));
    node.on_start(&mut ctx);
    apply::<N>(me, &mut ctx, &mut timers, &peers, &out_tx, epoch);

    loop {
        // Fire due timers.
        let now = Instant::now();
        while timers.peek().is_some_and(|t| t.due <= now) {
            let Some(t) = timers.pop() else { break };
            let mut ctx = Context::new(me, n, now_time(epoch));
            node.on_timer(t.timer, &mut ctx);
            apply::<N>(me, &mut ctx, &mut timers, &peers, &out_tx, epoch);
        }
        // Wait for input until the next timer is due.
        let wait = timers
            .peek()
            .map(|t| t.due.saturating_duration_since(Instant::now()))
            .unwrap_or(std::time::Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(Input::Msg(from, msg)) => {
                let mut ctx = Context::new(me, n, now_time(epoch));
                node.on_message(from, msg, &mut ctx);
                apply::<N>(me, &mut ctx, &mut timers, &peers, &out_tx, epoch);
            }
            Ok(Input::Cmd(cmd)) => {
                let mut ctx = Context::new(me, n, now_time(epoch));
                node.on_command(cmd, &mut ctx);
                apply::<N>(me, &mut ctx, &mut timers, &peers, &out_tx, epoch);
            }
            Ok(Input::Stop) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn apply<N: Node>(
    me: ProcessId,
    ctx: &mut Context<N::Msg, N::Output>,
    timers: &mut BinaryHeap<PendingTimer>,
    peers: &[Sender<Input<N::Msg, N::Command>>],
    out_tx: &Sender<NetOutput<N::Output>>,
    epoch: Instant,
) {
    for action in ctx.take_actions() {
        match action {
            Action::Send { to, msg } => {
                let _ = peers[to.as_usize()].send(Input::Msg(me, msg));
            }
            Action::SetTimer { delay, timer } => {
                timers.push(PendingTimer { due: Instant::now() + delay.into(), timer });
            }
            Action::Work { .. } => {} // real CPUs charge themselves
            Action::Output(output) => {
                let _ = out_tx.send(NetOutput {
                    at: Time::from_nanos(epoch.elapsed().as_nanos() as u64),
                    process: me,
                    output,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::WireSize;

    #[derive(Clone, Debug)]
    struct Ping(u8);
    impl WireSize for Ping {
        fn wire_size(&self) -> usize {
            1
        }
    }

    /// Relay-once node: p0 sends to all on command; everyone outputs.
    struct Echo;
    impl Node for Echo {
        type Msg = Ping;
        type Command = u8;
        type Output = (ProcessId, u8);

        fn on_command(&mut self, cmd: u8, ctx: &mut Context<Ping, (ProcessId, u8)>) {
            ctx.send_to_all(Ping(cmd));
        }

        fn on_message(&mut self, from: ProcessId, m: Ping, ctx: &mut Context<Ping, (ProcessId, u8)>) {
            ctx.output((from, m.0));
        }
    }

    #[test]
    fn fanout_over_threads() {
        let mut cluster = ThreadCluster::start(3, |_| Echo);
        cluster.send_command(ProcessId::new(0), 9);
        let outs = cluster.run_for(std::time::Duration::from_millis(200));
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.output == (ProcessId::new(0), 9)));
        cluster.shutdown();
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        struct Alarm;
        impl Node for Alarm {
            type Msg = Ping;
            type Command = ();
            type Output = u64;
            fn on_start(&mut self, ctx: &mut Context<Ping, u64>) {
                ctx.set_timer(iabc_types::Duration::from_millis(20), TimerId::new(1, 5));
            }
            fn on_timer(&mut self, t: TimerId, ctx: &mut Context<Ping, u64>) {
                ctx.output(t.data());
            }
        }
        let mut cluster = ThreadCluster::start(1, |_| Alarm);
        let outs = cluster.run_for(std::time::Duration::from_millis(300));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].output, 5);
        assert!(outs[0].at >= Time::from_nanos(15_000_000), "fired too early: {:?}", outs[0].at);
        cluster.shutdown();
    }
}
