//! Length-prefixed framing for TCP transports.

use std::io::{self, Read, Write};

use iabc_types::{Decode, Encode};

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes taking the process down.
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one `[u32 length][body]` frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer; fails if the encoded value
/// exceeds [`MAX_FRAME`].
pub fn write_frame<T: Encode, W: Write>(value: &T, w: &mut W) -> io::Result<()> {
    let body = value.to_bytes();
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one `[u32 length][body]` frame and decodes it.
///
/// # Errors
///
/// Propagates I/O errors; fails on oversized frames or malformed bodies.
pub fn read_frame<T: Decode, R: Read>(r: &mut R) -> io::Result<T> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    T::from_bytes(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// An incremental frame decoder for non-blocking readers (accumulates
/// bytes, yields complete frames).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    // Consumed prefix of `buf`: frames are dropped O(1) by advancing this
    // cursor, and the buffer is compacted only once the live region starts
    // deep enough to amortize the memmove.
    start: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes from the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Fails on oversized or malformed frames.
    pub fn next_frame<T: Decode>(&mut self) -> io::Result<Option<T>> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let value = T::from_bytes(&pending[4..4 + len])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.start += 4 + len;
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_cursor() {
        let mut buf = Vec::new();
        write_frame(&0xDEAD_BEEFu32, &mut buf).unwrap();
        write_frame(&7u32, &mut buf).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame::<u32, _>(&mut cursor).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_frame::<u32, _>(&mut cursor).unwrap(), 7);
    }

    #[test]
    fn frame_buffer_handles_partial_input() {
        let mut wire = Vec::new();
        write_frame(&42u64, &mut wire).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..3]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
        fb.extend(&wire[3..7]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
        fb.extend(&wire[7..]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), Some(42));
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(fb.next_frame::<u64>().is_err());
    }

    #[test]
    fn truncated_read_errors() {
        let mut cursor = io::Cursor::new(vec![4u8, 0, 0, 0, 1, 2]); // body cut short
        assert!(read_frame::<u32, _>(&mut cursor).is_err());
    }
}
