//! Length-prefixed framing for TCP transports.

use std::io::{self, Read, Write};

use iabc_types::{Decode, Encode, ProcessId};

use crate::pool::{BufferPool, PooledBuf};

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes taking the process down.
pub const MAX_FRAME: usize = 16 << 20;

/// Appends one `[u32 length][body]` frame to `scratch` without allocating:
/// the value encodes directly into the buffer and the length prefix is
/// patched afterwards. Callers that hold the buffer across frames (the TCP
/// flusher coalescing a whole queue into one `write_all`) amortize the
/// allocation to zero.
///
/// On error the buffer is restored to its previous length, so a poisoned
/// frame never corrupts the batch around it.
///
/// # Errors
///
/// Fails if the encoded value exceeds [`MAX_FRAME`].
pub fn write_frame_into<T: Encode>(value: &T, scratch: &mut Vec<u8>) -> io::Result<()> {
    let start = scratch.len();
    scratch.extend_from_slice(&[0u8; 4]);
    value.encode(scratch);
    let body_len = scratch.len() - start - 4;
    if body_len > MAX_FRAME {
        scratch.truncate(start);
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    scratch[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    Ok(())
}

/// Writes one `[u32 length][body]` frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer; fails if the encoded value
/// exceeds [`MAX_FRAME`].
pub fn write_frame<T: Encode, W: Write>(value: &T, w: &mut W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + value.wire_size());
    write_frame_into(value, &mut buf)?;
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one `[u32 length][body]` frame and decodes it.
///
/// # Errors
///
/// Propagates I/O errors; fails on oversized frames or malformed bodies.
pub fn read_frame<T: Decode, R: Read>(r: &mut R) -> io::Result<T> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    T::from_bytes(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// An incremental frame decoder for non-blocking readers (accumulates
/// bytes, yields complete frames).
///
/// Decode errors are **sticky**: after an oversized or malformed frame the
/// buffer is poisoned and every further call fails fast — a byte stream
/// that has lost framing can never resynchronize, so retrying on the same
/// bytes would spin forever. Callers must drop the connection on the first
/// error (see `crate::tcp`).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    // Consumed prefix of `buf`: frames are dropped O(1) by advancing this
    // cursor, and the buffer is compacted only once the live region starts
    // deep enough to amortize the memmove.
    start: usize,
    poisoned: bool,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes from the wire. Bytes arriving after a decode
    /// error are discarded — the stream is already unframeable.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a previous decode error poisoned this buffer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes buffered but not yet consumed by a decoded frame (0 after
    /// poisoning — the buffer is discarded). For metrics and tests.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    fn poison(&mut self, reason: &str) -> io::Error {
        self.poisoned = true;
        self.buf = Vec::new();
        self.start = 0;
        io::Error::new(io::ErrorKind::InvalidData, reason.to_string())
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Fails on oversized or malformed frames, and on every call after the
    /// first failure (the buffer is poisoned — close the connection).
    pub fn next_frame<T: Decode>(&mut self) -> io::Result<Option<T>> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame buffer poisoned"));
        }
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME {
            return Err(self.poison("frame too large"));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        match T::from_bytes(&pending[4..4 + len]) {
            Ok(value) => {
                self.start += 4 + len;
                if self.start >= 4096 && self.start * 2 >= self.buf.len() {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(value))
            }
            Err(e) => Err(self.poison(&e.to_string())),
        }
    }
}

/// `(sender, message)` as one frame: the transport frame format is
/// `[u16 sender id][message]` inside the usual length prefix.
pub struct Tagged<'a, M> {
    /// The sending process.
    pub from: ProcessId,
    /// The message body.
    pub msg: &'a M,
}

impl<M: Encode> iabc_types::WireSize for Tagged<'_, M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Encode> Encode for Tagged<'_, M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.msg.encode(buf);
    }
}

/// Owned decode-side counterpart of [`Tagged`].
pub struct TaggedOwned<M> {
    /// The sending process.
    pub from: ProcessId,
    /// The message body.
    pub msg: M,
}

impl<M: Decode + iabc_types::WireSize> iabc_types::WireSize for TaggedOwned<M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Decode + iabc_types::WireSize> Decode for TaggedOwned<M> {
    fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
        Ok(TaggedOwned { from: ProcessId::decode(buf)?, msg: M::decode(buf)? })
    }
}

/// The receive half of the zero-copy path: a pooled buffer that sockets
/// read **directly into** ([`RecvBuffer::spare`] / [`RecvBuffer::commit`])
/// and that yields frames decoded **in place**
/// ([`iabc_types::Decode::decode_in_place`]) from the very bytes the
/// kernel wrote.
///
/// Compare [`FrameBuffer`], the owned-decode path: there the reader copies
/// every chunk from its stack buffer into the frame buffer before
/// decoding. `RecvBuffer` eliminates that re-assembly copy — payload bytes
/// are copied exactly once, slice → payload store, and nothing else on the
/// receive path copies at all.
///
/// Same framing contract as [`FrameBuffer`]: `[u32 LE length][body]`,
/// frames over [`MAX_FRAME`] rejected, and decode errors are **sticky** —
/// a stream that lost framing can never resynchronize, so after the first
/// error every call fails fast and the caller must drop the connection.
#[derive(Debug)]
pub struct RecvBuffer {
    /// The pooled arena. `buf.len()` is the arena size; `start..filled`
    /// holds undecoded wire bytes and `filled..` is writable spare.
    buf: PooledBuf,
    start: usize,
    filled: usize,
    poisoned: bool,
}

/// Default read-chunk size: how much spare [`RecvBuffer::spare`]
/// guarantees by default (matches the old reader-thread chunk).
pub const RECV_CHUNK: usize = 16 * 1024;

impl RecvBuffer {
    /// A receive buffer backed by `pool` (the arena returns to the pool
    /// when the `RecvBuffer` drops).
    pub fn new(pool: &BufferPool) -> RecvBuffer {
        RecvBuffer { buf: pool.get(), start: 0, filled: 0, poisoned: false }
    }

    /// Makes at least `min` bytes of spare room and returns the writable
    /// tail for the socket to read into; follow with
    /// [`RecvBuffer::commit`]. Compacts the consumed prefix (cursor
    /// memmove) before growing the arena, so steady-state traffic settles
    /// into a fixed-size buffer.
    pub fn spare(&mut self, min: usize) -> &mut [u8] {
        let min = min.max(1);
        if self.start == self.filled {
            // Fully drained: reset the cursors for free.
            self.start = 0;
            self.filled = 0;
        }
        if self.buf.len() - self.filled < min && self.start > 0 {
            self.buf.copy_within(self.start..self.filled, 0);
            self.filled -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.filled < min {
            let target = (self.filled + min).next_power_of_two().max(RECV_CHUNK);
            self.buf.resize(target, 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Records that the socket wrote `n` bytes into the slice returned by
    /// the last [`RecvBuffer::spare`] call.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the spare room (a transport bug, not remote
    /// input: `n` comes from `read(2)` on a slice of exactly that length).
    pub fn commit(&mut self, n: usize) {
        assert!(n <= self.buf.len() - self.filled, "commit past the spare region");
        self.filled += n;
    }

    /// Whether a previous decode error poisoned this buffer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes buffered but not yet consumed by a decoded frame (0 after
    /// poisoning — the buffer is discarded). For metrics and tests.
    pub fn pending_bytes(&self) -> usize {
        self.filled - self.start
    }

    fn poison(&mut self, reason: &str) -> io::Error {
        self.poisoned = true;
        self.buf.clear();
        self.start = 0;
        self.filled = 0;
        io::Error::new(io::ErrorKind::InvalidData, reason.to_string())
    }

    /// Extracts the next complete frame, decoding it in place from the
    /// pooled arena (no intermediate copy).
    ///
    /// # Errors
    ///
    /// Fails on oversized or malformed frames, and on every call after the
    /// first failure (the buffer is poisoned — close the connection).
    pub fn next_frame<T: Decode>(&mut self) -> io::Result<Option<T>> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "recv buffer poisoned"));
        }
        let pending = &self.buf[self.start..self.filled];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME {
            return Err(self.poison("frame too large"));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        match T::decode_in_place(&pending[4..4 + len]) {
            Ok(value) => {
                self.start += 4 + len;
                Ok(Some(value))
            }
            Err(e) => Err(self.poison(&e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_frame_into_reuses_the_scratch_buffer() {
        let mut scratch = Vec::new();
        write_frame_into(&1u32, &mut scratch).unwrap();
        write_frame_into(&2u64, &mut scratch).unwrap();
        write_frame_into(&3u16, &mut scratch).unwrap();
        // The coalesced batch decodes frame by frame.
        let mut fb = FrameBuffer::new();
        fb.extend(&scratch);
        assert_eq!(fb.next_frame::<u32>().unwrap(), Some(1));
        assert_eq!(fb.next_frame::<u64>().unwrap(), Some(2));
        assert_eq!(fb.next_frame::<u16>().unwrap(), Some(3));
        assert_eq!(fb.pending_bytes(), 0);
        // And is byte-identical to three write_frame calls.
        let mut wire = Vec::new();
        write_frame(&1u32, &mut wire).unwrap();
        write_frame(&2u64, &mut wire).unwrap();
        write_frame(&3u16, &mut wire).unwrap();
        assert_eq!(scratch, wire);
        // Reuse after clear: capacity survives, no reallocation needed.
        let cap = scratch.capacity();
        scratch.clear();
        write_frame_into(&9u32, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn write_frame_into_restores_the_buffer_on_oversize() {
        let mut scratch = Vec::new();
        write_frame_into(&7u32, &mut scratch).unwrap();
        let good_len = scratch.len();
        let huge = Blob(vec![0u8; MAX_FRAME + 1]);
        assert!(write_frame_into(&huge, &mut scratch).is_err());
        assert_eq!(scratch.len(), good_len, "failed frame must leave no partial bytes");
        // The surviving prefix still decodes.
        let mut fb = FrameBuffer::new();
        fb.extend(&scratch);
        assert_eq!(fb.next_frame::<u32>().unwrap(), Some(7));
    }

    #[test]
    fn frame_roundtrip_through_cursor() {
        let mut buf = Vec::new();
        write_frame(&0xDEAD_BEEFu32, &mut buf).unwrap();
        write_frame(&7u32, &mut buf).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame::<u32, _>(&mut cursor).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_frame::<u32, _>(&mut cursor).unwrap(), 7);
    }

    #[test]
    fn frame_buffer_handles_partial_input() {
        let mut wire = Vec::new();
        write_frame(&42u64, &mut wire).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..3]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
        fb.extend(&wire[3..7]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
        fb.extend(&wire[7..]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), Some(42));
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(fb.next_frame::<u64>().is_err());
    }

    #[test]
    fn decode_errors_are_sticky() {
        // Regression: next_frame used to leave the malformed bytes in
        // place, so a caller that retried spun on the same frame forever.
        let mut fb = FrameBuffer::new();
        // A well-formed length prefix with a malformed body: 2 bytes can
        // never decode as u64.
        fb.extend(&2u32.to_le_bytes());
        fb.extend(&[0xAB, 0xCD]);
        assert!(!fb.is_poisoned());
        assert!(fb.next_frame::<u64>().is_err(), "malformed body must fail");
        assert!(fb.is_poisoned());

        // Even a perfectly good frame appended afterwards must not revive
        // the stream: framing is already lost.
        let mut wire = Vec::new();
        write_frame(&7u64, &mut wire).unwrap();
        fb.extend(&wire);
        for _ in 0..3 {
            assert!(fb.next_frame::<u64>().is_err(), "poisoned buffer must fail fast");
        }
    }

    #[test]
    fn oversized_frame_poisons_too() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(fb.next_frame::<u64>().is_err());
        assert!(fb.is_poisoned());
        assert!(fb.next_frame::<u64>().is_err());
    }

    #[test]
    fn truncated_read_errors() {
        let mut cursor = io::Cursor::new(vec![4u8, 0, 0, 0, 1, 2]); // body cut short
        assert!(read_frame::<u32, _>(&mut cursor).is_err());
    }

    /// A test value that decodes from a body of *any* length, including
    /// zero, by consuming every remaining byte.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl iabc_types::WireSize for Blob {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }

    impl Encode for Blob {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0);
        }
    }

    impl Decode for Blob {
        fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
            let v = Blob(buf.to_vec());
            *buf = &[];
            Ok(v)
        }
    }

    #[test]
    fn zero_length_frame_is_a_complete_frame() {
        // `[0, 0, 0, 0]` is a whole frame with an empty body — it must
        // decode (for a type that accepts an empty body), not stall
        // waiting for more bytes.
        let mut fb = FrameBuffer::new();
        fb.extend(&0u32.to_le_bytes());
        assert_eq!(fb.next_frame::<Blob>().unwrap(), Some(Blob(Vec::new())));
        assert_eq!(fb.pending_bytes(), 0);
        assert!(!fb.is_poisoned());
        // For a type that *cannot* decode from an empty body, the frame is
        // malformed and poisons the buffer — it must not be skipped
        // silently or retried forever.
        let mut fb = FrameBuffer::new();
        fb.extend(&0u32.to_le_bytes());
        assert!(fb.next_frame::<u64>().is_err());
        assert!(fb.is_poisoned());
    }

    #[test]
    fn maximum_length_frame_roundtrips_and_one_more_byte_poisons() {
        // Exactly MAX_FRAME is legal...
        let body = vec![0xA5u8; MAX_FRAME];
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME as u32).to_le_bytes());
        fb.extend(&body);
        let got = fb.next_frame::<Blob>().unwrap().expect("complete frame");
        assert_eq!(got.0.len(), MAX_FRAME);
        assert_eq!(got.0, body);
        assert_eq!(fb.pending_bytes(), 0);
        // ...one byte more is rejected on the *length prefix alone*,
        // before any body bytes arrive.
        let mut fb = FrameBuffer::new();
        fb.extend(&((MAX_FRAME + 1) as u32).to_le_bytes());
        assert!(fb.next_frame::<Blob>().is_err());
        assert!(fb.is_poisoned());
    }

    #[test]
    fn length_prefix_split_across_extends_is_reassembled() {
        let mut wire = Vec::new();
        write_frame(&0xFEED_FACE_CAFE_BEEFu64, &mut wire).unwrap();
        let mut fb = FrameBuffer::new();
        // Two bytes of the 4-byte length prefix...
        fb.extend(&wire[..2]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None);
        assert_eq!(fb.pending_bytes(), 2);
        // ...the other two arrive in a later read, plus the body.
        fb.extend(&wire[2..4]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), None, "prefix alone is not a frame");
        fb.extend(&wire[4..]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), Some(0xFEED_FACE_CAFE_BEEF));
    }

    #[test]
    fn compaction_after_a_large_consumed_prefix_preserves_framing() {
        // Push the consumed cursor well past the 4096-byte compaction
        // threshold, leaving a partial frame at the tail, and verify the
        // memmove did not corrupt it.
        let mut fb = FrameBuffer::new();
        let mut expected = Vec::new();
        for i in 0..800u64 {
            let mut wire = Vec::new();
            write_frame(&i, &mut wire).unwrap();
            fb.extend(&wire);
            expected.push(i);
        }
        // A trailing partial frame: length prefix now, body later.
        let mut tail = Vec::new();
        write_frame(&0xDEAD_BEEFu64, &mut tail).unwrap();
        fb.extend(&tail[..6]);
        let mut got = Vec::new();
        while let Some(v) = fb.next_frame::<u64>().unwrap() {
            got.push(v);
        }
        assert_eq!(got, expected, "compaction corrupted decoded frames");
        assert_eq!(fb.pending_bytes(), 6, "partial tail must survive compaction");
        fb.extend(&tail[6..]);
        assert_eq!(fb.next_frame::<u64>().unwrap(), Some(0xDEAD_BEEF));
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn poisoned_buffer_stays_poisoned_across_further_extends() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(fb.next_frame::<u64>().is_err());
        assert!(fb.is_poisoned());
        // Every further extend is discarded, never buffered, and the
        // buffer keeps failing fast no matter how much well-formed data
        // arrives.
        for round in 0..3 {
            let mut wire = Vec::new();
            write_frame(&(round as u64), &mut wire).unwrap();
            fb.extend(&wire);
            assert_eq!(fb.pending_bytes(), 0, "poisoned buffer must not accumulate bytes");
            assert!(fb.next_frame::<u64>().is_err());
            assert!(fb.is_poisoned());
        }
    }

    /// Simulates a socket read: copy `bytes` into the spare region the way
    /// `read(2)` would, then commit.
    fn recv(rb: &mut RecvBuffer, bytes: &[u8]) {
        let spare = rb.spare(bytes.len());
        spare[..bytes.len()].copy_from_slice(bytes);
        rb.commit(bytes.len());
    }

    #[test]
    fn recv_buffer_decodes_frames_split_across_reads() {
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        let mut wire = Vec::new();
        write_frame(&42u64, &mut wire).unwrap();
        write_frame(&7u64, &mut wire).unwrap();
        recv(&mut rb, &wire[..3]);
        assert_eq!(rb.next_frame::<u64>().unwrap(), None);
        recv(&mut rb, &wire[3..13]);
        assert_eq!(rb.next_frame::<u64>().unwrap(), Some(42));
        assert_eq!(rb.next_frame::<u64>().unwrap(), None);
        recv(&mut rb, &wire[13..]);
        assert_eq!(rb.next_frame::<u64>().unwrap(), Some(7));
        assert_eq!(rb.pending_bytes(), 0);
    }

    #[test]
    fn recv_buffer_poisons_sticky_like_frame_buffer() {
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        recv(&mut rb, &2u32.to_le_bytes());
        recv(&mut rb, &[0xAB, 0xCD]);
        assert!(rb.next_frame::<u64>().is_err(), "malformed body must fail");
        assert!(rb.is_poisoned());
        assert_eq!(rb.pending_bytes(), 0);
        let mut wire = Vec::new();
        write_frame(&9u64, &mut wire).unwrap();
        recv(&mut rb, &wire);
        assert!(rb.next_frame::<u64>().is_err(), "poisoned buffer must fail fast");
        // Oversize length prefixes poison before any body bytes arrive.
        let mut rb = RecvBuffer::new(&pool);
        recv(&mut rb, &(u32::MAX).to_le_bytes());
        assert!(rb.next_frame::<u64>().is_err());
        assert!(rb.is_poisoned());
    }

    #[test]
    fn recv_buffer_compacts_without_corrupting_a_partial_tail() {
        // Drive the cursor far past the arena start, leave a split frame
        // pending, and verify the compaction memmove preserved it.
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        let mut expected = Vec::new();
        for i in 0..800u64 {
            let mut wire = Vec::new();
            write_frame(&i, &mut wire).unwrap();
            recv(&mut rb, &wire);
            expected.push(i);
        }
        let mut tail = Vec::new();
        write_frame(&0xDEAD_BEEFu64, &mut tail).unwrap();
        recv(&mut rb, &tail[..6]);
        let mut got = Vec::new();
        while let Some(v) = rb.next_frame::<u64>().unwrap() {
            got.push(v);
        }
        assert_eq!(got, expected, "compaction corrupted decoded frames");
        assert_eq!(rb.pending_bytes(), 6, "partial tail must survive");
        // Force a compaction+growth cycle by demanding a big spare region.
        let spare = rb.spare(64 * 1024);
        assert!(spare.len() >= 64 * 1024);
        recv(&mut rb, &tail[6..]);
        assert_eq!(rb.next_frame::<u64>().unwrap(), Some(0xDEAD_BEEF));
        assert_eq!(rb.pending_bytes(), 0);
    }

    #[test]
    fn recv_buffer_arena_returns_to_the_pool() {
        let pool = BufferPool::new();
        let rb = RecvBuffer::new(&pool);
        assert_eq!(pool.stats().in_use, 1);
        drop(rb);
        let s = pool.stats();
        assert_eq!(s.in_use, 0);
        assert_eq!(s.free, 1);
    }

    #[test]
    fn tagged_roundtrip_carries_the_sender() {
        let mut wire = Vec::new();
        write_frame(&Tagged { from: ProcessId::new(3), msg: &0xFACEu32 }, &mut wire).unwrap();
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        recv(&mut rb, &wire);
        let t = rb.next_frame::<TaggedOwned<u32>>().unwrap().expect("complete frame");
        assert_eq!(t.from, ProcessId::new(3));
        assert_eq!(t.msg, 0xFACE);
    }
}
