//! The per-process event loop of the TCP transport.
//!
//! One thread per process owns *all* of that process's socket I/O: the
//! `n-1` inbound streams (peers → us), the `n-1` outbound streams (us →
//! peers), the process's listener (mid-run re-accepts), and a wake
//! channel. Nothing here ever blocks — the loop parks only in
//! [`Poller::wait`] with a bounded timeout, reads, writes, accepts, and
//! loop-back connects are nonblocking (`WouldBlock` re-arms interest
//! instead of parking a thread), and the outbound queues are drained with
//! the nonblocking [`PeerQueue::try_take_batch`]. Lint rule `E1` enforces
//! this shape mechanically: the only sanctioned kernel doorway is
//! [`crate::poll`].
//!
//! # Receive path (decode in place)
//!
//! Each inbound stream reads directly into a pooled [`RecvBuffer`]; frames
//! are decoded in place from the arena the kernel wrote
//! ([`iabc_types::Decode::decode_in_place`]) and handed straight to the
//! node's injector — no re-assembly copy, no relay thread. A decode error
//! poisons the buffer and tears the connection down (framing is
//! unrecoverable), exactly like the threaded reader.
//!
//! # Send path (writability-driven batch drain)
//!
//! The two-lane [`PeerQueue`] semantics survive unchanged: a drain takes
//! everything pending, ordering frames first, encodes the batch into
//! pooled scratch and pushes it with one vectored write. What changed is
//! who runs it: a writability event (or a wake after a push) drives the
//! drain on the loop thread. A **partial write parks the remainder in the
//! pooled scratch** and re-arms `POLLOUT`; when the kernel drains, the
//! suffix goes out and the next batch is pulled.
//!
//! # Partition healing (reconnect with backoff)
//!
//! A write error or reader EOF no longer closes the peer's queue for
//! good. When the link has a reconnect address, the loop instead flips
//! the queue into **down-mode** (nonblocking pushes; ordering retained,
//! bulk shed past a watermark — see [`crate::queue`]), discards the
//! half-sent scratch (those frames died in flight, quasi-reliable
//! channels lose exactly such messages; the protocol layer repairs them
//! through catch-up and the sender's pending-set re-flood), and hands the
//! peer to the [`Reconnector`]: an immediate first attempt, then
//! exponential backoff with deterministic jitter capped at ~1 s, at most
//! one attempt in flight. A successful loop-back connect re-runs the
//! 2-byte id handshake, reopens the queue, and the next drain flushes the
//! parked ordering backlog — the decided-frontier piggyback on those
//! frames is what pulls both sides back together. Inbound, the loop polls
//! its listener, accepts replacement connections mid-run, and consumes
//! their handshake bytes before promoting them to readers.
//!
//! An optional [`NetFaultPlan`] drives nemesis runs: partition windows
//! sever the matching links once per tick (and gate reconnect attempts
//! until the window closes); per-frame drop/duplicate verdicts apply at
//! encode time. Without a plan, none of that code runs on the frame path.
//!
//! # Fairness
//!
//! Reads are capped per stream per tick ([`MAX_READS_PER_TICK`]) so a
//! loop-back peer that refills its socket as fast as we drain it cannot
//! starve the other connections; level-triggered polling re-arms the
//! stream on the next tick.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

use iabc_types::{Decode, Duration, Encode, ProcessId, WireSize};

use crate::codec::{write_frame_into, RecvBuffer, Tagged, TaggedOwned, RECV_CHUNK};
use crate::netfault::{LinkJudge, NetFaultPlan, NetFaultStats, NetVerdict};
use crate::poll::{self, Interest, PollSource, Poller, Readiness, WakeRx, WakeTx};
use crate::pool::{BufferPool, PooledBuf};
use crate::queue::{BatchStatus, PeerQueue};
use crate::reconnect::Reconnector;

/// How long the loop sleeps in `poll` when nothing is happening. Shutdown
/// latency is bounded by this even if a wake byte is lost (it never is —
/// the wake channel is a pipe / loop-back stream — but the timeout means
/// correctness never rests on that). Reconnect scheduling runs at this
/// granularity too: a due attempt fires within one tick of its deadline.
const TICK: StdDuration = StdDuration::from_millis(25);

/// Reads one stream may issue per tick before yielding to its siblings.
const MAX_READS_PER_TICK: usize = 4;

/// Consecutive queue-only fast passes before the loop must sample socket
/// readiness again. A wake signal means *queue* work — draining it into
/// sockets that were writable moments ago needs no `poll` — but inbound
/// bytes must not be deferred forever, so every few fast passes the loop
/// takes a full readiness pass (where the deferred frames arrive as one
/// bigger, cheaper read).
const MAX_FAST_PASSES: u32 = 8;

/// Wakes the event loop from node threads after pushes.
///
/// Two flags make the hot path syscall-free:
///
/// * `signal` — "queue state changed since the loop last scanned". Set by
///   every wake, consumed (swapped false) by the loop before each scan.
/// * `sleeping` — "the loop is parked (or about to park) in `poll` with a
///   real timeout". Only a wake that observes this writes the one-byte
///   pipe nudge; while the loop is busy servicing, a wake is two atomic
///   ops and the loop picks the signal up on its next pass.
///
/// The no-lost-wakeup argument is the classic sleeper/waker handshake:
/// the loop *stores* `sleeping = true` and then *loads* `signal`; a waker
/// *stores* `signal = true` and then *loads* `sleeping`. Both sides are
/// `SeqCst`, so in every interleaving at least one of them sees the
/// other's store — the loop aborts the park, or the waker sends the byte.
/// (And even an impossible miss only costs one [`TICK`]: the park timeout
/// means correctness never rests on the byte.)
pub(crate) struct Waker {
    tx: WakeTx,
    signal: AtomicBool,
    sleeping: AtomicBool,
}

impl Waker {
    pub(crate) fn new(tx: WakeTx) -> Waker {
        Waker { tx, signal: AtomicBool::new(false), sleeping: AtomicBool::new(false) }
    }

    /// Signals the loop that queue state changed. While the loop is busy
    /// this is two uncontended atomic ops; only a park pays a syscall.
    pub(crate) fn wake(&self) {
        self.signal.store(true, Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            // A full pipe already wakes the loop; errors mean the loop is
            // gone, and then there is nothing left to wake.
            let _ = self.tx.notify();
        }
    }

    /// Loop side: consumes the pending signal.
    fn take_signal(&self) -> bool {
        self.signal.swap(false, Ordering::SeqCst)
    }

    /// Loop side: announces intent to park. Returns `false` — park
    /// aborted — if a signal raced in; the caller must rescan instead.
    fn announce_sleep(&self) -> bool {
        self.sleeping.store(true, Ordering::SeqCst);
        if self.signal.load(Ordering::SeqCst) {
            self.sleeping.store(false, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Loop side: back from the park.
    fn finish_sleep(&self) {
        self.sleeping.store(false, Ordering::SeqCst);
    }
}

/// One inbound (peer → us) connection.
struct Inbound {
    stream: TcpStream,
    recv: RecvBuffer,
    open: bool,
}

/// A freshly accepted connection whose 2-byte id handshake has not fully
/// arrived yet; promoted to an [`Inbound`] once it has.
struct PendingAccept {
    stream: TcpStream,
    id: [u8; 2],
    got: usize,
}

/// The live half of one outbound connection (present while connected).
struct Conn {
    stream: TcpStream,
    /// Encoded-but-unsent bytes live in `scratch[sent..]`; the buffer is
    /// pooled, so an anomalous batch is clamped on return instead of
    /// staying resident.
    scratch: PooledBuf,
    sent: usize,
    /// Per-frame end offsets within a freshly encoded batch (vectored
    /// write slices).
    bounds: Vec<usize>,
}

impl Conn {
    fn new(stream: TcpStream, pool: &BufferPool) -> Conn {
        Conn { stream, scratch: pool.get(), sent: 0, bounds: Vec::new() }
    }

    /// Rescues the un-sent whole-frame suffix of a dying connection:
    /// everything from the first frame boundary at or past `sent`. The
    /// frame straddling `sent` is replayed in full — the receiver
    /// discards a partial tail on EOF — and frames fully handed to the
    /// kernel are not (a graceful shutdown delivers them). Replays over
    /// a seeded scratch (no boundary data) fall back to offset 0; the
    /// worst case is a duplicated frame, which every protocol layer
    /// dedupes.
    fn salvage(self) -> Vec<u8> {
        if self.scratch.len() <= self.sent {
            return Vec::new();
        }
        let start =
            self.bounds.iter().copied().filter(|&b| b <= self.sent).max().unwrap_or(0);
        self.scratch[start..].to_vec()
    }
}

/// One outbound (us → peer) link: the queue always, a [`Conn`] while the
/// connection is up, and the reconnect address if the link may heal.
struct Writer<M> {
    peer: ProcessId,
    /// Where to reconnect after a connection loss. `None` pins the legacy
    /// semantics: loss is permanent and closes the queue.
    addr: Option<SocketAddr>,
    queue: Arc<PeerQueue<M>>,
    conn: Option<Conn>,
    /// Reusable batch vector for `try_take_batch`.
    batch: Vec<M>,
    /// Queue closed and fully drained — this link will never send again
    /// (and must not reconnect).
    finished: bool,
    /// Shed frames already folded into the shared stats (delta tracking
    /// against the queue's monotone counter).
    shed_reported: u64,
    /// Frame bytes rescued from a dying connection ([`Conn::salvage`]),
    /// replayed ahead of any new batch once the link heals. This is what
    /// makes a healed link quasi-reliable: a consensus frame lost
    /// mid-severance has no protocol-level retransmit (catch-up repairs
    /// only *decided* instances), so the transport must not lose it.
    carryover: Vec<u8>,
}

enum WriterState {
    /// Nothing pending; no write interest needed.
    Idle,
    /// Parked on a partial write; needs `POLLOUT`.
    Parked,
    /// Queue closed and fully flushed; write side shut down.
    Finished,
    /// Write error; the connection is gone.
    Dead,
}

/// One outbound link handed to [`spawn`].
pub(crate) struct OutboundLink<M> {
    pub(crate) peer: ProcessId,
    /// Reconnect target (the peer's listener). `None` disables healing
    /// for this link: a connection loss closes the queue permanently.
    pub(crate) addr: Option<SocketAddr>,
    pub(crate) stream: TcpStream,
    pub(crate) queue: Arc<PeerQueue<M>>,
}

/// Everything one event loop owns, handed to [`spawn`].
pub(crate) struct LoopTopology<M> {
    /// This process's listener (nonblocking), polled for mid-run
    /// re-accepts. `None` fixes the inbound set at spawn time.
    pub(crate) listener: Option<TcpListener>,
    /// Accepted streams (already handshaken, nonblocking).
    pub(crate) inbound: Vec<TcpStream>,
    /// Connected streams (already handshaken, nonblocking), each with the
    /// [`PeerQueue`] feeding it.
    pub(crate) outbound: Vec<OutboundLink<M>>,
    /// Nemesis fault plan; `None` keeps the frame path fault-layer-free.
    pub(crate) faults: Option<NetFaultPlan>,
    /// Shared fault/reconnect counters (always live: reconnects happen
    /// with or without a fault plan).
    pub(crate) stats: Arc<NetFaultStats>,
}

impl<M> LoopTopology<M> {
    /// A fixed, heal-free topology (unit tests, legacy callers): no
    /// listener, no reconnect addresses, no faults.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn fixed(
        inbound: Vec<TcpStream>,
        outbound: Vec<(TcpStream, Arc<PeerQueue<M>>)>,
    ) -> LoopTopology<M> {
        LoopTopology {
            listener: None,
            inbound,
            outbound: outbound
                .into_iter()
                .enumerate()
                .map(|(i, (stream, queue))| OutboundLink {
                    // Distinct ids keep the reconnector slots apart; with
                    // `addr: None` they are never dialed.
                    // lint:allow(W2): slot index, bounded by the peer count which fits u16 by construction
                    peer: ProcessId::new(i as u16),
                    addr: None,
                    stream,
                    queue,
                })
                .collect(),
            faults: None,
            stats: Arc::new(NetFaultStats::default()),
        }
    }
}

/// A running event loop plus the handles the cluster needs to stop it.
pub(crate) struct EventLoopHandle {
    pub(crate) waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// Asks the loop to exit: it does one final best-effort nonblocking
    /// flush pass, shuts its sockets down, and returns. Never blocks on a
    /// dead peer — unflushed frames to one are dropped, as sends to a
    /// crashed process are.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// Joins the loop thread (call [`EventLoopHandle::stop`] first).
    pub(crate) fn join(mut self) {
        if let Some(t) = self.thread.take() {
            // lint:allow(E1): shutdown path on the caller's thread — the loop itself never joins
            let _ = t.join();
        }
    }
}

/// Spawns the event loop of one process over the given topology.
///
/// * `wake_rx` — the read end of the wake channel; `waker` holds the
///   write end and is shared with the node adapters.
/// * `inject` — delivers a decoded frame to the owning node; `Err` means
///   the node stopped and the connection should drop.
pub(crate) fn spawn<M, F>(
    me: ProcessId,
    topo: LoopTopology<M>,
    wake_rx: WakeRx,
    waker: Arc<Waker>,
    inject: F,
) -> EventLoopHandle
where
    M: Encode + Decode + WireSize + Send + 'static,
    F: Fn(ProcessId, M) -> Result<(), ()> + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let loop_waker = Arc::clone(&waker);
    let loop_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("iabc-io-{}", me.as_usize()))
        // lint:allow(E1): run_loop executes on the thread being spawned here, not on the caller
        .spawn(move || run_loop(me, topo, wake_rx, loop_waker, loop_stop, inject))
        // lint:allow(P1): thread spawn at cluster bootstrap, no remote input yet
        .expect("spawn event loop thread");
    EventLoopHandle { waker, stop, thread: Some(thread) }
}

/// Monotonic loop time: `Duration` since `start`, in our nanosecond
/// `Duration` (no narrowing cast — seconds and subseconds recombined).
fn loop_time(start: std::time::Instant) -> Duration {
    let e = start.elapsed();
    Duration::from_nanos(
        e.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(e.subsec_nanos())),
    )
}

fn run_loop<M, F>(
    me: ProcessId,
    topo: LoopTopology<M>,
    mut wake_rx: WakeRx,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    inject: F,
) where
    M: Encode + Decode + WireSize,
    F: Fn(ProcessId, M) -> Result<(), ()>,
{
    let pool = BufferPool::new();
    let start = std::time::Instant::now();
    let listener = topo.listener;
    let stats = topo.stats;
    let mut readers: Vec<Inbound> = topo
        .inbound
        .into_iter()
        .map(|stream| Inbound { stream, recv: RecvBuffer::new(&pool), open: true })
        .collect();
    let mut pending: Vec<PendingAccept> = Vec::new();
    let mut writers: Vec<Writer<M>> = topo
        .outbound
        .into_iter()
        .map(|link| Writer {
            peer: link.peer,
            addr: link.addr,
            queue: link.queue,
            conn: Some(Conn::new(link.stream, &pool)),
            batch: Vec::new(),
            finished: false,
            shed_reported: 0,
            carryover: Vec::new(),
        })
        .collect();
    let slots = writers.iter().map(|w| w.peer.as_usize() + 1).max().unwrap_or(0);
    // The jitter seed only desynchronizes concurrent probers; derive it
    // from the fault seed when a plan exists so nemesis runs are stable.
    let mut reconnect = Reconnector::new(slots, u64::from(me.index()) ^ 0x1abc);
    let mut judge: Option<LinkJudge> = topo.faults.map(|plan| LinkJudge::new(plan, me, slots));

    let mut poller = Poller::new();
    let mut readiness: Vec<Readiness> = Vec::new();
    let mut fast_passes = 0u32;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let signaled = waker.take_signal();
        // A pending signal means fresh *queue* work: drain it straight
        // into the sockets without a readiness syscall ([`MAX_FAST_PASSES`]
        // bounds how long inbound bytes can be deferred this way).
        if signaled && !stopping && fast_passes < MAX_FAST_PASSES {
            fast_passes += 1;
            let now = loop_time(start);
            service_writers(me, now, &mut writers, &mut judge, &stats, &mut reconnect);
            continue;
        }
        fast_passes = 0;
        let now = loop_time(start);
        // Link maintenance before interests: sever freshly partitioned
        // connections, dial due reconnect attempts.
        maintain_links(me, now, &mut writers, &mut reconnect, judge.as_ref(), &stats, &pool);
        // Out of fast passes or out of signals: take a full readiness
        // pass. With a signal (or stop) pending the poll is a zero-timeout
        // sample; otherwise announce the park — a wake racing in aborts it
        // (see [`Waker`] for the handshake).
        let mut timeout = StdDuration::ZERO;
        let mut parked = false;
        if !(signaled || stopping) {
            if waker.announce_sleep() {
                // While links are down the tick doubles as the reconnect
                // clock; it already bounds the wait, nothing extra needed.
                timeout = TICK;
                parked = true;
            } else {
                waker.take_signal();
            }
        }
        // Interest layout: [wake_rx, listener?, pending..., readers...,
        // writers-with-conn...]. Writers only need POLLOUT while parked on
        // a partial write; fresh batches are attempted opportunistically
        // below without waiting for an event.
        let listener_slot;
        let pending_base;
        let reader_base;
        let writer_slots: Vec<Option<usize>>;
        {
            let mut interests: Vec<(&dyn PollSource, Interest)> =
                Vec::with_capacity(2 + pending.len() + readers.len() + writers.len());
            interests.push((&wake_rx, Interest::READ));
            listener_slot = listener.as_ref().map(|l| {
                interests.push((l, Interest::READ));
                interests.len() - 1
            });
            pending_base = interests.len();
            for p in &pending {
                interests.push((&p.stream, Interest::READ));
            }
            reader_base = interests.len();
            for r in &readers {
                interests.push((&r.stream, if r.open { Interest::READ } else { Interest::NONE }));
            }
            writer_slots = writers
                .iter()
                .map(|w| {
                    let c = w.conn.as_ref()?;
                    let parked_write = c.scratch.len() > c.sent;
                    interests.push((
                        &c.stream,
                        if parked_write { Interest::WRITE } else { Interest::NONE },
                    ));
                    Some(interests.len() - 1)
                })
                .collect();
            let _ = &writer_slots;
            // A poll failure is unrecoverable for this loop; treat it as a
            // stop request rather than spinning on the error.
            // lint:allow(E1): poll(2) with a bounded tick is the loop's one sanctioned parking point
            if poller.wait(&interests, &mut readiness, timeout).is_err() {
                stop.store(true, Ordering::Release);
            }
        }
        if parked {
            waker.finish_sleep();
            // Consume the signal of any wake that landed mid-park: the
            // scan below covers it either way.
            waker.take_signal();
        }
        // Wake bytes exist only when a waker caught the loop parked;
        // everything else stays out of the pipe entirely.
        if readiness.first().is_some_and(|r| r.readable) {
            wake_rx.drain_wakes();
        }

        // Mid-run accepts: drain the listener backlog into the pending
        // set; their handshake bytes promote them to readers below.
        if let (Some(l), Some(slot)) = (listener.as_ref(), listener_slot) {
            if readiness.get(slot).is_some_and(|r| r.readable) {
                while let Ok(Some(stream)) = poll::try_accept(l) {
                    pending.push(PendingAccept { stream, id: [0; 2], got: 0 });
                }
            }
        }
        let mut i = 0;
        while i < pending.len() {
            if readiness.get(pending_base + i).is_some_and(|r| r.readable) {
                match service_pending(&mut pending[i]) {
                    PendingOutcome::Wait => i += 1,
                    PendingOutcome::Dead => {
                        pending.swap_remove(i);
                    }
                    PendingOutcome::Ready => {
                        let p = pending.swap_remove(i);
                        readers.push(Inbound {
                            stream: p.stream,
                            recv: RecvBuffer::new(&pool),
                            open: true,
                        });
                    }
                }
            } else {
                i += 1;
            }
        }

        for (i, r) in readers.iter_mut().enumerate() {
            if r.open && readiness.get(reader_base + i).is_some_and(|rd| rd.readable) {
                service_reader(r, &inject);
            }
        }
        // Dead readers leave the set: with a listener the peer's
        // reconnect will accept a replacement; without one the slot is
        // simply gone (legacy fixed topology).
        readers.retain(|r| r.open);

        let now = loop_time(start);
        // Every connected writer gets a service pass each tick: wake-ups
        // and read events both mean queues may have refilled, and an idle
        // pass is one uncontended try_take_batch lock per peer.
        service_writers(me, now, &mut writers, &mut judge, &stats, &mut reconnect);

        if stopping {
            // Final pass already flushed what the kernel would take
            // without blocking; everything else is dropped (crashed-peer
            // semantics). Tear the sockets down and exit.
            for w in &writers {
                if let Some(c) = &w.conn {
                    poll::shutdown_stream(&c.stream, Shutdown::Both);
                }
            }
            for r in &readers {
                poll::shutdown_stream(&r.stream, Shutdown::Both);
            }
            for p in &pending {
                poll::shutdown_stream(&p.stream, Shutdown::Both);
            }
            return;
        }
    }
}

/// What [`service_pending`] decided about a half-handshaken accept.
enum PendingOutcome {
    /// Still waiting for handshake bytes.
    Wait,
    /// EOF or error before the handshake completed; drop it.
    Dead,
    /// Handshake complete; promote to a reader.
    Ready,
}

/// Reads the outstanding handshake bytes of one pending accept.
fn service_pending(p: &mut PendingAccept) -> PendingOutcome {
    while p.got < p.id.len() {
        let got = p.got;
        match poll::try_read(&mut p.stream, &mut p.id[got..]) {
            Ok(Some(0)) | Err(_) => {
                poll::shutdown_stream(&p.stream, Shutdown::Both);
                return PendingOutcome::Dead;
            }
            Ok(Some(n)) => p.got += n,
            Ok(None) => return PendingOutcome::Wait,
        }
    }
    // The id is advisory (frames carry their own `from` tag); consuming
    // it is what matters, so the frame decoder starts at a frame boundary.
    PendingOutcome::Ready
}

/// Once-per-tick link maintenance: sever connections a partition window
/// now covers, and dial the reconnect attempts that have come due (gated
/// off while the pair is partitioned).
fn maintain_links<M: WireSize>(
    me: ProcessId,
    now: Duration,
    writers: &mut [Writer<M>],
    reconnect: &mut Reconnector,
    judge: Option<&LinkJudge>,
    stats: &NetFaultStats,
    pool: &BufferPool,
) {
    for w in writers.iter_mut() {
        if w.finished {
            continue;
        }
        // Fold newly shed frames (down-mode bulk watermark) into the
        // shared counters; the queue's counter is monotone, so a delta
        // against what was already reported is exact.
        if w.conn.is_none() {
            let shed = w.queue.shed_count();
            if shed > w.shed_reported {
                stats.frames_shed.fetch_add(shed - w.shed_reported, Ordering::Relaxed);
                w.shed_reported = shed;
            }
        }
        let partitioned =
            judge.is_some_and(|j| j.plan().partitioned_at(now, me, w.peer));
        if partitioned {
            if let Some(c) = w.conn.take() {
                // The window opened: kill the connection the way a real
                // partition would — mid-stream. The counter lands before
                // the shutdown so an observer who sees the EOF also sees
                // the severance recorded. Un-sent frames are salvaged for
                // replay after the heal: the *link* is the unit of
                // reliability, not the connection, and losing them here
                // would wedge any consensus instance they carried.
                stats.links_severed.fetch_add(1, Ordering::Relaxed);
                w.queue.set_link_down(true);
                reconnect.mark_down(w.peer, now);
                poll::shutdown_stream(&c.stream, Shutdown::Both);
                let mut rescued = c.salvage();
                rescued.extend_from_slice(&w.carryover);
                w.carryover = rescued;
            }
            // No dialing into an open window; the deadline stays due and
            // fires on the first tick after the heal.
            continue;
        }
        if let Some(addr) = w.addr.filter(|_| w.conn.is_none() && reconnect.due_attempt(w.peer, now)) {
            match poll::connect_loopback(&addr) {
                Ok(mut stream) => {
                    // Re-run the 2-byte id handshake. Two bytes into a
                    // fresh socket buffer cannot short-write; anything but
                    // a complete write means the connection is already
                    // broken, which is just a failed attempt.
                    match poll::try_write(&mut stream, &me.index().to_le_bytes()) {
                        Ok(Some(2)) => {
                            let mut conn = Conn::new(stream, pool);
                            // Replay the salvaged suffix of the dead
                            // connection before any fresh batch: frame
                            // order within the link is preserved, and the
                            // peer's decoder starts clean (it discarded
                            // any partial tail at EOF).
                            if !w.carryover.is_empty() {
                                conn.scratch.extend_from_slice(&w.carryover);
                                w.carryover.clear();
                            }
                            w.conn = Some(conn);
                            w.queue.set_link_down(false);
                            reconnect.mark_up(w.peer);
                            stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            poll::shutdown_stream(&stream, Shutdown::Both);
                            reconnect.attempt_failed(w.peer, now);
                        }
                    }
                }
                Err(_) => reconnect.attempt_failed(w.peer, now),
            }
        }
    }
}

/// Drains one inbound stream: read into the pooled arena, decode frames
/// in place, inject. Stops at `WouldBlock`, EOF, a decode error (poisoned
/// framing ⇒ drop the connection), or the per-tick read cap.
fn service_reader<M, F>(r: &mut Inbound, inject: &F)
where
    M: Decode + WireSize,
    F: Fn(ProcessId, M) -> Result<(), ()>,
{
    let mut reads = 0;
    let mut drained = false;
    loop {
        loop {
            match r.recv.next_frame::<TaggedOwned<M>>() {
                Ok(Some(t)) => {
                    if inject(t.from, t.msg).is_err() {
                        // Node stopped: nothing left to deliver to.
                        poll::shutdown_stream(&r.stream, Shutdown::Both);
                        r.open = false;
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    poll::shutdown_stream(&r.stream, Shutdown::Both);
                    r.open = false;
                    return;
                }
            }
        }
        if drained || reads >= MAX_READS_PER_TICK {
            return;
        }
        let spare = r.recv.spare(RECV_CHUNK);
        let want = spare.len();
        match poll::try_read(&mut r.stream, spare) {
            Ok(Some(0)) | Err(_) => {
                // EOF or error: the connection is gone. Frames already
                // decoded were delivered; the peer's reconnect (via our
                // listener) replaces the stream if the pair heals.
                r.open = false;
                return;
            }
            Ok(Some(n)) => {
                r.recv.commit(n);
                reads += 1;
                // A short read means the socket is (momentarily) empty:
                // decode what arrived and skip the would-be-EAGAIN read.
                // Level-triggered polling re-arms the stream if more lands.
                drained = n < want;
            }
            Ok(None) => return,
        }
    }
}

/// One service pass over every connected writer, applying the state
/// transitions ([`service_writer`] reports them, this applies them).
fn service_writers<M: Encode + WireSize>(
    me: ProcessId,
    now: Duration,
    writers: &mut [Writer<M>],
    judge: &mut Option<LinkJudge>,
    stats: &NetFaultStats,
    reconnect: &mut Reconnector,
) {
    for w in writers.iter_mut() {
        if w.conn.is_none() || w.finished {
            continue;
        }
        match service_writer(me, now, w, judge.as_mut(), stats) {
            WriterState::Idle | WriterState::Parked => {}
            WriterState::Finished => {
                // Queue closed and drained: signal EOF to the peer's
                // reader and retire the link for good.
                if let Some(c) = w.conn.take() {
                    poll::shutdown_stream(&c.stream, Shutdown::Write);
                }
                w.finished = true;
            }
            WriterState::Dead => {
                if let Some(c) = w.conn.take() {
                    poll::shutdown_stream(&c.stream, Shutdown::Both);
                    if w.addr.is_some() {
                        let mut rescued = c.salvage();
                        rescued.extend_from_slice(&w.carryover);
                        w.carryover = rescued;
                    }
                }
                if w.addr.is_some() {
                    // Healable link: park the queue in down-mode, salvage
                    // the un-sent scratch suffix for replay, and let the
                    // reconnector dial. Catch-up repairs only *decided*
                    // instances and the pending re-flood only payloads,
                    // so an in-flight consensus frame lost here would
                    // wedge its instance for good.
                    w.queue.set_link_down(true);
                    reconnect.mark_down(w.peer, now);
                } else {
                    // Legacy fixed topology: loss is permanent.
                    w.queue.close();
                    w.finished = true;
                }
            }
        }
    }
}

/// Pushes one outbound connection as far as the kernel allows: flush any
/// parked suffix, then keep pulling and encoding batches until the queue
/// is empty (Idle), the socket is full (Parked), the queue is closed and
/// drained (Finished), or the connection died (Dead).
///
/// # Panics
///
/// Panics if called for a writer with no live connection (the service
/// pass filters those).
fn service_writer<M: Encode + WireSize>(
    from: ProcessId,
    now: Duration,
    w: &mut Writer<M>,
    mut judge: Option<&mut LinkJudge>,
    stats: &NetFaultStats,
) -> WriterState {
    let peer = w.peer;
    // lint:allow(P1): service_writers only dispatches connected writers
    let c = w.conn.as_mut().expect("service_writer needs a live conn");
    loop {
        if c.scratch.len() > c.sent {
            match poll::try_write(&mut c.stream, &c.scratch[c.sent..]) {
                Ok(Some(n)) => {
                    c.sent += n;
                    if c.sent < c.scratch.len() {
                        continue; // short write: try once more / park below
                    }
                    c.scratch.clear();
                    c.sent = 0;
                }
                Ok(None) => return WriterState::Parked,
                Err(_) => return WriterState::Dead,
            }
        }
        w.batch.clear();
        match w.queue.try_take_batch(&mut w.batch) {
            BatchStatus::Empty => return WriterState::Idle,
            BatchStatus::Closed => return WriterState::Finished,
            BatchStatus::Took => {}
        }
        c.bounds.clear();
        for msg in &w.batch {
            // The nemesis fault layer judges each frame as it leaves the
            // queue for the wire; without a plan this is a no-op branch.
            let copies = match judge.as_mut() {
                None => 1,
                Some(j) => match j.judge_frame(now, peer) {
                    NetVerdict::Pass => 1,
                    NetVerdict::Drop => {
                        stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                        0
                    }
                    NetVerdict::Duplicate => {
                        stats.frames_duplicated.fetch_add(1, Ordering::Relaxed);
                        2
                    }
                },
            };
            for _ in 0..copies {
                // An oversized frame is unencodable, not a transport
                // error: skip it (write_frame_into already rolled the
                // scratch back).
                if write_frame_into(&Tagged { from, msg }, &mut c.scratch).is_ok() {
                    c.bounds.push(c.scratch.len());
                }
            }
        }
        if c.scratch.is_empty() {
            continue;
        }
        // One vectored write over the per-frame slices: the kernel gathers
        // the whole batch in one syscall, no second userspace copy. A
        // partial acceptance leaves a contiguous suffix in scratch, which
        // the parked branch above flushes as plain bytes.
        let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(c.bounds.len());
        let mut start = 0;
        for &end in &c.bounds {
            slices.push(std::io::IoSlice::new(&c.scratch[start..end]));
            start = end;
        }
        match poll::try_write_vectored(&mut c.stream, &slices) {
            Ok(Some(n)) => {
                drop(slices);
                c.sent = n;
                if c.sent == c.scratch.len() {
                    c.scratch.clear();
                    c.sent = 0;
                }
            }
            Ok(None) => {
                drop(slices);
                c.sent = 0;
                return WriterState::Parked;
            }
            Err(_) => return WriterState::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{write_frame, FrameBuffer};
    use crate::poll::wake_channel;
    use crate::queue::tests::Classed;
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use std::io::{Read, Write};
    use std::time::Instant;

    fn blocking_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn spawn_loop(
        inbound: Vec<TcpStream>,
        outbound: Vec<(TcpStream, Arc<PeerQueue<Classed>>)>,
    ) -> (EventLoopHandle, Receiver<(ProcessId, Classed)>) {
        spawn_topo(LoopTopology::fixed(inbound, outbound))
    }

    fn spawn_topo(
        topo: LoopTopology<Classed>,
    ) -> (EventLoopHandle, Receiver<(ProcessId, Classed)>) {
        for s in topo
            .inbound
            .iter()
            .chain(topo.outbound.iter().map(|l| &l.stream))
        {
            s.set_nonblocking(true).unwrap();
            s.set_nodelay(true).unwrap();
        }
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let (tx, rx): (Sender<(ProcessId, Classed)>, _) = unbounded();
        let handle = spawn(ProcessId::new(0), topo, wake_rx, waker, move |from, msg| {
            tx.send((from, msg)).map_err(|_| ())
        });
        (handle, rx)
    }

    #[test]
    fn outbound_batch_drains_ordering_ahead_of_bulk_over_the_wire() {
        let (ours, mut theirs) = blocking_pair();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        // Fill before the loop starts so the whole burst is one batch.
        for v in [2, 4, 1, 6, 3, 8, 5] {
            queue.enqueue(Classed(v));
        }
        let (handle, _rx) = spawn_loop(vec![], vec![(ours, Arc::clone(&queue))]);
        handle.waker.wake();

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 4096];
        while got.len() < 7 {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(0));
                got.push(t.msg.0);
            }
        }
        assert_eq!(got, vec![1, 3, 5, 2, 4, 6, 8], "ordering lane must drain first");
        handle.stop();
        handle.join();
    }

    #[test]
    fn corrupt_inbound_frame_tears_the_connection_after_delivering_the_good_prefix() {
        let (theirs, ours) = blocking_pair();
        let (handle, rx) = spawn_loop(vec![ours], vec![]);
        let mut theirs = theirs;
        write_frame(&Tagged { from: ProcessId::new(1), msg: &Classed(42) }, &mut theirs).unwrap();
        // A malformed frame: the length prefix says 2 bytes, which can
        // never decode as a Tagged<Classed>.
        theirs.write_all(&2u32.to_le_bytes()).unwrap();
        theirs.write_all(&[0xAB, 0xCD]).unwrap();
        // A good frame after the corruption must never be delivered (the
        // loop may already have torn the socket down — ignore errors).
        let _ = write_frame(&Tagged { from: ProcessId::new(1), msg: &Classed(7) }, &mut theirs);

        let first = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(first, (ProcessId::new(1), Classed(42)));
        assert!(
            rx.recv_timeout(StdDuration::from_secs(2)).is_err(),
            "no frame may be delivered after a decode error"
        );
        handle.stop();
        handle.join();
    }

    #[test]
    fn writer_death_reconnects_through_the_peer_listener_and_drains_the_parked_backlog() {
        // The peer: a listener we control. The initial connection is torn
        // down by "the peer" mid-run; the loop must flip the queue into
        // down-mode, redial our listener with the 2-byte handshake, and
        // flush the ordering frames parked while the link was down.
        let peer_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = peer_listener.local_addr().unwrap();
        let initial = TcpStream::connect(peer_addr).unwrap();
        let (their_end, _) = peer_listener.accept().unwrap();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        let topo = LoopTopology {
            listener: None,
            inbound: vec![],
            outbound: vec![OutboundLink {
                peer: ProcessId::new(1),
                addr: Some(peer_addr),
                stream: initial,
                queue: Arc::clone(&queue),
            }],
            faults: None,
            stats: Arc::new(NetFaultStats::default()),
        };
        let stats = Arc::clone(&topo.stats);
        let (handle, _rx) = spawn_topo(topo);

        // Kill the peer end: the loop's next write hits EPIPE/RST.
        drop(their_end);
        // Keep pushing ordering frames (odd ids) until the loop redials.
        let (accepted, hs) = {
            peer_listener.set_nonblocking(true).unwrap();
            let deadline = Instant::now() + StdDuration::from_secs(10);
            let mut accepted = None;
            while accepted.is_none() {
                assert!(Instant::now() < deadline, "loop never redialed the peer listener");
                queue.enqueue(Classed(1));
                handle.waker.wake();
                std::thread::sleep(StdDuration::from_millis(5));
                if let Ok((s, _)) = peer_listener.accept() {
                    accepted = Some(s);
                }
            }
            let mut s = accepted.unwrap();
            s.set_nonblocking(false).unwrap();
            let mut hs = [0u8; 2];
            s.read_exact(&mut hs).unwrap();
            (s, hs)
        };
        assert_eq!(u16::from_le_bytes(hs), 0, "handshake must carry the dialer's id");
        // A post-reconnect frame must arrive on the new stream (parked
        // backlog first — all odd, all ordering — then this one).
        queue.enqueue(Classed(9));
        handle.waker.wake();
        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut accepted = accepted;
        while !got.contains(&9) {
            let read = std::io::Read::read(&mut accepted, &mut chunk).unwrap();
            assert!(read > 0, "reconnected stream closed early");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                got.push(t.msg.0);
            }
        }
        // Frame 9 went in *after* the reconnect: its arrival proves the
        // queue was parked in down-mode rather than closed for good. (How
        // many pre-heal frames survive depends on when the kernel raised
        // the write error — the parking policy itself is unit-tested in
        // `queue`.) The ordering lane is FIFO, so 9 drains last.
        assert_eq!(got.last(), Some(&9));
        assert!(stats.report().reconnects >= 1);
        handle.stop();
        handle.join();
    }

    #[test]
    fn partition_window_severs_the_link_and_heals_after_it_closes() {
        // A fault-plan partition: the loop must kill its own healthy
        // connection when the window opens, refuse to redial inside the
        // window, and reconnect after it closes.
        let peer_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = peer_listener.local_addr().unwrap();
        let initial = TcpStream::connect(peer_addr).unwrap();
        let (their_end, _) = peer_listener.accept().unwrap();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        let window_from = Duration::from_millis(0);
        let window_until = Duration::from_millis(400);
        let topo = LoopTopology {
            listener: None,
            inbound: vec![],
            outbound: vec![OutboundLink {
                peer: ProcessId::new(1),
                addr: Some(peer_addr),
                stream: initial,
                queue: Arc::clone(&queue),
            }],
            faults: Some(
                NetFaultPlan::new(11)
                    .partition(ProcessId::new(0), ProcessId::new(1), window_from, window_until),
            ),
            stats: Arc::new(NetFaultStats::default()),
        };
        let stats = Arc::clone(&topo.stats);
        let started = Instant::now();
        let (handle, _rx) = spawn_topo(topo);

        // The severance arrives within a few ticks: our end sees EOF.
        let mut their_end = their_end;
        their_end
            .set_read_timeout(Some(StdDuration::from_secs(5)))
            .unwrap();
        let mut sink = [0u8; 64];
        let eof_at = loop {
            match their_end.read(&mut sink) {
                Ok(0) => break Instant::now(),
                Ok(_) => continue,
                Err(e) => panic!("expected EOF from the severed link, got {e}"),
            }
        };
        assert!(stats.report().links_severed >= 1);
        // The redial may only land after the window closes.
        peer_listener.set_nonblocking(false).unwrap();
        peer_listener
            .set_ttl(1) // no-op; keeps the handle warm on some platforms
            .ok();
        let (mut healed, _) = peer_listener.accept().unwrap();
        let healed_at = started.elapsed();
        assert!(
            healed_at >= StdDuration::from_millis(350),
            "redial landed inside the partition window ({healed_at:?}, eof at {eof_at:?})"
        );
        let mut hs = [0u8; 2];
        healed.read_exact(&mut hs).unwrap();
        assert_eq!(u16::from_le_bytes(hs), 0);
        assert!(stats.report().reconnects >= 1);
        // Frames flow again on the healed link.
        queue.enqueue(Classed(5));
        handle.waker.wake();
        let mut frames = FrameBuffer::new();
        let mut chunk = [0u8; 1024];
        'outer: loop {
            let read = healed.read(&mut chunk).unwrap();
            assert!(read > 0, "healed stream closed early");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                if t.msg.0 == 5 {
                    break 'outer;
                }
            }
        }
        handle.stop();
        handle.join();
    }

    #[test]
    fn mid_run_accept_promotes_after_the_handshake_and_frames_flow() {
        // The loop owns a listener: a peer that connects mid-run, sends
        // its 2-byte id, and then frames, must be read like any inbound.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let topo = LoopTopology {
            listener: Some(listener),
            inbound: vec![],
            outbound: vec![],
            faults: None,
            stats: Arc::new(NetFaultStats::default()),
        };
        let (handle, rx) = spawn_topo(topo);
        let mut peer = TcpStream::connect(addr).unwrap();
        peer.write_all(&3u16.to_le_bytes()).unwrap();
        write_frame(&Tagged { from: ProcessId::new(3), msg: &Classed(21) }, &mut peer).unwrap();
        let got = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(got, (ProcessId::new(3), Classed(21)));
        handle.stop();
        handle.join();
    }

    /// A bulk frame big enough that a few thousand of them overflow any
    /// socket buffer, forcing the loop to park on a partial write.
    #[derive(Clone, Debug, PartialEq)]
    struct Huge(u32);
    const HUGE_LEN: usize = 4096;
    impl iabc_types::WireSize for Huge {
        fn wire_size(&self) -> usize {
            4 + HUGE_LEN
        }
    }
    impl Encode for Huge {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, HUGE_LEN));
        }
    }
    impl Decode for Huge {
        fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
            let id = u32::decode(buf)?;
            if buf.len() < HUGE_LEN {
                return Err(iabc_types::CodecError::Truncated { need: HUGE_LEN, have: buf.len() });
            }
            let (body, rest) = buf.split_at(HUGE_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Huge(id))
        }
    }

    #[test]
    fn shutdown_never_hangs_on_a_peer_that_stopped_reading() {
        // The peer end exists but never reads: our writes eventually
        // WouldBlock with a parked remainder. stop() must still return
        // promptly — the backlog to a dead peer is dropped, not awaited.
        let (ours, theirs) = blocking_pair();
        ours.set_nonblocking(true).unwrap();
        let queue: Arc<PeerQueue<Huge>> = Arc::new(PeerQueue::new());
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let handle = spawn(
            ProcessId::new(0),
            LoopTopology::fixed(vec![], vec![(ours, Arc::clone(&queue))]),
            wake_rx,
            waker,
            |_, _: Huge| Ok(()),
        );
        // ~16 MiB queued (within queue capacity, far past socket buffers):
        // the loop must park on a partial write.
        for v in 0..4096u32 {
            queue.enqueue(Huge(v));
        }
        handle.waker.wake();
        std::thread::sleep(StdDuration::from_millis(100));
        queue.close();
        let t0 = Instant::now();
        handle.stop();
        handle.join();
        assert!(
            t0.elapsed() < StdDuration::from_secs(2),
            "shutdown must not wait for a peer that never drains"
        );
        drop(theirs);
    }

    #[test]
    fn vectored_drain_survives_partial_writes_on_huge_batches() {
        // One ~16 MiB pre-filled batch, far past the socket buffer: the
        // single vectored write cannot take it all, so the loop must park
        // the remainder and resume on writability — every frame must
        // still arrive intact and in FIFO order.
        const FRAMES: u32 = 2048;
        let (ours, mut theirs) = blocking_pair();
        let queue: Arc<PeerQueue<Huge>> = Arc::new(PeerQueue::new());
        for v in 0..FRAMES {
            queue.enqueue(Huge(v));
        }
        ours.set_nonblocking(true).unwrap();
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let handle = spawn(
            ProcessId::new(2),
            LoopTopology::fixed(vec![], vec![(ours, Arc::clone(&queue))]),
            wake_rx,
            waker,
            |_, _: Huge| Ok(()),
        );
        handle.waker.wake();
        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        while got.len() < FRAMES as usize {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Huge>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(2));
                got.push(t.msg.0);
            }
        }
        // Every frame arrived intact (the Decode impl checks the body),
        // in FIFO order — whichever frame the short write split.
        assert_eq!(got, (0..FRAMES).collect::<Vec<_>>());
        handle.stop();
        handle.join();
    }

    #[test]
    fn wake_coalescing_still_delivers_every_burst() {
        // Many small pushes with wakes in between: regardless of how the
        // flag coalesces them, every frame must arrive, in lane order
        // within each drained batch.
        let (ours, mut theirs) = blocking_pair();
        theirs.set_nodelay(true).unwrap();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        let (handle, _rx) = spawn_loop(vec![], vec![(ours, Arc::clone(&queue))]);
        let total = 500u32;
        let pusher = {
            let queue = Arc::clone(&queue);
            let waker = Arc::clone(&handle.waker);
            std::thread::spawn(move || {
                for v in 0..total {
                    queue.enqueue(Classed(v));
                    waker.wake();
                }
            })
        };
        let mut frames = FrameBuffer::new();
        let mut got = vec![false; total as usize];
        let mut seen = 0usize;
        let mut chunk = [0u8; 4096];
        while seen < total as usize {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed early");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                let idx = t.msg.0 as usize;
                assert!(!got[idx], "duplicate frame {idx}");
                got[idx] = true;
                seen += 1;
            }
        }
        pusher.join().unwrap();
        handle.stop();
        handle.join();
    }

    /// A classed frame sized for the short-write storm: odd ids ride the
    /// ordering lane, even ids the bulk lane, and the 2 KiB body means a
    /// pre-filled batch of a few hundred frames overflows the socket
    /// buffer many times over, so the vectored drain keeps short-writing
    /// and parking mid-frame. The `Decode` impl checks the body, so a
    /// suffix spliced back at the wrong offset fails loudly.
    #[derive(Clone, Debug, PartialEq)]
    struct Storm(u32);
    const STORM_LEN: usize = 2048;
    impl iabc_types::WireSize for Storm {
        fn wire_size(&self) -> usize {
            4 + STORM_LEN
        }
        fn traffic_class(&self) -> iabc_types::TrafficClass {
            if self.0 % 2 == 1 {
                iabc_types::TrafficClass::Ordering
            } else {
                iabc_types::TrafficClass::Bulk
            }
        }
    }
    impl Encode for Storm {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, STORM_LEN));
        }
    }
    impl Decode for Storm {
        fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
            let id = u32::decode(buf)?;
            if buf.len() < STORM_LEN {
                return Err(iabc_types::CodecError::Truncated { need: STORM_LEN, have: buf.len() });
            }
            let (body, rest) = buf.split_at(STORM_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Storm(id))
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Short-write storm: an arbitrary lane mix far past the socket
        /// buffer, drained against a reader whose chunk size is also
        /// arbitrary. However the kernel slices the vectored writes, no
        /// frame may be dropped, duplicated, corrupted, or reordered
        /// within its lane — the parked scratch suffix must resume at
        /// exactly the byte where the short write stopped.
        #[test]
        fn short_write_storm_preserves_per_lane_fifo(
            vals in proptest::collection::vec(any::<u32>(), 64..320),
            read_cap in 32usize..4096,
        ) {
            let (ours, mut theirs) = blocking_pair();
            let queue: Arc<PeerQueue<Storm>> = Arc::new(PeerQueue::new());
            // Fill before the loop starts so the storm is one huge batch.
            for &v in &vals {
                queue.enqueue(Storm(v));
            }
            ours.set_nonblocking(true).unwrap();
            let (wake_tx, wake_rx) = wake_channel().unwrap();
            let waker = Arc::new(Waker::new(wake_tx));
            let handle = spawn(
                ProcessId::new(3),
                LoopTopology::fixed(vec![], vec![(ours, Arc::clone(&queue))]),
                wake_rx,
                waker,
                |_, _: Storm| Ok(()),
            );
            handle.waker.wake();
            let mut frames = FrameBuffer::new();
            let mut got: Vec<u32> = Vec::new();
            let mut chunk = vec![0u8; read_cap];
            while got.len() < vals.len() {
                let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
                prop_assert!(read > 0, "stream closed before the storm arrived");
                frames.extend(&chunk[..read]);
                while let Some(t) = frames.next_frame::<TaggedOwned<Storm>>().unwrap() {
                    prop_assert_eq!(t.from, ProcessId::new(3));
                    got.push(t.msg.0);
                }
            }
            handle.stop();
            handle.join();
            // Nothing extra arrived, and each lane is FIFO end to end.
            prop_assert_eq!(got.len(), vals.len());
            let lane = |seq: &[u32], odd: bool| -> Vec<u32> {
                seq.iter().copied().filter(|v| (v % 2 == 1) == odd).collect()
            };
            prop_assert_eq!(lane(&got, true), lane(&vals, true), "ordering lane reordered");
            prop_assert_eq!(lane(&got, false), lane(&vals, false), "bulk lane reordered");
        }
    }
}
