//! The per-process event loop of the TCP transport.
//!
//! One thread per process owns *all* of that process's socket I/O: the
//! `n-1` inbound streams (peers → us), the `n-1` outbound streams (us →
//! peers), and a wake channel. Nothing here ever blocks — the loop parks
//! only in [`Poller::wait`] with a bounded timeout, reads and writes are
//! nonblocking (`WouldBlock` re-arms interest instead of parking a
//! thread), and the outbound queues are drained with the nonblocking
//! [`PeerQueue::try_take_batch`]. Lint rule `E1` enforces this shape
//! mechanically: the only sanctioned kernel doorway is `crate::poll`.
//!
//! # Receive path (decode in place)
//!
//! Each inbound stream reads directly into a pooled [`RecvBuffer`]; frames
//! are decoded in place from the arena the kernel wrote
//! ([`iabc_types::Decode::decode_in_place`]) and handed straight to the
//! node's injector — no re-assembly copy, no relay thread. A decode error
//! poisons the buffer and tears the connection down (framing is
//! unrecoverable), exactly like the threaded reader.
//!
//! # Send path (writability-driven batch drain)
//!
//! The two-lane [`PeerQueue`] semantics survive unchanged: a drain takes
//! everything pending, ordering frames first, encodes the batch into
//! pooled scratch and pushes it with one vectored write. What changed is
//! who runs it: a writability event (or a wake after a push) drives the
//! drain on the loop thread. A **partial write parks the remainder in the
//! pooled scratch** and re-arms `POLLOUT`; when the kernel drains, the
//! suffix goes out and the next batch is pulled. A write error means the
//! peer is gone: the queue closes (future pushes drop silently — the
//! quasi-reliable channel model) and the connection is dropped.
//!
//! # Fairness
//!
//! Reads are capped per stream per tick ([`MAX_READS_PER_TICK`]) so a
//! loop-back peer that refills its socket as fast as we drain it cannot
//! starve the other connections; level-triggered polling re-arms the
//! stream on the next tick.

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use iabc_types::{Decode, Encode, ProcessId, WireSize};

use crate::codec::{write_frame_into, RecvBuffer, Tagged, TaggedOwned, RECV_CHUNK};
use crate::poll::{self, Interest, PollSource, Poller, Readiness, WakeRx, WakeTx};
use crate::pool::{BufferPool, PooledBuf};
use crate::queue::{BatchStatus, PeerQueue};

/// How long the loop sleeps in `poll` when nothing is happening. Shutdown
/// latency is bounded by this even if a wake byte is lost (it never is —
/// the wake channel is a pipe / loop-back stream — but the timeout means
/// correctness never rests on that).
const TICK: Duration = Duration::from_millis(25);

/// Reads one stream may issue per tick before yielding to its siblings.
const MAX_READS_PER_TICK: usize = 4;

/// Consecutive queue-only fast passes before the loop must sample socket
/// readiness again. A wake signal means *queue* work — draining it into
/// sockets that were writable moments ago needs no `poll` — but inbound
/// bytes must not be deferred forever, so every few fast passes the loop
/// takes a full readiness pass (where the deferred frames arrive as one
/// bigger, cheaper read).
const MAX_FAST_PASSES: u32 = 8;

/// Wakes the event loop from node threads after pushes.
///
/// Two flags make the hot path syscall-free:
///
/// * `signal` — "queue state changed since the loop last scanned". Set by
///   every wake, consumed (swapped false) by the loop before each scan.
/// * `sleeping` — "the loop is parked (or about to park) in `poll` with a
///   real timeout". Only a wake that observes this writes the one-byte
///   pipe nudge; while the loop is busy servicing, a wake is two atomic
///   ops and the loop picks the signal up on its next pass.
///
/// The no-lost-wakeup argument is the classic sleeper/waker handshake:
/// the loop *stores* `sleeping = true` and then *loads* `signal`; a waker
/// *stores* `signal = true` and then *loads* `sleeping`. Both sides are
/// `SeqCst`, so in every interleaving at least one of them sees the
/// other's store — the loop aborts the park, or the waker sends the byte.
/// (And even an impossible miss only costs one [`TICK`]: the park timeout
/// means correctness never rests on the byte.)
pub(crate) struct Waker {
    tx: WakeTx,
    signal: AtomicBool,
    sleeping: AtomicBool,
}

impl Waker {
    pub(crate) fn new(tx: WakeTx) -> Waker {
        Waker { tx, signal: AtomicBool::new(false), sleeping: AtomicBool::new(false) }
    }

    /// Signals the loop that queue state changed. While the loop is busy
    /// this is two uncontended atomic ops; only a park pays a syscall.
    pub(crate) fn wake(&self) {
        self.signal.store(true, Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            // A full pipe already wakes the loop; errors mean the loop is
            // gone, and then there is nothing left to wake.
            let _ = self.tx.notify();
        }
    }

    /// Loop side: consumes the pending signal.
    fn take_signal(&self) -> bool {
        self.signal.swap(false, Ordering::SeqCst)
    }

    /// Loop side: announces intent to park. Returns `false` — park
    /// aborted — if a signal raced in; the caller must rescan instead.
    fn announce_sleep(&self) -> bool {
        self.sleeping.store(true, Ordering::SeqCst);
        if self.signal.load(Ordering::SeqCst) {
            self.sleeping.store(false, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Loop side: back from the park.
    fn finish_sleep(&self) {
        self.sleeping.store(false, Ordering::SeqCst);
    }
}

/// One inbound (peer → us) connection.
struct Inbound {
    stream: TcpStream,
    recv: RecvBuffer,
    open: bool,
}

/// One outbound (us → peer) connection.
struct Outbound<M> {
    stream: TcpStream,
    queue: Arc<PeerQueue<M>>,
    /// Encoded-but-unsent bytes live in `scratch[sent..]`; the buffer is
    /// pooled, so an anomalous batch is clamped on return instead of
    /// staying resident.
    scratch: PooledBuf,
    sent: usize,
    /// Per-frame end offsets within a freshly encoded batch (vectored
    /// write slices).
    bounds: Vec<usize>,
    /// Reusable batch vector for `try_take_batch`.
    batch: Vec<M>,
    open: bool,
}

enum WriterState {
    /// Nothing pending; no write interest needed.
    Idle,
    /// Parked on a partial write; needs `POLLOUT`.
    Parked,
    /// Queue closed and fully flushed; write side shut down.
    Finished,
    /// Write error; queue closed, connection dropped.
    Dead,
}

/// A running event loop plus the handles the cluster needs to stop it.
pub(crate) struct EventLoopHandle {
    pub(crate) waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// Asks the loop to exit: it does one final best-effort nonblocking
    /// flush pass, shuts its sockets down, and returns. Never blocks on a
    /// dead peer — unflushed frames to one are dropped, as sends to a
    /// crashed process are.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// Joins the loop thread (call [`EventLoopHandle::stop`] first).
    pub(crate) fn join(mut self) {
        if let Some(t) = self.thread.take() {
            // lint:allow(E1): shutdown path on the caller's thread — the loop itself never joins
            let _ = t.join();
        }
    }
}

/// Spawns the event loop of one process.
///
/// * `inbound` — accepted streams (already handshaken, nonblocking).
/// * `outbound` — connected streams (already handshaken, nonblocking),
///   each with the [`PeerQueue`] feeding it.
/// * `wake_rx` — the read end of the wake channel; `waker` holds the
///   write end and is shared with the node adapters.
/// * `inject` — delivers a decoded frame to the owning node; `Err` means
///   the node stopped and the connection should drop.
pub(crate) fn spawn<M, F>(
    me: ProcessId,
    inbound: Vec<TcpStream>,
    outbound: Vec<(TcpStream, Arc<PeerQueue<M>>)>,
    wake_rx: WakeRx,
    waker: Arc<Waker>,
    inject: F,
) -> EventLoopHandle
where
    M: Encode + Decode + WireSize + Send + 'static,
    F: Fn(ProcessId, M) -> Result<(), ()> + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let loop_waker = Arc::clone(&waker);
    let loop_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("iabc-io-{}", me.as_usize()))
        // lint:allow(E1): run_loop executes on the thread being spawned here, not on the caller
        .spawn(move || run_loop(me, inbound, outbound, wake_rx, loop_waker, loop_stop, inject))
        // lint:allow(P1): thread spawn at cluster bootstrap, no remote input yet
        .expect("spawn event loop thread");
    EventLoopHandle { waker, stop, thread: Some(thread) }
}

fn run_loop<M, F>(
    me: ProcessId,
    inbound: Vec<TcpStream>,
    outbound: Vec<(TcpStream, Arc<PeerQueue<M>>)>,
    mut wake_rx: WakeRx,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    inject: F,
) where
    M: Encode + Decode + WireSize,
    F: Fn(ProcessId, M) -> Result<(), ()>,
{
    let pool = BufferPool::new();
    let mut readers: Vec<Inbound> = inbound
        .into_iter()
        .map(|stream| Inbound { stream, recv: RecvBuffer::new(&pool), open: true })
        .collect();
    let mut writers: Vec<Outbound<M>> = outbound
        .into_iter()
        .map(|(stream, queue)| Outbound {
            stream,
            queue,
            scratch: pool.get(),
            sent: 0,
            bounds: Vec::new(),
            batch: Vec::new(),
            open: true,
        })
        .collect();

    let mut poller = Poller::new();
    let mut readiness: Vec<Readiness> = Vec::new();
    let mut fast_passes = 0u32;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let signaled = waker.take_signal();
        // A pending signal means fresh *queue* work: drain it straight
        // into the sockets without a readiness syscall ([`MAX_FAST_PASSES`]
        // bounds how long inbound bytes can be deferred this way).
        if signaled && !stopping && fast_passes < MAX_FAST_PASSES {
            fast_passes += 1;
            service_writers(me, &mut writers);
            continue;
        }
        fast_passes = 0;
        // Out of fast passes or out of signals: take a full readiness
        // pass. With a signal (or stop) pending the poll is a zero-timeout
        // sample; otherwise announce the park — a wake racing in aborts it
        // (see [`Waker`] for the handshake).
        let mut timeout = Duration::ZERO;
        let mut parked = false;
        if !(signaled || stopping) {
            if waker.announce_sleep() {
                timeout = TICK;
                parked = true;
            } else {
                waker.take_signal();
            }
        }
        // Interest layout: [wake_rx, readers..., writers...]. Writers only
        // need POLLOUT while parked on a partial write; fresh batches are
        // attempted opportunistically below without waiting for an event.
        {
            let mut interests: Vec<(&dyn PollSource, Interest)> =
                Vec::with_capacity(1 + readers.len() + writers.len());
            interests.push((&wake_rx, Interest::READ));
            for r in &readers {
                interests.push((&r.stream, if r.open { Interest::READ } else { Interest::NONE }));
            }
            for w in &writers {
                let parked = w.open && w.scratch.len() > w.sent;
                interests.push((&w.stream, if parked { Interest::WRITE } else { Interest::NONE }));
            }
            // A poll failure is unrecoverable for this loop; treat it as a
            // stop request rather than spinning on the error.
            // lint:allow(E1): poll(2) with a bounded tick is the loop's one sanctioned parking point
            if poller.wait(&interests, &mut readiness, timeout).is_err() {
                stop.store(true, Ordering::Release);
            }
        }
        if parked {
            waker.finish_sleep();
            // Consume the signal of any wake that landed mid-park: the
            // scan below covers it either way.
            waker.take_signal();
        }
        // Wake bytes exist only when a waker caught the loop parked;
        // everything else stays out of the pipe entirely.
        if readiness.first().is_some_and(|r| r.readable) {
            wake_rx.drain_wakes();
        }

        for (i, r) in readers.iter_mut().enumerate() {
            if r.open && readiness[1 + i].readable {
                service_reader(r, &inject);
            }
        }

        // Every open writer gets a service pass each tick: wake-ups and
        // read events both mean queues may have refilled, and an idle pass
        // is one uncontended try_take_batch lock per peer.
        service_writers(me, &mut writers);

        if stopping {
            // Final pass already flushed what the kernel would take
            // without blocking; everything else is dropped (crashed-peer
            // semantics). Tear the sockets down and exit.
            for w in &writers {
                poll::shutdown_stream(&w.stream, Shutdown::Both);
            }
            for r in &readers {
                poll::shutdown_stream(&r.stream, Shutdown::Both);
            }
            return;
        }
    }
}

/// Drains one inbound stream: read into the pooled arena, decode frames
/// in place, inject. Stops at `WouldBlock`, EOF, a decode error (poisoned
/// framing ⇒ drop the connection), or the per-tick read cap.
fn service_reader<M, F>(r: &mut Inbound, inject: &F)
where
    M: Decode + WireSize,
    F: Fn(ProcessId, M) -> Result<(), ()>,
{
    let mut reads = 0;
    let mut drained = false;
    loop {
        loop {
            match r.recv.next_frame::<TaggedOwned<M>>() {
                Ok(Some(t)) => {
                    if inject(t.from, t.msg).is_err() {
                        // Node stopped: nothing left to deliver to.
                        poll::shutdown_stream(&r.stream, Shutdown::Both);
                        r.open = false;
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    poll::shutdown_stream(&r.stream, Shutdown::Both);
                    r.open = false;
                    return;
                }
            }
        }
        if drained || reads >= MAX_READS_PER_TICK {
            return;
        }
        let spare = r.recv.spare(RECV_CHUNK);
        let want = spare.len();
        match poll::try_read(&mut r.stream, spare) {
            Ok(Some(0)) | Err(_) => {
                // EOF or error: the peer is gone. Frames already decoded
                // were delivered; nothing more will be.
                r.open = false;
                return;
            }
            Ok(Some(n)) => {
                r.recv.commit(n);
                reads += 1;
                // A short read means the socket is (momentarily) empty:
                // decode what arrived and skip the would-be-EAGAIN read.
                // Level-triggered polling re-arms the stream if more lands.
                drained = n < want;
            }
            Ok(None) => return,
        }
    }
}

/// One service pass over every open writer, applying the state
/// transitions ([`service_writer`] reports them, this applies them).
fn service_writers<M: Encode + WireSize>(me: ProcessId, writers: &mut [Outbound<M>]) {
    for w in writers.iter_mut() {
        if !w.open {
            continue;
        }
        match service_writer(me, w) {
            WriterState::Idle | WriterState::Parked => {}
            WriterState::Finished => {
                // Queue closed and drained: signal EOF to the peer's
                // reader, keep our read side alive.
                poll::shutdown_stream(&w.stream, Shutdown::Write);
                w.open = false;
            }
            WriterState::Dead => {
                w.queue.close();
                poll::shutdown_stream(&w.stream, Shutdown::Both);
                w.open = false;
            }
        }
    }
}

/// Pushes one outbound connection as far as the kernel allows: flush any
/// parked suffix, then keep pulling and encoding batches until the queue
/// is empty (Idle), the socket is full (Parked), the queue is closed and
/// drained (Finished), or the peer is dead (Dead).
fn service_writer<M: Encode + WireSize>(from: ProcessId, w: &mut Outbound<M>) -> WriterState {
    loop {
        if w.scratch.len() > w.sent {
            match poll::try_write(&mut w.stream, &w.scratch[w.sent..]) {
                Ok(Some(n)) => {
                    w.sent += n;
                    if w.sent < w.scratch.len() {
                        continue; // short write: try once more / park below
                    }
                    w.scratch.clear();
                    w.sent = 0;
                }
                Ok(None) => return WriterState::Parked,
                Err(_) => return WriterState::Dead,
            }
        }
        w.batch.clear();
        match w.queue.try_take_batch(&mut w.batch) {
            BatchStatus::Empty => return WriterState::Idle,
            BatchStatus::Closed => return WriterState::Finished,
            BatchStatus::Took => {}
        }
        w.bounds.clear();
        for msg in &w.batch {
            // An oversized frame is unencodable, not a transport error:
            // skip it (write_frame_into already rolled the scratch back).
            if write_frame_into(&Tagged { from, msg }, &mut w.scratch).is_ok() {
                w.bounds.push(w.scratch.len());
            }
        }
        if w.scratch.is_empty() {
            continue;
        }
        // One vectored write over the per-frame slices: the kernel gathers
        // the whole batch in one syscall, no second userspace copy. A
        // partial acceptance leaves a contiguous suffix in scratch, which
        // the parked branch above flushes as plain bytes.
        let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(w.bounds.len());
        let mut start = 0;
        for &end in &w.bounds {
            slices.push(std::io::IoSlice::new(&w.scratch[start..end]));
            start = end;
        }
        match poll::try_write_vectored(&mut w.stream, &slices) {
            Ok(Some(n)) => {
                drop(slices);
                w.sent = n;
                if w.sent == w.scratch.len() {
                    w.scratch.clear();
                    w.sent = 0;
                }
            }
            Ok(None) => {
                drop(slices);
                w.sent = 0;
                return WriterState::Parked;
            }
            Err(_) => return WriterState::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{write_frame, FrameBuffer};
    use crate::poll::wake_channel;
    use crate::queue::tests::Classed;
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::Instant;

    fn blocking_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn spawn_loop(
        inbound: Vec<TcpStream>,
        outbound: Vec<(TcpStream, Arc<PeerQueue<Classed>>)>,
    ) -> (EventLoopHandle, Receiver<(ProcessId, Classed)>) {
        for s in inbound.iter().chain(outbound.iter().map(|(s, _)| s)) {
            s.set_nonblocking(true).unwrap();
            s.set_nodelay(true).unwrap();
        }
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let (tx, rx): (Sender<(ProcessId, Classed)>, _) = unbounded();
        let handle = spawn(
            ProcessId::new(0),
            inbound,
            outbound,
            wake_rx,
            waker,
            move |from, msg| tx.send((from, msg)).map_err(|_| ()),
        );
        (handle, rx)
    }

    #[test]
    fn outbound_batch_drains_ordering_ahead_of_bulk_over_the_wire() {
        let (ours, mut theirs) = blocking_pair();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        // Fill before the loop starts so the whole burst is one batch.
        for v in [2, 4, 1, 6, 3, 8, 5] {
            queue.enqueue(Classed(v));
        }
        let (handle, _rx) = spawn_loop(vec![], vec![(ours, Arc::clone(&queue))]);
        handle.waker.wake();

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 4096];
        while got.len() < 7 {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(0));
                got.push(t.msg.0);
            }
        }
        assert_eq!(got, vec![1, 3, 5, 2, 4, 6, 8], "ordering lane must drain first");
        handle.stop();
        handle.join();
    }

    #[test]
    fn corrupt_inbound_frame_tears_the_connection_after_delivering_the_good_prefix() {
        let (theirs, ours) = blocking_pair();
        let (handle, rx) = spawn_loop(vec![ours], vec![]);
        let mut theirs = theirs;
        write_frame(&Tagged { from: ProcessId::new(1), msg: &Classed(42) }, &mut theirs).unwrap();
        // A malformed frame: the length prefix says 2 bytes, which can
        // never decode as a Tagged<Classed>.
        theirs.write_all(&2u32.to_le_bytes()).unwrap();
        theirs.write_all(&[0xAB, 0xCD]).unwrap();
        // A good frame after the corruption must never be delivered (the
        // loop may already have torn the socket down — ignore errors).
        let _ = write_frame(&Tagged { from: ProcessId::new(1), msg: &Classed(7) }, &mut theirs);

        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first, (ProcessId::new(1), Classed(42)));
        assert!(
            rx.recv_timeout(Duration::from_secs(2)).is_err(),
            "no frame may be delivered after a decode error"
        );
        handle.stop();
        handle.join();
    }

    /// A bulk frame big enough that a few thousand of them overflow any
    /// socket buffer, forcing the loop to park on a partial write.
    #[derive(Clone, Debug, PartialEq)]
    struct Huge(u32);
    const HUGE_LEN: usize = 4096;
    impl iabc_types::WireSize for Huge {
        fn wire_size(&self) -> usize {
            4 + HUGE_LEN
        }
    }
    impl Encode for Huge {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, HUGE_LEN));
        }
    }
    impl Decode for Huge {
        fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
            let id = u32::decode(buf)?;
            if buf.len() < HUGE_LEN {
                return Err(iabc_types::CodecError::Truncated { need: HUGE_LEN, have: buf.len() });
            }
            let (body, rest) = buf.split_at(HUGE_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Huge(id))
        }
    }

    #[test]
    fn shutdown_never_hangs_on_a_peer_that_stopped_reading() {
        // The peer end exists but never reads: our writes eventually
        // WouldBlock with a parked remainder. stop() must still return
        // promptly — the backlog to a dead peer is dropped, not awaited.
        let (ours, theirs) = blocking_pair();
        ours.set_nonblocking(true).unwrap();
        let queue: Arc<PeerQueue<Huge>> = Arc::new(PeerQueue::new());
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let handle = spawn(
            ProcessId::new(0),
            vec![],
            vec![(ours, Arc::clone(&queue))],
            wake_rx,
            waker,
            |_, _: Huge| Ok(()),
        );
        // ~16 MiB queued (within queue capacity, far past socket buffers):
        // the loop must park on a partial write.
        for v in 0..4096u32 {
            queue.enqueue(Huge(v));
        }
        handle.waker.wake();
        std::thread::sleep(Duration::from_millis(100));
        queue.close();
        let t0 = Instant::now();
        handle.stop();
        handle.join();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown must not wait for a peer that never drains"
        );
        drop(theirs);
    }

    #[test]
    fn vectored_drain_survives_partial_writes_on_huge_batches() {
        // One ~16 MiB pre-filled batch, far past the socket buffer: the
        // single vectored write cannot take it all, so the loop must park
        // the remainder and resume on writability — every frame must
        // still arrive intact and in FIFO order.
        const FRAMES: u32 = 2048;
        let (ours, mut theirs) = blocking_pair();
        let queue: Arc<PeerQueue<Huge>> = Arc::new(PeerQueue::new());
        for v in 0..FRAMES {
            queue.enqueue(Huge(v));
        }
        ours.set_nonblocking(true).unwrap();
        let (wake_tx, wake_rx) = wake_channel().unwrap();
        let waker = Arc::new(Waker::new(wake_tx));
        let handle = spawn(
            ProcessId::new(2),
            vec![],
            vec![(ours, Arc::clone(&queue))],
            wake_rx,
            waker,
            |_, _: Huge| Ok(()),
        );
        handle.waker.wake();
        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        while got.len() < FRAMES as usize {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Huge>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(2));
                got.push(t.msg.0);
            }
        }
        // Every frame arrived intact (the Decode impl checks the body),
        // in FIFO order — whichever frame the short write split.
        assert_eq!(got, (0..FRAMES).collect::<Vec<_>>());
        handle.stop();
        handle.join();
    }

    #[test]
    fn wake_coalescing_still_delivers_every_burst() {
        // Many small pushes with wakes in between: regardless of how the
        // flag coalesces them, every frame must arrive, in lane order
        // within each drained batch.
        let (ours, mut theirs) = blocking_pair();
        theirs.set_nodelay(true).unwrap();
        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        let (handle, _rx) = spawn_loop(vec![], vec![(ours, Arc::clone(&queue))]);
        let total = 500u32;
        let pusher = {
            let queue = Arc::clone(&queue);
            let waker = Arc::clone(&handle.waker);
            std::thread::spawn(move || {
                for v in 0..total {
                    queue.enqueue(Classed(v));
                    waker.wake();
                }
            })
        };
        let mut frames = FrameBuffer::new();
        let mut got = vec![false; total as usize];
        let mut seen = 0usize;
        let mut chunk = [0u8; 4096];
        while seen < total as usize {
            let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
            assert!(read > 0, "stream closed early");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                let idx = t.msg.0 as usize;
                assert!(!got[idx], "duplicate frame {idx}");
                got[idx] = true;
                seen += 1;
            }
        }
        pusher.join().unwrap();
        handle.stop();
        handle.join();
    }

    /// A classed frame sized for the short-write storm: odd ids ride the
    /// ordering lane, even ids the bulk lane, and the 2 KiB body means a
    /// pre-filled batch of a few hundred frames overflows the socket
    /// buffer many times over, so the vectored drain keeps short-writing
    /// and parking mid-frame. The `Decode` impl checks the body, so a
    /// suffix spliced back at the wrong offset fails loudly.
    #[derive(Clone, Debug, PartialEq)]
    struct Storm(u32);
    const STORM_LEN: usize = 2048;
    impl iabc_types::WireSize for Storm {
        fn wire_size(&self) -> usize {
            4 + STORM_LEN
        }
        fn traffic_class(&self) -> iabc_types::TrafficClass {
            if self.0 % 2 == 1 {
                iabc_types::TrafficClass::Ordering
            } else {
                iabc_types::TrafficClass::Bulk
            }
        }
    }
    impl Encode for Storm {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, STORM_LEN));
        }
    }
    impl Decode for Storm {
        fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
            let id = u32::decode(buf)?;
            if buf.len() < STORM_LEN {
                return Err(iabc_types::CodecError::Truncated { need: STORM_LEN, have: buf.len() });
            }
            let (body, rest) = buf.split_at(STORM_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Storm(id))
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Short-write storm: an arbitrary lane mix far past the socket
        /// buffer, drained against a reader whose chunk size is also
        /// arbitrary. However the kernel slices the vectored writes, no
        /// frame may be dropped, duplicated, corrupted, or reordered
        /// within its lane — the parked scratch suffix must resume at
        /// exactly the byte where the short write stopped.
        #[test]
        fn short_write_storm_preserves_per_lane_fifo(
            vals in proptest::collection::vec(any::<u32>(), 64..320),
            read_cap in 32usize..4096,
        ) {
            let (ours, mut theirs) = blocking_pair();
            let queue: Arc<PeerQueue<Storm>> = Arc::new(PeerQueue::new());
            // Fill before the loop starts so the storm is one huge batch.
            for &v in &vals {
                queue.enqueue(Storm(v));
            }
            ours.set_nonblocking(true).unwrap();
            let (wake_tx, wake_rx) = wake_channel().unwrap();
            let waker = Arc::new(Waker::new(wake_tx));
            let handle = spawn(
                ProcessId::new(3),
                vec![],
                vec![(ours, Arc::clone(&queue))],
                wake_rx,
                waker,
                |_, _: Storm| Ok(()),
            );
            handle.waker.wake();
            let mut frames = FrameBuffer::new();
            let mut got: Vec<u32> = Vec::new();
            let mut chunk = vec![0u8; read_cap];
            while got.len() < vals.len() {
                let read = std::io::Read::read(&mut theirs, &mut chunk).unwrap();
                prop_assert!(read > 0, "stream closed before the storm arrived");
                frames.extend(&chunk[..read]);
                while let Some(t) = frames.next_frame::<TaggedOwned<Storm>>().unwrap() {
                    prop_assert_eq!(t.from, ProcessId::new(3));
                    got.push(t.msg.0);
                }
            }
            handle.stop();
            handle.join();
            // Nothing extra arrived, and each lane is FIFO end to end.
            prop_assert_eq!(got.len(), vals.len());
            let lane = |seq: &[u32], odd: bool| -> Vec<u32> {
                seq.iter().copied().filter(|v| (v % 2 == 1) == odd).collect()
            };
            prop_assert_eq!(lane(&got, true), lane(&vals, true), "ordering lane reordered");
            prop_assert_eq!(lane(&got, false), lane(&vals, false), "bulk lane reordered");
        }
    }
}
