//! Real-network runtimes for the sans-io protocol stacks.
//!
//! The paper's Neko framework ran the *same* protocol code in simulation
//! and on a real cluster. This crate is the "real" side for our stacks:
//!
//! * [`ThreadCluster`] — one OS thread per process, crossbeam channels as
//!   links, wall-clock timers. In-process, zero configuration.
//! * [`TcpCluster`] — one OS thread per process, length-prefixed frames
//!   over loop-back TCP sockets, wall-clock timers. Exercises the real
//!   codec path end to end.
//!
//! Both drive any [`Node`](iabc_runtime::Node) implementation — the very same
//! [`AbcastNode`](iabc_core::AbcastNode) state machines the simulator runs.
//! `Action::Work` is ignored (real CPUs charge themselves).

pub mod cluster;
pub mod codec;
pub mod tcp;

pub use cluster::ThreadCluster;
pub use tcp::TcpCluster;

use iabc_types::{ProcessId, Time};

/// An application output collected from a real-runtime node.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOutput<O> {
    /// Wall-clock time since cluster start.
    pub at: Time,
    /// The producing process.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}
