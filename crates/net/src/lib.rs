//! Real-network runtimes for the sans-io protocol stacks.
//!
//! The paper's Neko framework ran the *same* protocol code in simulation
//! and on a real cluster. This crate is the "real" side for our stacks:
//!
//! * [`ThreadCluster`] — one OS thread per process, crossbeam channels as
//!   links, wall-clock timers. In-process, zero configuration.
//! * [`TcpCluster`] — length-prefixed frames over loop-back TCP sockets,
//!   all I/O driven by **one event-loop thread per process** ([`poll`]
//!   readiness, pooled buffers, decode-in-place). Exercises the real
//!   codec path end to end.
//! * [`ThreadedTcpCluster`] — the prior thread-per-connection transport
//!   (`2·(n−1)` blocking I/O threads per process), kept as the control
//!   arm of the `loopback_cluster` bench.
//!
//! All three drive any [`Node`](iabc_runtime::Node) implementation — the very
//! same [`AbcastNode`](iabc_core::AbcastNode) state machines the simulator
//! runs. `Action::Work` is ignored (real CPUs charge themselves).

pub mod cluster;
pub mod codec;
pub mod netfault;
pub mod poll;
pub mod pool;
pub mod tcp;
pub mod tcp_threaded;

pub(crate) mod adapter;
pub(crate) mod event_loop;
pub(crate) mod queue;
pub(crate) mod reconnect;

pub use cluster::ThreadCluster;
pub use netfault::{NetFaultPlan, NetFaultReport, NetFaultStats};
pub use pool::{BufferPool, PoolStats};
pub use tcp::TcpCluster;
pub use tcp_threaded::ThreadedTcpCluster;

use iabc_types::{ProcessId, Time};

/// An application output collected from a real-runtime node.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOutput<O> {
    /// Wall-clock time since cluster start.
    pub at: Time,
    /// The producing process.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}
