//! Fault injection for the real TCP transport.
//!
//! [`NetFaultPlan`] mirrors the simulator's `iabc_sim::LinkFaults`
//! grammar — peer-pair partition windows over time plus seeded per-frame
//! drop / duplicate probabilities — for the event-driven transport. The
//! shim sits at the outbound boundary: the event loop consults it when a
//! frame leaves a [`crate::queue::PeerQueue`] for the wire, and once per
//! tick to enforce partitions, which it realizes the only way a real
//! transport can — by severing the connection and gating reconnect
//! attempts until the window closes. Delay and reorder verdicts exist
//! only in the simulator (a nonblocking loop cannot hold frames back
//! without growing a timer wheel); partitions, drops, and duplicates
//! cover the nemesis schedules, and the sim runs the full grammar.
//!
//! Like the sim layer, the draw stream is splitmix64 keyed on
//! `(seed, from, to, per-link frame counter)`: the same plan over the
//! same frame sequence injects the same faults. Times are loop-relative
//! [`Duration`]s (since the cluster started), not wall-clock instants, so
//! plans are plain data and the module stays clock-free.
//!
//! An **empty plan is never consulted**: `TcpCluster::start` wires the
//! fault path only when a plan is armed, so fault-free clusters run the
//! exact pre-fault-layer code and their wire traffic is byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};

use iabc_types::{Duration, ProcessId};

/// splitmix64 finalizer: a full-avalanche scramble of one 64-bit word.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A symmetric partition window between two processes: the link is dead
/// in both directions while `from <= now < until` (loop-relative time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PartitionWindow {
    a: ProcessId,
    b: ProcessId,
    from: Duration,
    until: Duration,
}

/// What the fault layer decided to do with one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetVerdict {
    /// Send normally.
    Pass,
    /// Lose the frame (random drop, or a partition window raced the
    /// per-tick connection severance).
    Drop,
    /// Send the frame twice; dedup is the receiver's job.
    Duplicate,
}

/// Deterministic fault plan for a [`crate::TcpCluster`]: partitions over
/// time windows plus seeded drop / duplicate probabilities, the transport
/// half of the simulator's `LinkFaults` grammar (see the module docs).
/// Probabilities are permille (0..=1000) of frames judged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultPlan {
    seed: u64,
    partitions: Vec<PartitionWindow>,
    drop_permille: u16,
    duplicate_permille: u16,
}

impl NetFaultPlan {
    /// A plan with the given seed and no faults configured yet.
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            partitions: Vec::new(),
            drop_permille: 0,
            duplicate_permille: 0,
        }
    }

    /// Adds a symmetric partition of `a` and `b` over `[from, until)`
    /// since cluster start (builder style). Both sides' event loops sever
    /// the connection within one poll tick of the window opening and
    /// refuse reconnect attempts until it closes; the reconnect machinery
    /// heals the link afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` or `a == b`.
    pub fn partition(mut self, a: ProcessId, b: ProcessId, from: Duration, until: Duration) -> Self {
        assert!(until > from, "partition window must be non-empty");
        assert!(a != b, "cannot partition a process from itself");
        self.partitions.push(PartitionWindow { a, b, from, until });
        self
    }

    /// Partitions `p` from every other process of an `n`-process cluster
    /// over `[from, until)` (builder style) — full isolation.
    pub fn isolate(mut self, p: ProcessId, n: usize, from: Duration, until: Duration) -> Self {
        for q in ProcessId::all(n) {
            if q != p {
                self = self.partition(p, q, from, until);
            }
        }
        self
    }

    /// Sets the per-frame drop probability in permille (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the combined probabilities exceed 1000 permille.
    pub fn drop(mut self, permille: u16) -> Self {
        self.drop_permille = permille;
        self.assert_budget();
        self
    }

    /// Sets the per-frame duplication probability in permille (builder
    /// style).
    ///
    /// # Panics
    ///
    /// Panics if the combined probabilities exceed 1000 permille.
    pub fn duplicate(mut self, permille: u16) -> Self {
        self.duplicate_permille = permille;
        self.assert_budget();
        self
    }

    fn assert_budget(&self) {
        let total = self.drop_permille + self.duplicate_permille;
        assert!(total <= 1000, "fault probabilities exceed 1000 permille (got {total})");
    }

    /// Whether any partition window covers the `a`–`b` link at `now`.
    pub fn partitioned_at(&self, now: Duration, a: ProcessId, b: ProcessId) -> bool {
        self.partitions.iter().any(|w| {
            ((w.a == a && w.b == b) || (w.a == b && w.b == a)) && now >= w.from && now < w.until
        })
    }

    /// The earliest loop time at which every partition window has closed
    /// (`Duration::ZERO` if none are configured) — how long a nemesis run
    /// must keep going before it may assert convergence.
    pub fn healed_after(&self) -> Duration {
        self.partitions
            .iter()
            .map(|w| w.until)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Whether the probabilistic per-frame path is armed at all.
    pub(crate) fn has_frame_faults(&self) -> bool {
        self.drop_permille > 0 || self.duplicate_permille > 0
    }
}

/// Counters one cluster's event loops share, for nemesis assertions and
/// the CI fault-trace artifact. Plain relaxed atomics: these are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct NetFaultStats {
    /// Frames dropped by the probabilistic fault path.
    pub frames_dropped: AtomicU64,
    /// Frames sent twice by the probabilistic fault path.
    pub frames_duplicated: AtomicU64,
    /// Connections severed by a partition window opening.
    pub links_severed: AtomicU64,
    /// Connections re-established by the reconnect machinery.
    pub reconnects: AtomicU64,
    /// Frames shed from bulk lanes while a peer was down.
    pub frames_shed: AtomicU64,
}

impl NetFaultStats {
    /// One relaxed read per counter, as a plain tuple-free report.
    pub fn report(&self) -> NetFaultReport {
        NetFaultReport {
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_duplicated: self.frames_duplicated.load(Ordering::Relaxed),
            links_severed: self.links_severed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`NetFaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultReport {
    pub frames_dropped: u64,
    pub frames_duplicated: u64,
    pub links_severed: u64,
    pub reconnects: u64,
    pub frames_shed: u64,
}

/// The per-loop judge: one process's view of the plan, with the per-link
/// draw counters for its outbound links. Owned by the event loop thread;
/// only the stats are shared.
#[derive(Debug)]
pub(crate) struct LinkJudge {
    plan: NetFaultPlan,
    me: ProcessId,
    /// Per-destination frame counters driving the deterministic draws.
    counters: Vec<u64>,
}

impl LinkJudge {
    pub(crate) fn new(plan: NetFaultPlan, me: ProcessId, n: usize) -> LinkJudge {
        LinkJudge { plan, me, counters: vec![0; n] }
    }

    pub(crate) fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Judges one outbound frame to `to` at loop time `now`.
    ///
    /// Partition windows deliberately do NOT drop frames here: the event
    /// loop enforces them by severing the connection and parking the
    /// queue (lossless, replayed after the heal). Dropping at the frame
    /// level too would turn the tick-granularity race — a frame judged
    /// just before `maintain_links` notices the window — into permanent
    /// loss, which a partition is not. Only the explicit drop/duplicate
    /// probabilities consume randomness.
    pub(crate) fn judge_frame(&mut self, _now: Duration, to: ProcessId) -> NetVerdict {
        if !self.plan.has_frame_faults() {
            return NetVerdict::Pass;
        }
        let Some(counter) = self.counters.get_mut(to.as_usize()) else {
            return NetVerdict::Pass;
        };
        *counter += 1;
        let link = (u64::from(self.me.index()) << 32) | u64::from(to.index());
        let draw = splitmix64(
            self.plan.seed ^ splitmix64(link) ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let roll = draw % 1000;
        if roll < u64::from(self.plan.drop_permille) {
            return NetVerdict::Drop;
        }
        if roll < u64::from(self.plan.drop_permille) + u64::from(self.plan.duplicate_permille) {
            return NetVerdict::Duplicate;
        }
        NetVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn partition_window_is_half_open_and_symmetric() {
        let plan = NetFaultPlan::new(0).partition(p(0), p(1), ms(10), ms(20));
        assert!(!plan.partitioned_at(ms(9), p(0), p(1)));
        assert!(plan.partitioned_at(ms(10), p(0), p(1)));
        assert!(plan.partitioned_at(ms(15), p(1), p(0)));
        assert!(!plan.partitioned_at(ms(20), p(0), p(1)));
        assert!(!plan.partitioned_at(ms(15), p(0), p(2)));
        assert_eq!(plan.healed_after(), ms(20));
    }

    #[test]
    fn isolate_cuts_every_link_of_the_victim() {
        let plan = NetFaultPlan::new(0).isolate(p(2), 4, ms(0), ms(5));
        for q in [p(0), p(1), p(3)] {
            assert!(plan.partitioned_at(ms(1), p(2), q));
            assert!(plan.partitioned_at(ms(1), q, p(2)));
        }
        assert!(!plan.partitioned_at(ms(1), p(0), p(1)));
    }

    #[test]
    fn same_seed_same_frames_identical_verdicts() {
        let run = |seed: u64| {
            let mut judge = LinkJudge::new(NetFaultPlan::new(seed).drop(150).duplicate(100), p(0), 3);
            (0..500u64).map(|i| judge.judge_frame(ms(i), p((i % 2 + 1) as u16))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn probabilities_populate_every_verdict() {
        let mut judge = LinkJudge::new(NetFaultPlan::new(3).drop(200).duplicate(100), p(0), 2);
        let mut drops = 0u32;
        let mut dups = 0u32;
        let mut passes = 0u32;
        for i in 0..2000u64 {
            match judge.judge_frame(ms(i), p(1)) {
                NetVerdict::Drop => drops += 1,
                NetVerdict::Duplicate => dups += 1,
                NetVerdict::Pass => passes += 1,
            }
        }
        assert!((200..=600).contains(&drops), "drops = {drops}");
        assert!((100..=350).contains(&dups), "dups = {dups}");
        assert!(passes >= 1200, "passes = {passes}");
    }

    #[test]
    fn empty_plan_judges_pass_without_consuming_draws() {
        let mut judge = LinkJudge::new(NetFaultPlan::new(9), p(0), 2);
        for i in 0..10u64 {
            assert_eq!(judge.judge_frame(ms(i), p(1)), NetVerdict::Pass);
        }
        assert_eq!(judge.counters, vec![0, 0], "an empty plan must not advance the stream");
    }

    #[test]
    fn partition_windows_never_drop_frames_at_the_judge() {
        // Partitions are enforced by severing the connection (lossless:
        // the queue parks, the scratch is salvaged); a frame that races
        // the sever must pass, not silently die.
        let mut judge =
            LinkJudge::new(NetFaultPlan::new(1).partition(p(0), p(1), ms(0), ms(10)), p(0), 2);
        assert!(judge.plan().partitioned_at(ms(5), p(0), p(1)));
        assert_eq!(judge.judge_frame(ms(5), p(1)), NetVerdict::Pass);
        assert_eq!(judge.counters[1], 0, "partition checks consume no draw");
    }

    #[test]
    #[should_panic(expected = "exceed 1000 permille")]
    fn overcommitted_probability_budget_panics() {
        let _ = NetFaultPlan::new(0).drop(600).duplicate(500);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_partition_window_panics() {
        let _ = NetFaultPlan::new(0).partition(p(0), p(1), ms(5), ms(5));
    }
}
