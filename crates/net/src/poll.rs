//! A minimal readiness abstraction over `poll(2)` for the event loop.
//!
//! This is the **sanctioned I/O layer** of the event-driven transport: the
//! one module allowed to touch the kernel. Everything here is nonblocking
//! by construction — [`Poller::wait`] blocks only up to its caller-chosen
//! timeout, and the `try_*` wrappers translate `WouldBlock` into `None`
//! instead of parking the thread. The lint rule `E1` enforces that the
//! event-loop modules reach the kernel *only* through this file.
//!
//! No registry dependencies: on Unix the shim declares `poll(2)` itself
//! (std already links libc, so the single `extern "C"` item adds nothing
//! to the build); elsewhere a readiness-*emulating* fallback reports every
//! registered source ready after a short sleep and lets the nonblocking
//! ops discover the truth via `WouldBlock` — correct (the loop must
//! tolerate spurious readiness anyway, `poll(2)` is allowed to lie too)
//! if slower.

use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Anything the [`Poller`] can watch: it only needs the raw descriptor.
///
/// The fd is ignored by the non-Unix readiness-emulating fallback, so the
/// non-Unix impls may return `-1`.
pub trait PollSource {
    /// The raw file descriptor handed to `poll(2)`.
    fn poll_fd(&self) -> i32;
}

#[cfg(unix)]
impl PollSource for TcpStream {
    fn poll_fd(&self) -> i32 {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(not(unix))]
impl PollSource for TcpStream {
    fn poll_fd(&self) -> i32 {
        -1
    }
}

#[cfg(unix)]
impl PollSource for std::net::TcpListener {
    fn poll_fd(&self) -> i32 {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(not(unix))]
impl PollSource for std::net::TcpListener {
    fn poll_fd(&self) -> i32 {
        -1
    }
}

/// What a caller wants to be told about one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the stream has bytes to read (or hit EOF/error).
    pub readable: bool,
    /// Wake when the stream can accept bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// No interest — the slot is skipped (kept so callers can use stable
    /// indices for a mixed set of live and idle streams).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// What the kernel reported about one stream. Hangups and errors are
/// folded into readiness: a closed or failed stream is "ready" so the
/// caller's nonblocking read/write observes the EOF or error directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Reading will not block (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will not block (space, or a pending error).
    pub writable: bool,
}

impl Readiness {
    fn clear() -> Readiness {
        Readiness::default()
    }
}

/// A reusable `poll(2)` invocation: owns the scratch `pollfd` array so the
/// per-tick cost is filling it, not allocating it.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    /// Maps `fds` entries back to caller indices (interested subset only).
    #[cfg(unix)]
    slots: Vec<usize>,
}

impl Poller {
    /// A poller with empty scratch.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Waits up to `timeout` for any interested stream to become ready.
    ///
    /// `out` is resized to `streams.len()` and `out[i]` reports the
    /// readiness of `streams[i]`; entries with [`Interest::NONE`] are
    /// never reported ready. Returns the number of ready streams (0 on
    /// timeout). Spurious readiness is allowed — callers must treat a
    /// `WouldBlock` from the subsequent I/O as "not actually ready".
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR` (retried).
    pub fn wait(
        &mut self,
        streams: &[(&dyn PollSource, Interest)],
        out: &mut Vec<Readiness>,
        timeout: Duration,
    ) -> io::Result<usize> {
        out.clear();
        out.resize(streams.len(), Readiness::clear());
        self.wait_impl(streams, out, timeout)
    }

    #[cfg(unix)]
    fn wait_impl(
        &mut self,
        streams: &[(&dyn PollSource, Interest)],
        out: &mut [Readiness],
        timeout: Duration,
    ) -> io::Result<usize> {
        self.fds.clear();
        self.slots.clear();
        for (i, (stream, interest)) in streams.iter().enumerate() {
            let mut events = 0i16;
            if interest.readable {
                events |= sys::POLLIN;
            }
            if interest.writable {
                events |= sys::POLLOUT;
            }
            if events != 0 {
                self.fds.push(sys::PollFd { fd: stream.poll_fd(), events, revents: 0 });
                self.slots.push(i);
            }
        }
        if self.fds.is_empty() {
            std::thread::sleep(timeout);
            return Ok(0);
        }
        let millis = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        sys::poll(&mut self.fds, millis)?;
        let mut ready = 0;
        for (fd, &slot) in self.fds.iter().zip(&self.slots) {
            // POLLERR/POLLHUP/POLLNVAL arrive unrequested; fold them into
            // both directions so the caller's next op surfaces the error.
            let broken = fd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            let r = Readiness {
                readable: streams[slot].1.readable && (fd.revents & sys::POLLIN != 0 || broken),
                writable: streams[slot].1.writable && (fd.revents & sys::POLLOUT != 0 || broken),
            };
            if r.readable || r.writable {
                out[slot] = r;
                ready += 1;
            }
        }
        Ok(ready)
    }

    /// Readiness-emulating fallback: report every interested stream ready
    /// after a short nap. The loop's nonblocking ops turn the lie into
    /// `WouldBlock`, so behavior is correct — the nap bounds the spin.
    #[cfg(not(unix))]
    fn wait_impl(
        &mut self,
        streams: &[(&dyn PollSource, Interest)],
        out: &mut [Readiness],
        timeout: Duration,
    ) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        let mut ready = 0;
        for (i, (_, interest)) in streams.iter().enumerate() {
            if interest.readable || interest.writable {
                out[i] = Readiness { readable: interest.readable, writable: interest.writable };
                ready += 1;
            }
        }
        Ok(ready)
    }
}

#[cfg(unix)]
mod sys {
    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>` — identical layout on every Unix.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux (the primary target); the
        // value is always tiny, so platforms with a narrower nfds_t still
        // receive it intact through the C calling convention.
        #[link_name = "poll"]
        fn libc_poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    /// `poll(2)` over the scratch array, retrying `EINTR`.
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a live, exclusively borrowed slice of
            // `#[repr(C)]` pollfd structs; the kernel writes only the
            // `revents` fields of the `fds.len()` entries passed.
            let rc = unsafe { libc_poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// The write end of the event loop's wake channel. Shared by every node
/// thread of a process (writes go through `&self`); a one-byte write
/// nudges the loop out of [`Poller::wait`].
///
/// On Linux this is the classic **self-pipe**: `pipe2(2)` with both ends
/// nonblocking. A pipe write is several times cheaper than pushing a byte
/// through the loop-back TCP stack, and the wake channel is the hottest
/// syscall site of the transport — every first push after a drain pays it.
/// Elsewhere a nonblocking loop-back TCP pair stands in (std offers no
/// portable pipe), trading some wake latency for zero platform code.
#[derive(Debug)]
pub struct WakeTx {
    #[cfg(target_os = "linux")]
    fd: i32,
    #[cfg(not(target_os = "linux"))]
    stream: TcpStream,
}

/// The read end of the wake channel, owned by the event loop; registers
/// with the [`Poller`] like any stream and drains pending wake bytes.
#[derive(Debug)]
pub struct WakeRx {
    #[cfg(target_os = "linux")]
    fd: i32,
    #[cfg(not(target_os = "linux"))]
    stream: TcpStream,
}

// SAFETY(Send/Sync): a raw pipe fd is just an integer; concurrent
// one-byte `write(2)`s from many threads are exactly what pipes support
// (atomic under PIPE_BUF). Dropping closes the fd once — WakeTx and
// WakeRx each own their own end.
#[cfg(target_os = "linux")]
unsafe impl Send for WakeTx {}
#[cfg(target_os = "linux")]
unsafe impl Sync for WakeTx {}

impl WakeTx {
    /// Nonblocking one-byte nudge. A `WouldBlock` (pipe full) is success:
    /// unread wake bytes wake the loop just as well.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `WouldBlock`/`Interrupted` (the
    /// read end is gone, i.e. the loop already exited).
    pub fn notify(&self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            pipe_sys::try_write(self.fd, &[1]).map(|_| ())
        }
        #[cfg(not(target_os = "linux"))]
        {
            try_write_shared(&self.stream, &[1]).map(|_| ())
        }
    }
}

impl WakeRx {
    /// Swallows every pending wake byte (their only content is "look at
    /// the queues"). One syscall in the common case: the drain stops as
    /// soon as a read comes back short.
    pub fn drain_wakes(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            #[cfg(target_os = "linux")]
            let n = pipe_sys::try_read(self.fd, &mut sink);
            #[cfg(not(target_os = "linux"))]
            let n = try_read(&mut self.stream, &mut sink).unwrap_or(Some(0));
            match n {
                Some(n) if n == sink.len() => continue,
                _ => return,
            }
        }
    }
}

impl PollSource for WakeRx {
    fn poll_fd(&self) -> i32 {
        #[cfg(target_os = "linux")]
        {
            self.fd
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.stream.poll_fd()
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for WakeTx {
    fn drop(&mut self) {
        pipe_sys::close(self.fd);
    }
}

#[cfg(target_os = "linux")]
impl Drop for WakeRx {
    fn drop(&mut self) {
        pipe_sys::close(self.fd);
    }
}

/// Creates a connected wake channel (see [`WakeTx`] for the mechanism).
///
/// # Errors
///
/// Propagates `pipe2(2)` failure (fd exhaustion) on Linux; loop-back
/// bind/connect/accept failures elsewhere.
pub fn wake_channel() -> io::Result<(WakeTx, WakeRx)> {
    #[cfg(target_os = "linux")]
    {
        let (read_fd, write_fd) = pipe_sys::pipe()?;
        Ok((WakeTx { fd: write_fd }, WakeRx { fd: read_fd }))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        for s in [&tx, &rx] {
            s.set_nodelay(true)?;
            s.set_nonblocking(true)?;
        }
        Ok((WakeTx { stream: tx }, WakeRx { stream: rx }))
    }
}

/// The `pipe2(2)` shim behind the Linux wake channel. Same pattern as
/// [`sys`]: declare the handful of libc symbols std already links instead
/// of pulling a dependency.
#[cfg(target_os = "linux")]
mod pipe_sys {
    use std::io;

    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        #[link_name = "read"]
        fn libc_read(fd: i32, buf: *mut u8, count: usize) -> isize;
        #[link_name = "write"]
        fn libc_write(fd: i32, buf: *const u8, count: usize) -> isize;
        #[link_name = "close"]
        fn libc_close(fd: i32) -> i32;
    }

    /// A nonblocking close-on-exec pipe, returned as `(read_fd, write_fd)`.
    pub fn pipe() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live 2-element array, exactly what pipe2
        // writes into on success.
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    /// Nonblocking read: `Some(n)` bytes, `None` on `WouldBlock`; EOF and
    /// errors also report `None` (to a wake-byte drain they all mean
    /// "nothing more to swallow"). Retries `EINTR`.
    pub fn try_read(fd: i32, buf: &mut [u8]) -> Option<usize> {
        loop {
            // SAFETY: `buf` is a live, exclusively borrowed slice; the
            // kernel writes at most `buf.len()` bytes into it.
            let rc = unsafe { libc_read(fd, buf.as_mut_ptr(), buf.len()) };
            if rc >= 0 {
                return Some(rc as usize);
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                io::ErrorKind::Interrupted => continue,
                _ => return None,
            }
        }
    }

    /// Nonblocking write; `WouldBlock` (pipe full — unread wakes pending)
    /// is success. Retries `EINTR`.
    ///
    /// # Errors
    ///
    /// Propagates write failures other than `WouldBlock`/`Interrupted` —
    /// for a wake pipe that means the read end closed (`EPIPE`).
    pub fn try_write(fd: i32, buf: &[u8]) -> io::Result<usize> {
        loop {
            // SAFETY: `buf` is a live borrowed slice; the kernel reads at
            // most `buf.len()` bytes from it.
            let rc = unsafe { libc_write(fd, buf.as_ptr(), buf.len()) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                io::ErrorKind::Interrupted => continue,
                io::ErrorKind::WouldBlock => return Ok(0),
                _ => return Err(err),
            }
        }
    }

    /// Best-effort `close(2)` (nothing useful to do with the error).
    pub fn close(fd: i32) {
        // SAFETY: called once per owned fd, from the owner's Drop.
        let _ = unsafe { libc_close(fd) };
    }
}

/// Nonblocking write through a shared reference (`Write` is implemented
/// for `&TcpStream`); same contract as [`try_write`]. For wakers, which
/// are invoked concurrently from many node threads.
///
/// # Errors
///
/// Propagates I/O errors other than `WouldBlock`/`Interrupted`.
pub fn try_write_shared(stream: &TcpStream, buf: &[u8]) -> io::Result<Option<usize>> {
    let mut shared = stream;
    loop {
        match shared.write(buf) {
            Ok(n) => return Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Best-effort socket teardown (`shutdown(2)` — nonblocking by nature:
/// it marks the stream, it never waits for the peer). Errors are
/// swallowed: teardown targets are sockets already known dead or being
/// dropped, and a failed shutdown changes nothing about either.
pub fn shutdown_stream(stream: &TcpStream, how: std::net::Shutdown) {
    let _ = stream.shutdown(how);
}

/// Nonblocking read: `Ok(None)` on `WouldBlock`, `Ok(Some(0))` on EOF,
/// `Ok(Some(n))` on data. Retries `EINTR`.
///
/// # Errors
///
/// Propagates I/O errors other than `WouldBlock`/`Interrupted`.
pub fn try_read(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<Option<usize>> {
    loop {
        match stream.read(buf) {
            Ok(n) => return Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Nonblocking plain write: `Ok(None)` on `WouldBlock`, else the byte
/// count accepted (which may be short). Retries `EINTR`.
///
/// # Errors
///
/// Propagates I/O errors other than `WouldBlock`/`Interrupted`.
pub fn try_write(stream: &mut TcpStream, buf: &[u8]) -> io::Result<Option<usize>> {
    loop {
        match stream.write(buf) {
            Ok(n) => return Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Nonblocking accept on a listener already in nonblocking mode:
/// `Ok(None)` when no connection is pending, otherwise the accepted
/// stream, flipped nonblocking with Nagle disabled — ready for the event
/// loop. Retries `EINTR`; `ECONNABORTED` (the peer gave up while queued)
/// reports `None` rather than an error, per the `accept(2)` litany.
///
/// # Errors
///
/// Propagates accept failures other than
/// `WouldBlock`/`Interrupted`/`ConnectionAborted`, and failures to
/// configure the accepted stream.
pub fn try_accept(listener: &std::net::TcpListener) -> io::Result<Option<TcpStream>> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                return Ok(Some(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

/// Connects to a **loop-back** peer and returns the stream nonblocking
/// with Nagle disabled. Sanctioned for event-loop use on the same grounds
/// as [`Poller::wait`]'s bounded tick: a loop-back `connect(2)` completes
/// or is refused synchronously in the kernel — there is no network for
/// the three-way handshake to cross — so the call cannot park the loop on
/// a remote peer. (The transport is loop-back-only by construction; see
/// `TcpCluster`.) A refused connect — nobody listening, or the listener
/// backlog full — surfaces as `Err`, which the reconnect machinery counts
/// as a failed attempt and retries with backoff.
///
/// # Errors
///
/// Propagates connect or configuration failures.
pub fn connect_loopback(addr: &std::net::SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// Nonblocking vectored write: `Ok(None)` on `WouldBlock`, else the byte
/// count the kernel accepted in one gather (may land mid-slice). Retries
/// `EINTR`.
///
/// # Errors
///
/// Propagates I/O errors other than `WouldBlock`/`Interrupted`.
pub fn try_write_vectored(stream: &mut TcpStream, slices: &[IoSlice<'_>]) -> io::Result<Option<usize>> {
    loop {
        match stream.write_vectored(slices) {
            Ok(n) => return Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn idle_stream_times_out_and_data_makes_it_readable() {
        let (mut a, b) = pair();
        let mut poller = Poller::new();
        let mut out = Vec::new();
        let n = poller
            .wait(&[(&b, Interest::READ)], &mut out, Duration::from_millis(10))
            .unwrap();
        // Spurious readiness is legal (and what the fallback produces),
        // but actual bytes must not be: the stream is idle.
        if n > 0 {
            let mut byte = [0u8; 1];
            assert_eq!(try_read(&mut { b.try_clone().unwrap() }, &mut byte).unwrap(), None);
        }
        assert_eq!(try_write(&mut a, b"x").unwrap(), Some(1));
        let n = poller
            .wait(&[(&b, Interest::READ)], &mut out, Duration::from_secs(5))
            .unwrap();
        assert!(n >= 1, "pending byte must wake the poller");
        assert!(out[0].readable);
        let mut byte = [0u8; 1];
        let mut b = b;
        assert_eq!(try_read(&mut b, &mut byte).unwrap(), Some(1));
        assert_eq!(byte[0], b'x');
        assert_eq!(try_read(&mut b, &mut byte).unwrap(), None, "drained socket would block");
    }

    #[test]
    fn a_full_socket_would_block_and_draining_rearms_writability() {
        let (mut a, mut b) = pair();
        // Flood until the kernel buffers fill.
        let chunk = [0u8; 64 * 1024];
        let mut sent = 0usize;
        while let Some(n) = try_write(&mut a, &chunk).unwrap() {
            sent += n;
            assert!(sent < 1 << 30, "socket never filled");
        }
        let mut poller = Poller::new();
        let mut out = Vec::new();
        // Drain the peer; the writer must become ready again.
        let mut drained = 0usize;
        let mut scratch = vec![0u8; 64 * 1024];
        while drained < sent {
            if let Some(n) = try_read(&mut b, &mut scratch).unwrap() {
                assert!(n > 0);
                drained += n;
            } else {
                poller.wait(&[(&b, Interest::READ)], &mut out, Duration::from_secs(5)).unwrap();
            }
        }
        let n = poller
            .wait(&[(&a, Interest::WRITE)], &mut out, Duration::from_secs(5))
            .unwrap();
        assert!(n >= 1 && out[0].writable, "drained peer must re-arm the writer");
        assert!(try_write(&mut a, b"y").unwrap().is_some());
    }

    #[test]
    fn none_interest_is_never_reported() {
        let (mut a, b) = pair();
        assert_eq!(try_write(&mut a, b"z").unwrap(), Some(1));
        let mut poller = Poller::new();
        let mut out = Vec::new();
        poller
            .wait(&[(&b, Interest::NONE)], &mut out, Duration::from_millis(5))
            .unwrap();
        assert_eq!(out[0], Readiness::default(), "NONE slots stay quiet even with data pending");
    }

    #[test]
    fn wake_channel_notify_wakes_the_poller_and_drain_quiesces_it() {
        let (tx, mut rx) = wake_channel().unwrap();
        let mut poller = Poller::new();
        let mut out = Vec::new();
        tx.notify().unwrap();
        let n = poller
            .wait(&[(&rx, Interest::READ)], &mut out, Duration::from_secs(5))
            .unwrap();
        assert!(n >= 1 && out[0].readable, "a notify byte must wake the poller");
        rx.drain_wakes();
        // Coalesced notifies still only need one drain.
        tx.notify().unwrap();
        tx.notify().unwrap();
        tx.notify().unwrap();
        let n = poller
            .wait(&[(&rx, Interest::READ)], &mut out, Duration::from_secs(5))
            .unwrap();
        assert!(n >= 1 && out[0].readable);
        rx.drain_wakes();
    }

    #[test]
    fn vectored_write_gathers_across_slices() {
        let (mut a, mut b) = pair();
        let n = try_write_vectored(&mut a, &[IoSlice::new(b"ab"), IoSlice::new(b"cd")])
            .unwrap()
            .unwrap();
        assert_eq!(n, 4);
        let mut poller = Poller::new();
        let mut out = Vec::new();
        let mut got = Vec::new();
        let mut scratch = [0u8; 8];
        while got.len() < 4 {
            match try_read(&mut b, &mut scratch).unwrap() {
                Some(n) => got.extend_from_slice(&scratch[..n]),
                None => {
                    poller.wait(&[(&b, Interest::READ)], &mut out, Duration::from_secs(5)).unwrap();
                }
            }
        }
        assert_eq!(got, b"abcd");
    }
}
