//! A reusable byte-buffer pool for the transport hot path.
//!
//! The event loop needs scratch space constantly — receive buffers that
//! sockets read into, encode scratch that outbound batches coalesce into —
//! and allocating it per batch would put the allocator on the per-frame
//! path. [`BufferPool`] keeps returned buffers on a free list instead:
//! [`BufferPool::get`] hands out a cleared [`PooledBuf`] (recycled if one
//! is free, fresh otherwise), the buffer grows on demand like any `Vec`,
//! and dropping it returns it to the pool.
//!
//! # Capacity hygiene
//!
//! A pooled buffer keeps its capacity across uses — that is the point —
//! but it also means one anomalous spike (a rolled-back oversized frame, a
//! single huge batch) would otherwise pin tens of megabytes forever. The
//! return path therefore shrinks any buffer whose capacity exceeds the
//! pool's *shrink threshold* back down to the threshold. Steady-state
//! traffic below the threshold never reallocates; an anomalous spike costs
//! one `realloc` after the spike instead of unbounded resident memory.
//! [`PoolStats::high_water_bytes`] still records the spike, so the
//! high-water mark is an honest "largest buffer ever used" metric rather
//! than a claim about current residency.
//!
//! # Lock discipline
//!
//! One mutex guards the free list and the stats; it is held only for the
//! push/pop and never across I/O or allocation of the buffer contents.
//! Poisoning is recovered (`unwrap_or_else(PoisonError::into_inner)`): the
//! free list is valid after any partial mutation, and a panicking user of
//! one buffer must not wedge every other connection sharing the pool.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default capacity above which a returned buffer is shrunk back down
/// (1 MiB). Large enough that coalesced batches of ordinary frames never
/// hit it; small enough that a rolled-back `MAX_FRAME`-sized encode (16
/// MiB+) does not stay resident.
pub const DEFAULT_SHRINK_THRESHOLD: usize = 1 << 20;

#[derive(Debug, Default)]
struct PoolState {
    /// LIFO free list (most recently returned buffer is reused first —
    /// its pages are the warmest).
    free: VecDeque<Vec<u8>>,
    stats: PoolStats,
}

/// Usage counters for a [`BufferPool`] (see [`BufferPool::stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Largest capacity any pooled buffer ever reached, in bytes —
    /// recorded on return, *before* the shrink clamp, so spikes show up
    /// even though they are not kept resident.
    pub high_water_bytes: usize,
    /// Buffers currently handed out.
    pub in_use: usize,
    /// Buffers currently parked on the free list.
    pub free: usize,
    /// Total `get` calls served.
    pub gets: u64,
    /// Of those, how many reused a pooled buffer (vs. allocating fresh).
    pub reuses: u64,
    /// Returned buffers that were shrunk back to the threshold.
    pub shrinks: u64,
}

/// A shared grow-on-demand pool of byte buffers (see module docs).
#[derive(Debug, Clone)]
pub struct BufferPool {
    state: Arc<Mutex<PoolState>>,
    shrink_threshold: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    /// A pool with the default shrink threshold
    /// ([`DEFAULT_SHRINK_THRESHOLD`]).
    pub fn new() -> Self {
        BufferPool::with_shrink_threshold(DEFAULT_SHRINK_THRESHOLD)
    }

    /// A pool that clamps returned buffers to `threshold` bytes of
    /// capacity. `0` keeps nothing pooled beyond empty buffers (useful in
    /// tests); steady-state users want the default.
    pub fn with_shrink_threshold(threshold: usize) -> Self {
        BufferPool {
            state: Arc::new(Mutex::new(PoolState::default())),
            shrink_threshold: threshold,
        }
    }

    /// Takes a cleared buffer out of the pool (recycled if available,
    /// fresh otherwise). Dropping the returned [`PooledBuf`] gives the
    /// buffer back.
    pub fn get(&self) -> PooledBuf {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.stats.gets += 1;
        s.stats.in_use += 1;
        let buf = match s.free.pop_back() {
            Some(mut b) => {
                s.stats.reuses += 1;
                s.stats.free -= 1;
                b.clear();
                b
            }
            None => Vec::new(),
        };
        drop(s);
        PooledBuf { buf, pool: Arc::clone(&self.state), shrink_threshold: self.shrink_threshold }
    }

    /// A snapshot of the pool's usage counters.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats.clone()
    }
}

/// A byte buffer checked out of a [`BufferPool`]; derefs to `Vec<u8>` and
/// returns itself to the pool on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<Mutex<PoolState>>,
    shrink_threshold: usize,
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        let capacity = buf.capacity();
        // Shrink *outside* the pool lock: shrink_to may memcpy/realloc.
        let shrunk = capacity > self.shrink_threshold;
        if shrunk {
            buf.clear();
            buf.shrink_to(self.shrink_threshold);
        }
        let mut s = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        s.stats.in_use -= 1;
        s.stats.high_water_bytes = s.stats.high_water_bytes.max(capacity);
        if shrunk {
            s.stats.shrinks += 1;
        }
        s.stats.free += 1;
        s.free.push_back(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{write_frame_into, MAX_FRAME};
    use iabc_types::{Encode, WireSize};

    #[test]
    fn get_return_get_reuses_capacity_below_the_threshold() {
        let pool = BufferPool::new();
        let mut b = pool.get();
        b.extend_from_slice(&[7u8; 4096]);
        let cap = b.capacity();
        drop(b);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers must come back cleared");
        assert_eq!(b.capacity(), cap, "capacity under the threshold survives pooling");
        let stats = pool.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.shrinks, 0);
        assert_eq!(stats.in_use, 1);
        assert_eq!(stats.free, 0);
    }

    /// An encode-only blob for driving `write_frame_into` past `MAX_FRAME`.
    struct Blob(usize);
    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }
    impl Encode for Blob {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.resize(buf.len() + self.0, 0xA5);
        }
    }

    #[test]
    fn oversize_frame_rollback_no_longer_pins_the_high_water_capacity() {
        // Regression (ISSUE 9 satellite): `write_frame_into` rolls an
        // oversized frame back by truncating, which restores the *length*
        // but leaves the scratch buffer's *capacity* inflated past
        // MAX_FRAME. When that scratch was a long-lived per-connection
        // buffer, one bad frame pinned ~16 MiB forever. Pooled scratch now
        // flows through the return path, which clamps it.
        let pool = BufferPool::new();
        let mut scratch = pool.get();
        write_frame_into(&Blob(64), &mut scratch).unwrap();
        assert!(write_frame_into(&Blob(MAX_FRAME + 1), &mut scratch).is_err());
        assert_eq!(scratch.len(), 4 + 64, "rollback must restore the batch prefix");
        let inflated = scratch.capacity();
        assert!(inflated > MAX_FRAME, "the rollback leaves capacity inflated");
        drop(scratch);

        let recycled = pool.get();
        assert!(
            recycled.capacity() <= DEFAULT_SHRINK_THRESHOLD,
            "returned scratch must be clamped to the shrink threshold, got {}",
            recycled.capacity()
        );
        let stats = pool.stats();
        assert_eq!(stats.shrinks, 1);
        assert!(
            stats.high_water_bytes >= inflated,
            "the spike must still be visible in the high-water stat"
        );
    }

    #[test]
    fn distinct_outstanding_buffers_and_counters() {
        let pool = BufferPool::new();
        let mut a = pool.get();
        let mut b = pool.get();
        a.push(1);
        b.push(2);
        assert_eq!(pool.stats().in_use, 2);
        drop(a);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.in_use, 0);
        assert_eq!(s.free, 2);
    }

    #[test]
    fn zero_threshold_pools_only_empty_buffers() {
        let pool = BufferPool::with_shrink_threshold(0);
        let mut b = pool.get();
        b.extend_from_slice(&[1, 2, 3]);
        drop(b);
        assert_eq!(pool.get().capacity(), 0);
    }
}
