//! The two-lane bounded outbound queue of one peer connection.
//!
//! Shared by both TCP transports: the event-driven [`crate::tcp`] loop
//! drains it nonblockingly ([`PeerQueue::try_take_batch`]), the
//! thread-per-connection control [`crate::tcp_threaded`] parks a flusher
//! thread on it ([`PeerQueue::next_batch`]). Pushes are cheap (append
//! under a mutex) but **bounded**: past the capacity the pusher blocks
//! until the drainer catches up — the transport's backpressure, reaching
//! the node thread exactly as the old one-write-per-frame path did via a
//! full TCP buffer. Draining always takes *everything* pending in one
//! batch, ordering lane first.
//!
//! # Lock discipline
//!
//! Each queue owns exactly one `Mutex` (its lane state) plus the two
//! condvars that pair with it; no code path ever holds two queue locks at
//! once (queues belong to distinct connections and never reference each
//! other), so there is no acquisition order to get wrong. The rule that
//! *does* carry weight: **no socket I/O while a queue guard is live.**
//! Drainers take the lock only to swap the batch out, drop the guard, and
//! encode/write from buffers they own. Condvar waits release the lock for
//! the duration of the wait and are the one sanctioned way to block with a
//! guard in scope — and they exist only on the *threaded* paths (`push`,
//! `next_batch`); the event loop's `try_take_batch` never waits, which
//! lint rule `E1` checks mechanically.
//!
//! Lock poisoning is recovered, not propagated: the queue state (two
//! deques and a flag) is valid after any partial mutation, and a panic in
//! one node thread must not cascade into the I/O threads of every peer
//! sharing the mesh.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use iabc_types::{TrafficClass, WireSize};

/// Maximum frames a [`PeerQueue`] holds across both lanes before `push`
/// blocks the sending node thread. The old one-write-per-frame path got
/// backpressure for free (the node thread blocked once the peer's TCP
/// receive buffer filled); the queue must re-establish it, or a slow peer
/// turns into unbounded sender-side memory growth under exactly the
/// payload-flood workloads this repo benches.
pub(crate) const MAX_OUTBOUND_FRAMES: usize = 16 * 1024;

/// Bulk-lane watermark while the peer connection is **down**: past this
/// many parked bulk frames the oldest is shed on every push. Ordering
/// frames (consensus rounds, acks, frontiers) are retained up to the full
/// queue capacity — they are what lets the pair converge after the link
/// heals — while payload floods degrade gracefully instead of either
/// blocking the node thread against a dead link or growing without bound.
/// Shed payloads are re-delivered by the protocol layer (catch-up plus
/// the sender's pending-set re-flood), not the transport.
pub(crate) const DOWN_BULK_WATERMARK: usize = 1024;

/// The two-lane outbound queue of one peer connection (see module docs).
pub(crate) struct PeerQueue<M> {
    state: Mutex<PeerQueueState<M>>,
    /// Signalled when work arrives or the queue closes (threaded flushers
    /// wait here; the event loop uses its wake channel instead).
    ready: Condvar,
    /// Signalled when a drain frees space or the queue closes (pushers
    /// blocked on a full queue wait here).
    space: Condvar,
    capacity: usize,
}

struct PeerQueueState<M> {
    ordering: VecDeque<M>,
    bulk: VecDeque<M>,
    /// Set on shutdown or on a dead peer: pushes are dropped (a crashed
    /// process loses messages — the quasi-reliable channel model).
    closed: bool,
    /// Set while the peer connection is down but expected back (reconnect
    /// in progress): pushes never block — ordering frames are retained up
    /// to capacity, bulk frames shed their oldest past
    /// [`DOWN_BULK_WATERMARK`]. The connected path (`down == false`) is
    /// untouched by this flag.
    down: bool,
    /// Frames shed (bulk watermark or ordering overflow) while down.
    shed: u64,
}

impl<M> PeerQueueState<M> {
    fn len(&self) -> usize {
        self.ordering.len() + self.bulk.len()
    }
}

/// What [`PeerQueue::try_take_batch`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchStatus {
    /// Frames were appended to the caller's batch.
    Took,
    /// Nothing pending right now; the queue is still open.
    Empty,
    /// The queue is closed and fully drained — no more batches ever.
    Closed,
}

impl<M: WireSize> PeerQueue<M> {
    pub(crate) fn new() -> Self {
        PeerQueue::with_capacity(MAX_OUTBOUND_FRAMES)
    }

    pub(crate) fn with_capacity(capacity: usize) -> Self {
        PeerQueue {
            state: Mutex::new(PeerQueueState {
                ordering: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
                down: false,
                shed: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues one message into its class lane, blocking while the queue
    /// is at capacity (backpressure from a slow peer reaches the node
    /// thread, as the old blocking write did). Dropped if closed.
    ///
    /// While the link is **down** ([`PeerQueue::set_link_down`]) the push
    /// never blocks: there is no drainer to apply backpressure for, so
    /// ordering frames park up to capacity (newest dropped past it) and
    /// bulk frames shed their oldest past [`DOWN_BULK_WATERMARK`].
    pub(crate) fn enqueue(&self, msg: M) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !s.closed && !s.down && s.len() >= self.capacity {
            s = self.space.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.closed {
            return;
        }
        if s.down {
            match msg.traffic_class() {
                TrafficClass::Ordering => {
                    if s.len() < self.capacity {
                        s.ordering.push_back(msg);
                    } else {
                        s.shed += 1;
                    }
                }
                TrafficClass::Bulk => {
                    s.bulk.push_back(msg);
                    while s.bulk.len() > DOWN_BULK_WATERMARK {
                        s.bulk.pop_front();
                        s.shed += 1;
                    }
                }
            }
            return;
        }
        match msg.traffic_class() {
            TrafficClass::Ordering => s.ordering.push_back(msg),
            TrafficClass::Bulk => s.bulk.push_back(msg),
        }
        drop(s);
        self.ready.notify_one();
    }

    /// Marks the queue closed and wakes everyone (drainers and any pushers
    /// blocked on a full queue).
    pub(crate) fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Flips down-mode (see [`PeerQueue::enqueue`]). Entering down-mode
    /// releases any pusher blocked on a full queue — there is no drainer
    /// left to make space, so blocking it would wedge the node thread for
    /// as long as the peer stays gone. Leaving down-mode resumes normal
    /// backpressure; parked frames drain with the next batch.
    pub(crate) fn set_link_down(&self, down: bool) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).down = down;
        if down {
            self.space.notify_all();
        } else {
            self.ready.notify_all();
        }
    }

    /// Frames shed so far while down (monotone; never reset).
    pub(crate) fn shed_count(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).shed
    }

    /// Blocks until messages are pending (or the queue closed empty), then
    /// takes the whole backlog: every ordering frame first, then every
    /// bulk frame. Returns `None` when closed and fully drained.
    ///
    /// Threaded-transport only — the event loop must use the nonblocking
    /// [`PeerQueue::try_take_batch`].
    pub(crate) fn next_batch(&self) -> Option<Vec<M>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !s.ordering.is_empty() || !s.bulk.is_empty() {
                let mut batch: Vec<M> = Vec::with_capacity(s.len());
                batch.extend(s.ordering.drain(..));
                batch.extend(s.bulk.drain(..));
                drop(s);
                self.space.notify_all();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Nonblocking drain for the event loop: appends the whole backlog to
    /// `into` — every ordering frame first, then every bulk frame — and
    /// returns immediately. Never waits; `into`'s allocation is the
    /// caller's to reuse across batches.
    pub(crate) fn try_take_batch(&self, into: &mut Vec<M>) -> BatchStatus {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.ordering.is_empty() && s.bulk.is_empty() {
            return if s.closed { BatchStatus::Closed } else { BatchStatus::Empty };
        }
        into.reserve(s.len());
        into.extend(s.ordering.drain(..));
        into.extend(s.bulk.drain(..));
        drop(s);
        self.space.notify_all();
        BatchStatus::Took
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;
    use iabc_types::{CodecError, Decode, Encode};

    /// A classed test frame: odd values are ordering, even values bulk.
    #[derive(Clone, Debug, PartialEq)]
    pub(crate) struct Classed(pub u32);
    impl WireSize for Classed {
        fn wire_size(&self) -> usize {
            4
        }
        fn traffic_class(&self) -> TrafficClass {
            if self.0 % 2 == 1 { TrafficClass::Ordering } else { TrafficClass::Bulk }
        }
    }
    impl Encode for Classed {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Classed {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Classed(u32::decode(buf)?))
        }
    }

    #[test]
    fn queue_drains_ordering_ahead_of_bulk() {
        let q: PeerQueue<Classed> = PeerQueue::new();
        for v in [2, 4, 1, 6, 3] {
            q.enqueue(Classed(v));
        }
        let batch = q.next_batch().expect("queue not closed");
        let vals: Vec<u32> = batch.iter().map(|c| c.0).collect();
        // Ordering lane first (FIFO within the lane), then bulk FIFO.
        assert_eq!(vals, vec![1, 3, 2, 4, 6]);
        // Queue now empty: close makes next_batch return None.
        q.close();
        assert!(q.next_batch().is_none());
        // Pushes after close are dropped (crashed-peer semantics).
        q.enqueue(Classed(9));
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn try_take_batch_never_blocks_and_mirrors_the_lane_order() {
        let q: PeerQueue<Classed> = PeerQueue::new();
        let mut batch = Vec::new();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Empty);
        for v in [2, 4, 1, 6, 3] {
            q.enqueue(Classed(v));
        }
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        assert_eq!(batch.iter().map(|c| c.0).collect::<Vec<_>>(), vec![1, 3, 2, 4, 6]);
        batch.clear();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Empty);
        q.close();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Closed);
        assert!(batch.is_empty());
    }

    #[test]
    fn closed_queue_with_backlog_still_hands_the_backlog_out() {
        // close() drops *future* pushes; frames already accepted are the
        // drainer's to flush (shutdown drains the backlog best-effort).
        let q: PeerQueue<Classed> = PeerQueue::new();
        q.enqueue(Classed(1));
        q.close();
        let mut batch = Vec::new();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        assert_eq!(batch.len(), 1);
        batch.clear();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Closed);
    }

    #[test]
    fn down_mode_parks_ordering_and_sheds_oldest_bulk_past_the_watermark() {
        let q: PeerQueue<Classed> = PeerQueue::new();
        q.set_link_down(true);
        // Ordering frames (odd) park; bulk frames (even) shed their oldest
        // once the watermark is exceeded.
        for v in 0..(2 * DOWN_BULK_WATERMARK as u32 + 11) {
            q.enqueue(Classed(v));
        }
        let mut batch = Vec::new();
        q.set_link_down(false);
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        let ordering: Vec<u32> = batch.iter().map(|c| c.0).filter(|v| v % 2 == 1).collect();
        let bulk: Vec<u32> = batch.iter().map(|c| c.0).filter(|v| v % 2 == 0).collect();
        // Every ordering frame survived, FIFO.
        assert_eq!(ordering.len(), DOWN_BULK_WATERMARK + 5);
        assert!(ordering.windows(2).all(|w| w[0] < w[1]));
        // Bulk kept exactly the watermark, and it is the *newest* suffix.
        assert_eq!(bulk.len(), DOWN_BULK_WATERMARK);
        assert_eq!(bulk[0], 2 * ((DOWN_BULK_WATERMARK as u32 + 6) - DOWN_BULK_WATERMARK as u32));
        assert!(bulk.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(q.shed_count(), 6, "six oldest bulk frames shed");
    }

    #[test]
    fn down_mode_never_blocks_and_releases_a_blocked_pusher() {
        let q: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::with_capacity(4));
        for v in 0..4 {
            q.enqueue(Classed(v));
        }
        // A pusher is parked on the full queue when the link dies: flipping
        // down-mode must release it (no drainer will ever free space).
        let pq = Arc::clone(&q);
        let pusher = std::thread::spawn(move || pq.enqueue(Classed(101)));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push past capacity must block while up");
        q.set_link_down(true);
        pusher.join().unwrap();
        // Ordering pushes past capacity are dropped (counted), not parked.
        q.enqueue(Classed(103));
        assert!(q.shed_count() >= 1);
        q.set_link_down(false);
        // Reconnected: parked frames drain normally.
        let mut batch = Vec::new();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        assert!(batch.len() >= 4);
    }

    #[test]
    fn up_path_is_untouched_by_the_down_flag_machinery() {
        // The connected path must behave exactly as before down-mode
        // existed: FIFO lanes, ordering first, blocking backpressure
        // (covered below) — this guards the `down == false` branch.
        let q: PeerQueue<Classed> = PeerQueue::new();
        for v in [2, 4, 1, 6, 3] {
            q.enqueue(Classed(v));
        }
        let mut batch = Vec::new();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        assert_eq!(batch.iter().map(|c| c.0).collect::<Vec<_>>(), vec![1, 3, 2, 4, 6]);
        assert_eq!(q.shed_count(), 0);
    }

    #[test]
    fn full_queue_blocks_the_pusher_until_a_drain_frees_space() {
        let q: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::with_capacity(4));
        for v in 0..4 {
            q.enqueue(Classed(v));
        }
        // The fifth push must block (backpressure), not grow the queue.
        let pq = Arc::clone(&q);
        let pusher = std::thread::spawn(move || pq.enqueue(Classed(99)));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push past capacity must block");
        // Draining frees space and unblocks it — via the nonblocking
        // event-loop drain this time.
        let mut batch = Vec::new();
        assert_eq!(q.try_take_batch(&mut batch), BatchStatus::Took);
        assert_eq!(batch.len(), 4);
        pusher.join().unwrap();
        let batch = q.next_batch().expect("open queue");
        assert_eq!(batch.iter().map(|c| c.0).collect::<Vec<_>>(), vec![99]);
        // close() releases blocked pushers too (message dropped).
        for v in 0..4 {
            q.enqueue(Classed(v));
        }
        let pq = Arc::clone(&q);
        let pusher = std::thread::spawn(move || pq.enqueue(Classed(100)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        pusher.join().unwrap();
    }
}
