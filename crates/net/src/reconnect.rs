//! Per-peer reconnect state machine of the TCP event loop.
//!
//! When an outbound connection dies, the peer's [`crate::queue::PeerQueue`]
//! flips into down-mode and this machine schedules reconnect attempts:
//! the first one immediately, every later one after an exponentially
//! growing, jittered delay capped at [`RECONNECT_CAP`]. At most one
//! attempt is ever in flight per peer — [`Reconnector::due_attempt`]
//! hands an attempt out exactly once and nothing else is due until the
//! loop reports the outcome.
//!
//! The module is **clock-free**: every method takes `now` (time since the
//! loop started) as an explicit [`Duration`], so the whole schedule is a
//! pure function of its inputs and the proptests in this file can sweep
//! it without sleeping. Jitter is deterministic, keyed on
//! `(seed, peer, attempt)` through the same splitmix64 finalizer the
//! simulator's fault plan uses — two loops with the same seed retry on
//! the same schedule.

use iabc_types::{Duration, ProcessId};

/// Delay before the second attempt (the first is immediate); doubles per
/// failure up to [`RECONNECT_CAP`].
pub(crate) const RECONNECT_BASE: Duration = Duration::from_millis(25);

/// Ceiling on the backoff delay: a peer that stays down is probed about
/// once a second, forever, so a healed partition is noticed promptly
/// without hammering a dead address in the meantime.
pub(crate) const RECONNECT_CAP: Duration = Duration::from_millis(1000);

/// splitmix64 finalizer: a well-mixed u64 from a composite key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The raw (un-jittered) backoff before attempt `attempt` (0-based):
/// `0` for the immediate first try, then `base·2^(attempt-1)` capped.
pub(crate) fn raw_backoff(base: Duration, cap: Duration, attempt: u64) -> Duration {
    if attempt == 0 {
        return Duration::from_nanos(0);
    }
    let exp = attempt - 1;
    // Past 32 doublings the cap has long since won; guard the shift.
    if exp >= 32 {
        return cap;
    }
    let raw = Duration::from_nanos(base.as_nanos().saturating_mul(1u64 << exp));
    if raw.as_nanos() > cap.as_nanos() { cap } else { raw }
}

/// The jittered delay before attempt `attempt` against `peer`: uniform in
/// `[raw/2, raw]`, so concurrent loops desynchronize their probes while
/// the delay stays within the raw envelope (and therefore under the cap).
pub(crate) fn jittered_backoff(
    base: Duration,
    cap: Duration,
    seed: u64,
    peer: ProcessId,
    attempt: u64,
) -> Duration {
    let raw = raw_backoff(base, cap, attempt).as_nanos();
    if raw == 0 {
        return Duration::from_nanos(0);
    }
    let half = raw / 2;
    let key = mix(seed ^ mix(u64::from(peer.index()) ^ mix(attempt)));
    Duration::from_nanos(half + key % (raw - half + 1))
}

/// Where one peer link stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    /// Connected; nothing scheduled.
    Up,
    /// Down, next attempt due at the stored loop time.
    Waiting { next_attempt: Duration },
    /// Down, an attempt has been handed out and not yet resolved.
    Attempting,
}

#[derive(Debug)]
struct PeerLink {
    state: LinkState,
    /// Attempts made since the link last went down (keys the jitter and
    /// the exponential growth; resets when the link comes up).
    attempts: u64,
}

/// Reconnect scheduling for every outbound link of one event loop.
#[derive(Debug)]
pub(crate) struct Reconnector {
    base: Duration,
    cap: Duration,
    seed: u64,
    links: Vec<PeerLink>,
}

impl Reconnector {
    /// A reconnector over `n` peer slots (indexed by peer id), all up.
    pub(crate) fn new(n: usize, seed: u64) -> Reconnector {
        Reconnector::with_timing(n, seed, RECONNECT_BASE, RECONNECT_CAP)
    }

    /// [`Reconnector::new`] with explicit backoff timing (tests).
    pub(crate) fn with_timing(n: usize, seed: u64, base: Duration, cap: Duration) -> Reconnector {
        let links = (0..n)
            .map(|_| PeerLink { state: LinkState::Up, attempts: 0 })
            .collect();
        Reconnector { base, cap, seed, links }
    }

    fn link(&mut self, peer: ProcessId) -> Option<&mut PeerLink> {
        self.links.get_mut(peer.as_usize())
    }

    /// The link died (write error, EOF, or a fault-plan severance): start
    /// the schedule with an immediate first attempt. No-op if the link is
    /// already down — a reader EOF and a writer error for the same peer
    /// must not double-schedule.
    pub(crate) fn mark_down(&mut self, peer: ProcessId, now: Duration) {
        let Some(l) = self.link(peer) else { return };
        if l.state != LinkState::Up {
            return;
        }
        l.attempts = 0;
        l.state = LinkState::Waiting { next_attempt: now };
    }

    /// A connection is live again: clear the schedule and reset backoff.
    pub(crate) fn mark_up(&mut self, peer: ProcessId) {
        if let Some(l) = self.link(peer) {
            l.state = LinkState::Up;
            l.attempts = 0;
        }
    }

    /// True exactly once per scheduled attempt: if the peer is down and
    /// its delay has elapsed, the attempt is handed to the caller and the
    /// link moves to `Attempting` until [`Reconnector::attempt_failed`]
    /// or [`Reconnector::mark_up`] resolves it — at most one attempt is
    /// in flight per peer.
    pub(crate) fn due_attempt(&mut self, peer: ProcessId, now: Duration) -> bool {
        let Some(l) = self.link(peer) else { return false };
        match l.state {
            LinkState::Waiting { next_attempt } if now.as_nanos() >= next_attempt.as_nanos() => {
                l.state = LinkState::Attempting;
                l.attempts += 1;
                true
            }
            _ => false,
        }
    }

    /// The handed-out attempt failed: schedule the next one after the
    /// next (jittered, capped) backoff step.
    pub(crate) fn attempt_failed(&mut self, peer: ProcessId, now: Duration) {
        let (base, cap, seed) = (self.base, self.cap, self.seed);
        let Some(l) = self.link(peer) else { return };
        if l.state != LinkState::Attempting {
            return;
        }
        let delay = jittered_backoff(base, cap, seed, peer, l.attempts);
        l.state = LinkState::Waiting { next_attempt: now + delay };
    }

    /// True while the link is down (waiting or attempting).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_down(&self, peer: ProcessId) -> bool {
        self.links
            .get(peer.as_usize())
            .is_some_and(|l| l.state != LinkState::Up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn first_attempt_is_immediate_then_backoff_doubles_to_the_cap() {
        let base = ms(25);
        let cap = ms(1000);
        assert_eq!(raw_backoff(base, cap, 0), ms(0));
        assert_eq!(raw_backoff(base, cap, 1), ms(25));
        assert_eq!(raw_backoff(base, cap, 2), ms(50));
        assert_eq!(raw_backoff(base, cap, 3), ms(100));
        assert_eq!(raw_backoff(base, cap, 7), ms(1000), "capped");
        assert_eq!(raw_backoff(base, cap, 60), ms(1000), "huge attempts stay capped");
    }

    #[test]
    fn down_link_hands_out_exactly_one_attempt_until_resolved() {
        let mut r = Reconnector::new(3, 7);
        assert!(!r.due_attempt(p(1), ms(0)), "an up link never schedules");
        r.mark_down(p(1), ms(10));
        assert!(r.is_down(p(1)));
        assert!(r.due_attempt(p(1), ms(10)), "first attempt is immediate");
        // In flight: nothing more is due no matter how much time passes.
        assert!(!r.due_attempt(p(1), ms(10_000)));
        r.attempt_failed(p(1), ms(10));
        // The retry is due only after the (jittered) base delay.
        assert!(!r.due_attempt(p(1), ms(10)));
        assert!(r.due_attempt(p(1), ms(10) + RECONNECT_BASE));
        r.mark_up(p(1));
        assert!(!r.is_down(p(1)));
        assert!(!r.due_attempt(p(1), ms(20_000)));
    }

    #[test]
    fn a_second_outage_restarts_from_the_base_delay() {
        let mut r = Reconnector::new(2, 3);
        r.mark_down(p(0), ms(0));
        for t in [0u64, 2000, 4000, 6000] {
            assert!(r.due_attempt(p(0), ms(t)));
            r.attempt_failed(p(0), ms(t));
        }
        r.mark_up(p(0));
        // Fresh outage: immediate first attempt again, not a capped wait.
        r.mark_down(p(0), ms(50_000));
        assert!(r.due_attempt(p(0), ms(50_000)));
    }

    #[test]
    fn mark_down_while_already_down_does_not_reset_the_schedule() {
        let mut r = Reconnector::new(2, 3);
        r.mark_down(p(0), ms(0));
        assert!(r.due_attempt(p(0), ms(0)));
        r.attempt_failed(p(0), ms(0));
        // A reader EOF arriving after the writer already died: no-op —
        // in particular it must not make another attempt due immediately.
        r.mark_down(p(0), ms(1));
        assert!(!r.due_attempt(p(0), ms(1)));
    }

    proptest! {
        /// Jittered delays stay inside `[raw/2, raw]` and never exceed
        /// the cap, for every attempt number.
        #[test]
        fn jittered_delay_respects_bounds_and_cap(
            seed in any::<u64>(),
            peer in 0u16..64,
            attempt in 0u64..80,
            base_ms in 1u64..200,
            cap_ms in 200u64..5000,
        ) {
            let base = ms(base_ms);
            let cap = ms(cap_ms);
            let raw = raw_backoff(base, cap, attempt);
            let j = jittered_backoff(base, cap, seed, ProcessId::new(peer), attempt);
            prop_assert!(j.as_nanos() <= raw.as_nanos(), "jitter above the raw envelope");
            prop_assert!(j.as_nanos() >= raw.as_nanos() / 2, "jitter below half the envelope");
            prop_assert!(j.as_nanos() <= cap.as_nanos(), "jitter above the cap");
            // Determinism: the same key yields the same delay.
            prop_assert_eq!(j, jittered_backoff(base, cap, seed, ProcessId::new(peer), attempt));
        }

        /// The raw backoff sequence is monotone nondecreasing and reaches
        /// the cap, after which it stays there.
        #[test]
        fn raw_backoff_is_monotone_and_saturates(
            base_ms in 1u64..200,
            cap_ms in 200u64..5000,
        ) {
            let base = ms(base_ms);
            let cap = ms(cap_ms);
            let mut prev = Duration::from_nanos(0);
            let mut capped = false;
            for attempt in 0..64u64 {
                let d = raw_backoff(base, cap, attempt);
                prop_assert!(d.as_nanos() >= prev.as_nanos(), "backoff shrank at {attempt}");
                prop_assert!(d.as_nanos() <= cap.as_nanos());
                if d == cap {
                    capped = true;
                }
                prev = d;
            }
            prop_assert!(capped, "64 doublings never reached the cap");
        }

        /// Whatever interleaving of downs, failures, and clock advances a
        /// schedule sees, at most one attempt is ever in flight: two
        /// `due_attempt` calls can never both return true without an
        /// intervening `attempt_failed`/`mark_up`.
        #[test]
        fn at_most_one_attempt_in_flight_per_peer(
            seed in any::<u64>(),
            script in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let mut r = Reconnector::new(1, seed);
            let mut now = Duration::from_nanos(0);
            let mut in_flight = false;
            r.mark_down(p(0), now);
            for step in script {
                match step {
                    0 => now += RECONNECT_BASE,
                    1 => now += RECONNECT_CAP,
                    2 => {
                        if r.due_attempt(p(0), now) {
                            prop_assert!(!in_flight, "second attempt handed out while one was in flight");
                            in_flight = true;
                        }
                    }
                    _ => {
                        r.attempt_failed(p(0), now);
                        in_flight = false;
                    }
                }
            }
        }
    }
}
