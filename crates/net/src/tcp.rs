//! TCP cluster: nodes connected by loop-back TCP sockets.
//!
//! Every node runs the same loop as the thread cluster, but links are real
//! sockets and messages travel through the wire codec — the closest
//! in-process analogue of the paper's cluster deployment. Reader threads
//! decode frames and forward them into the node's input channel.
//!
//! # The outbound path: queues + a coalescing flusher
//!
//! A node thread never writes to a socket. Each peer connection has an
//! outbound [`PeerQueue`] with one lane per [`TrafficClass`]; `Send`
//! actions enqueue the message and a dedicated flusher thread drains the
//! queue — **ordering frames ahead of bulk** — encodes the whole batch
//! into one reused scratch buffer ([`write_frame_into`]) and pushes it
//! with a single `write_all`. Under load this coalesces many frames per
//! syscall and keeps consensus traffic from queueing behind payload
//! floods inside the transport, mirroring the simulator's priority lane.
//!
//! # Lock discipline
//!
//! Each [`PeerQueue`] owns exactly one `Mutex` (its lane state) plus the
//! condvar that pairs with it; no code path in this module ever holds two
//! queue locks at once (queues belong to distinct connections and never
//! reference each other), so there is no acquisition order to get wrong.
//! The rule that *does* carry weight: **no socket I/O while a queue guard
//! is live.** The flusher takes the lock only to swap the batch out
//! (`next_batch`), drops the guard, and then encodes and `write_all`s from
//! thread-local buffers — a stalled peer therefore blocks only its own
//! flusher thread, never a node thread trying to `push`. Condvar waits
//! release the queue lock for the duration of the wait and are the one
//! sanctioned way to block with a guard in scope. `iabc-lint` enforces
//! this mechanically (rules `O1` and `B1`).

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use iabc_runtime::Node;
use iabc_types::{Decode, Encode, ProcessId, TrafficClass, WireSize};

use crate::cluster::ThreadCluster;
use crate::codec::{write_frame_into, FrameBuffer};
use crate::NetOutput;

/// A mesh of loop-back TCP connections between `n` local "processes".
///
/// Internally each process still runs on a thread (this is a test/demo
/// vehicle, not a deployment platform), but every message crosses a real
/// socket through the wire codec, so the full
/// encode → TCP → decode path is exercised.
pub struct TcpCluster<N: Node>
where
    N::Msg: Encode,
{
    inner: ThreadCluster<MsgOverTcp<N>>,
    outbound: OutboundMesh<N::Msg>,
    flusher_handles: Vec<JoinHandle<()>>,
    reader_handles: Vec<JoinHandle<()>>,
    /// One `try_clone` of every accepted stream, kept so [`shutdown`]
    /// (`TcpCluster::shutdown`) can shut the sockets down and unblock
    /// readers parked in `read()` on a peer that died without closing
    /// its end.
    reader_streams: Vec<TcpStream>,
}

/// `outbound[i][j]`: the queue feeding the `i → j` connection's flusher
/// (`None` on the diagonal).
type OutboundMesh<M> = Vec<Vec<Option<Arc<PeerQueue<M>>>>>;

/// Maximum frames a [`PeerQueue`] holds across both lanes before `push`
/// blocks the sending node thread. The old one-write-per-frame path got
/// backpressure for free (the node thread blocked once the peer's TCP
/// receive buffer filled); the queue must re-establish it, or a slow peer
/// turns into unbounded sender-side memory growth under exactly the
/// payload-flood workloads this repo benches.
const MAX_OUTBOUND_FRAMES: usize = 16 * 1024;

/// The two-lane outbound queue of one peer connection.
///
/// Pushes are cheap (append under a mutex) but **bounded**: past the
/// capacity the pusher blocks until the flusher drains — the transport's
/// backpressure. The flusher thread blocks on `ready` and takes
/// *everything* pending in one batch, ordering lane first.
///
/// Lock poisoning is recovered, not propagated: the queue state (two
/// deques and a flag) is valid after any partial mutation, and a panic in
/// one node thread must not cascade into the flusher/reader threads of
/// every peer sharing the mesh.
struct PeerQueue<M> {
    state: Mutex<PeerQueueState<M>>,
    /// Signalled when work arrives or the queue closes (flusher waits).
    ready: Condvar,
    /// Signalled when the flusher drains or the queue closes (pushers
    /// blocked on a full queue wait).
    space: Condvar,
    capacity: usize,
}

struct PeerQueueState<M> {
    ordering: VecDeque<M>,
    bulk: VecDeque<M>,
    /// Set on shutdown or on a dead peer: pushes are dropped (a crashed
    /// process loses messages — the quasi-reliable channel model).
    closed: bool,
}

impl<M> PeerQueueState<M> {
    fn len(&self) -> usize {
        self.ordering.len() + self.bulk.len()
    }
}

impl<M: WireSize> PeerQueue<M> {
    fn new() -> Self {
        PeerQueue::with_capacity(MAX_OUTBOUND_FRAMES)
    }

    fn with_capacity(capacity: usize) -> Self {
        PeerQueue {
            state: Mutex::new(PeerQueueState {
                ordering: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues one message into its class lane, blocking while the queue
    /// is at capacity (backpressure from a slow peer reaches the node
    /// thread, as the old blocking write did). Dropped if closed.
    fn push(&self, msg: M) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !s.closed && s.len() >= self.capacity {
            s = self.space.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.closed {
            return;
        }
        match msg.traffic_class() {
            TrafficClass::Ordering => s.ordering.push_back(msg),
            TrafficClass::Bulk => s.bulk.push_back(msg),
        }
        drop(s);
        self.ready.notify_one();
    }

    /// Marks the queue closed and wakes everyone (flusher and any pushers
    /// blocked on a full queue).
    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Blocks until messages are pending (or the queue closed empty), then
    /// takes the whole backlog: every ordering frame first, then every
    /// bulk frame. Returns `None` when closed and fully drained.
    fn next_batch(&self) -> Option<Vec<M>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !s.ordering.is_empty() || !s.bulk.is_empty() {
                let mut batch: Vec<M> = Vec::with_capacity(s.len());
                batch.extend(s.ordering.drain(..));
                batch.extend(s.bulk.drain(..));
                drop(s);
                self.space.notify_all();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The flusher loop of one peer connection: drain the queue in priority
/// order, encode the batch into a reused scratch buffer, push it with one
/// vectored write (see [`write_batch`]). A write failure means the peer is
/// gone: close the queue (future pushes drop silently, like sends to a
/// crashed process) and exit.
fn flusher_loop<M: Encode>(queue: &PeerQueue<M>, mut stream: TcpStream, from: ProcessId) {
    let mut scratch: Vec<u8> = Vec::new();
    let mut bounds: Vec<usize> = Vec::new();
    while let Some(batch) = queue.next_batch() {
        scratch.clear();
        bounds.clear();
        for msg in &batch {
            // An oversized frame is unencodable, not a transport error:
            // skip it (write_frame_into already rolled the buffer back).
            if write_frame_into(&Tagged { from, msg }, &mut scratch).is_ok() {
                bounds.push(scratch.len());
            }
        }
        if write_batch(&mut stream, &scratch, &bounds).is_err() {
            queue.close();
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Pushes one encoded batch to the socket: a single `write_vectored` over
/// the per-frame slices (`bounds[i]` is the end offset of frame `i` in
/// `scratch`), so the kernel gathers the frames in one syscall without a
/// second userspace copy. Sockets are free to accept only part of an
/// iovec, so a partial write falls back to `write_all` of the remaining
/// bytes — the frames are contiguous in the scratch buffer, which makes
/// the remainder a plain byte suffix regardless of which frame the short
/// write landed in.
fn write_batch(
    stream: &mut TcpStream,
    scratch: &[u8],
    bounds: &[usize],
) -> std::io::Result<()> {
    if scratch.is_empty() {
        return Ok(());
    }
    let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(bounds.len());
    let mut start = 0;
    for &end in bounds {
        slices.push(std::io::IoSlice::new(&scratch[start..end]));
        start = end;
    }
    let written = loop {
        match stream.write_vectored(&slices) {
            Ok(n) => break n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    if written < scratch.len() {
        stream.write_all(&scratch[written..])?;
    }
    Ok(())
}

/// Adapter node: forwards remote sends to the per-peer outbound queues.
///
/// The adapter intercepts `Send` actions for remote peers and enqueues
/// them for the peer's flusher; self-sends and everything else pass
/// through.
struct MsgOverTcp<N: Node> {
    node: N,
    me: ProcessId,
    writers: Vec<Option<Arc<PeerQueue<N::Msg>>>>,
}

impl<N: Node> std::fmt::Debug for MsgOverTcp<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgOverTcp").field("me", &self.me).finish()
    }
}

impl<N> Node for MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    type Msg = N::Msg;
    type Command = N::Command;
    type Output = N::Output;

    fn on_start(&mut self, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_start(ctx);
        self.redirect(ctx);
    }

    fn on_command(&mut self, cmd: Self::Command, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_command(cmd, ctx);
        self.redirect(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>,
    ) {
        self.node.on_message(from, msg, ctx);
        self.redirect(ctx);
    }

    fn on_timer(&mut self, timer: iabc_runtime::TimerId, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_timer(timer, ctx);
        self.redirect(ctx);
    }
}

impl<N> MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    /// Rewrites remote sends into outbound-queue pushes, keeping
    /// everything else.
    fn redirect(&mut self, ctx: &mut iabc_runtime::Context<N::Msg, N::Output>) {
        use iabc_runtime::Action;
        let actions = ctx.take_actions();
        for action in actions {
            match action {
                Action::Send { to, msg } if to != self.me => {
                    if let Some(queue) = &self.writers[to.as_usize()] {
                        // A dead peer's queue is closed: drops silently.
                        queue.push(msg);
                    }
                }
                other => {
                    // Self-sends, timers, work, outputs: hand back to the
                    // channel machinery.
                    match other {
                        Action::Send { to, msg } => ctx.send(to, msg),
                        Action::SetTimer { delay, timer } => ctx.set_timer(delay, timer),
                        Action::Work { duration } => ctx.work(duration),
                        Action::Output(o) => ctx.output(o),
                    }
                }
            }
        }
    }
}

/// `(sender, message)` as one frame.
struct Tagged<'a, M> {
    from: ProcessId,
    msg: &'a M,
}

impl<M: Encode> iabc_types::WireSize for Tagged<'_, M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Encode> Encode for Tagged<'_, M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.msg.encode(buf);
    }
}

/// Owned decode-side counterpart of [`Tagged`].
struct TaggedOwned<M> {
    from: ProcessId,
    msg: M,
}

impl<M: Decode + iabc_types::WireSize> iabc_types::WireSize for TaggedOwned<M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Decode + iabc_types::WireSize> Decode for TaggedOwned<M> {
    fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
        Ok(TaggedOwned { from: ProcessId::decode(buf)?, msg: M::decode(buf)? })
    }
}

impl<N> TcpCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: Encode + Decode + Send,
    N::Command: Send,
    N::Output: Send,
{
    /// Binds `n` loop-back listeners, connects the full mesh, and starts
    /// the node threads.
    ///
    /// # Panics
    ///
    /// Panics if sockets cannot be bound or connected (loop-back only, so
    /// this indicates local resource exhaustion).
    pub fn start(n: usize, mut factory: impl FnMut(ProcessId) -> N) -> Self {
        assert!(n > 0, "need at least one process");
        // Process ids travel as u16 in the handshake and frame tags; every
        // `i as u16` below is bounded by this assert.
        assert!(n <= usize::from(u16::MAX) + 1, "process ids are u16 on the wire");
        // Bind one listener per process on an ephemeral port.
        // Setup-time expects below are documented under `# Panics`: they run
        // before any remote bytes exist, on loop-back sockets only, where a
        // failure means local resource exhaustion and there is no
        // connection to poison yet.
        let listeners: Vec<TcpListener> = (0..n)
            // lint:allow(P1): bootstrap bind, documented panic, no remote input yet
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loop-back listener"))
            .collect();
        let addrs: Vec<_> =
            // lint:allow(P1): bootstrap, documented panic, no remote input yet
            listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();

        // Writer side: from i to j (i != j), an outbound queue drained by a
        // flusher thread that owns the connected stream.
        let mut outbound: OutboundMesh<N::Msg> = (0..n).map(|_| vec![]).collect();
        let mut flusher_handles = Vec::new();
        for (i, row) in outbound.iter_mut().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i == j {
                    row.push(None);
                } else {
                    // lint:allow(P1): bootstrap connect, documented panic, no remote input yet
                    let mut stream = TcpStream::connect(addr).expect("connect to peer");
                    // lint:allow(P1): bootstrap, documented panic, no remote input yet
                    stream.set_nodelay(true).expect("nodelay");
                    // Identify ourselves so the acceptor can route.
                    // lint:allow(P1): bootstrap handshake, documented panic, no remote input yet — lint:allow(W2): i < n and start() asserts n fits in u16
                    stream.write_all(&(i as u16).to_le_bytes()).expect("handshake");
                    let queue = Arc::new(PeerQueue::new());
                    // lint:allow(W2): i < n and start() asserts n fits in u16
                    let from = ProcessId::new(i as u16);
                    let flusher_queue = Arc::clone(&queue);
                    flusher_handles.push(std::thread::spawn(move || {
                        flusher_loop(&flusher_queue, stream, from);
                    }));
                    row.push(Some(queue));
                }
            }
        }

        let writers_for_nodes = outbound.clone();
        let inner = ThreadCluster::start(n, move |p| MsgOverTcp {
            node: factory(p),
            me: p,
            writers: writers_for_nodes[p.as_usize()].clone(),
        });

        // Reader threads: accept n-1 inbound connections per listener and
        // pump decoded frames into the owning node via its command channel —
        // we reuse the ThreadCluster's message path by injecting through a
        // dedicated channel pair.
        let injectors: Vec<Sender<(ProcessId, N::Msg)>> = (0..n)
            .map(|j| {
                let (tx, rx) = unbounded::<(ProcessId, N::Msg)>();
                // lint:allow(W2): j < n and start() asserts n fits in u16
                let inner_tx = inner.message_injector(ProcessId::new(j as u16));
                std::thread::spawn(move || {
                    while let Ok((from, msg)) = rx.recv() {
                        if inner_tx(from, msg).is_err() {
                            return;
                        }
                    }
                });
                tx
            })
            .collect();

        let mut reader_handles = Vec::new();
        let mut reader_streams = Vec::new();
        for (j, listener) in listeners.into_iter().enumerate() {
            for _ in 0..(n - 1) {
                // lint:allow(P1): bootstrap accept, documented panic, no remote input yet
                let (stream, _) = listener.accept().expect("accept peer connection");
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                stream.set_nodelay(true).expect("nodelay");
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                reader_streams.push(stream.try_clone().expect("clone reader stream"));
                let inject = injectors[j].clone();
                reader_handles.push(std::thread::spawn(move || {
                    reader_loop::<N>(stream, inject);
                }));
            }
        }

        TcpCluster { inner, outbound, flusher_handles, reader_handles, reader_streams }
    }

    /// Sends an application command to process `p`.
    pub fn send_command(&self, p: ProcessId, cmd: N::Command) {
        self.inner.send_command(p, cmd);
    }

    /// Collects outputs for (wall-clock) `dur`.
    pub fn run_for(&mut self, dur: std::time::Duration) -> Vec<NetOutput<N::Output>> {
        self.inner.run_for(dur)
    }

    /// Stops node threads and closes sockets.
    pub fn shutdown(self) {
        // Closing the queues lets each flusher drain its backlog and shut
        // its stream down, which in turn unblocks the remote readers.
        for row in &self.outbound {
            for q in row.iter().flatten() {
                q.close();
            }
        }
        for h in self.flusher_handles {
            let _ = h.join();
        }
        self.inner.shutdown();
        // A reader whose peer died *without* closing its socket (a hung or
        // killed flusher never reaches its own shutdown call) stays parked
        // in `read()` forever; shutting the accepted sockets down here
        // forces those reads to return, so the joins below can never hang.
        for s in &self.reader_streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in self.reader_handles {
            let _ = h.join();
        }
    }
}

fn reader_loop<N>(mut stream: TcpStream, inject: Sender<(ProcessId, N::Msg)>)
where
    N: Node,
    N::Msg: Decode,
{
    // Handshake: the 2-byte sender id.
    let mut id = [0u8; 2];
    if std::io::Read::read_exact(&mut stream, &mut id).is_err() {
        return;
    }
    let _claimed_sender = ProcessId::new(u16::from_le_bytes(id));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match frames.next_frame::<TaggedOwned<N::Msg>>() {
                Ok(Some(t)) => {
                    if inject.send((t.from, t.msg)).is_err() {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt or oversized frame: the buffer is poisoned
                    // (framing is unrecoverable), so tear the connection
                    // down instead of spinning on the same bytes.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // peer closed
            Ok(read) => frames.extend(&chunk[..read]),
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_frame;
    use iabc_runtime::Context;
    use iabc_types::CodecError;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            4
        }
    }
    impl Encode for Num {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Num {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Num(u32::decode(buf)?))
        }
    }

    struct Echo;
    impl Node for Echo {
        type Msg = Num;
        type Command = u32;
        type Output = (ProcessId, u32);
        fn on_command(&mut self, cmd: u32, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.send_to_all(Num(cmd));
        }
        fn on_message(&mut self, from: ProcessId, m: Num, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.output((from, m.0));
        }
    }

    #[test]
    fn corrupt_stream_drops_connection_after_first_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (tx, rx) = unbounded::<(ProcessId, Num)>();
        let reader = std::thread::spawn(move || reader_loop::<Echo>(server, tx));

        // Handshake, then one good frame.
        client.write_all(&1u16.to_le_bytes()).unwrap();
        write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(42) }, &mut client).unwrap();
        // A malformed frame: the length prefix says 2 bytes, which can
        // never decode as a Tagged<Num>.
        client.write_all(&2u32.to_le_bytes()).unwrap();
        client.write_all(&[0xAB, 0xCD]).unwrap();
        // A good frame after the corruption must never be delivered (the
        // reader may already have torn the socket down — ignore errors).
        let _ = write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(7) }, &mut client);

        let first = rx.recv_timeout(std::time::Duration::from_secs(5));
        assert_eq!(first.unwrap(), (ProcessId::new(1), Num(42)));
        // The reader drops the connection and its injector on first error:
        // the channel disconnects instead of yielding Num(7).
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).is_err(),
            "no frame may be delivered after a decode error"
        );
        reader.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_a_reader_stuck_on_a_silent_peer() {
        // A peer that dies without closing its socket (hung flusher, killed
        // process) leaves the reader parked in read(); shutting the
        // accepted socket down — what TcpCluster::shutdown now does before
        // joining — must force that read to return.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let shutdown_handle = server.try_clone().unwrap();
        let (tx, rx) = unbounded::<(ProcessId, Num)>();
        let (done_tx, done_rx) = unbounded::<()>();
        std::thread::spawn(move || {
            reader_loop::<Echo>(server, tx);
            let _ = done_tx.send(());
        });
        // Handshake, then silence: the reader is now blocked in read().
        client.write_all(&1u16.to_le_bytes()).unwrap();
        assert!(
            done_rx.recv_timeout(std::time::Duration::from_millis(100)).is_err(),
            "reader must still be blocked on the silent peer"
        );
        shutdown_handle.shutdown(std::net::Shutdown::Both).unwrap();
        assert!(
            done_rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok(),
            "socket shutdown must unblock the reader"
        );
        drop(client);
        drop(rx);
    }

    #[test]
    fn fanout_over_tcp() {
        let mut cluster = TcpCluster::start(3, |_| Echo);
        cluster.send_command(ProcessId::new(1), 77);
        let outs = cluster.run_for(std::time::Duration::from_millis(400));
        assert_eq!(outs.len(), 3, "all three processes must receive the fanout");
        assert!(outs.iter().all(|o| o.output == (ProcessId::new(1), 77)));
        cluster.shutdown();
    }

    /// A classed test frame: odd values are ordering, even values bulk.
    #[derive(Clone, Debug, PartialEq)]
    struct Classed(u32);
    impl WireSize for Classed {
        fn wire_size(&self) -> usize {
            4
        }
        fn traffic_class(&self) -> TrafficClass {
            if self.0 % 2 == 1 { TrafficClass::Ordering } else { TrafficClass::Bulk }
        }
    }
    impl Encode for Classed {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Classed {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Classed(u32::decode(buf)?))
        }
    }

    #[test]
    fn outbound_queue_drains_ordering_ahead_of_bulk() {
        let q: PeerQueue<Classed> = PeerQueue::new();
        for v in [2, 4, 1, 6, 3] {
            q.push(Classed(v));
        }
        let batch = q.next_batch().expect("queue not closed");
        let vals: Vec<u32> = batch.iter().map(|c| c.0).collect();
        // Ordering lane first (FIFO within the lane), then bulk FIFO.
        assert_eq!(vals, vec![1, 3, 2, 4, 6]);
        // Queue now empty: close makes next_batch return None.
        q.close();
        assert!(q.next_batch().is_none());
        // Pushes after close are dropped (crashed-peer semantics).
        q.push(Classed(9));
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn full_queue_blocks_the_pusher_until_the_flusher_drains() {
        let q: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::with_capacity(4));
        for v in 0..4 {
            q.push(Classed(v));
        }
        // The fifth push must block (backpressure), not grow the queue.
        let pq = Arc::clone(&q);
        let pusher = std::thread::spawn(move || pq.push(Classed(99)));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push past capacity must block");
        // Draining frees space and unblocks it.
        let batch = q.next_batch().expect("open queue");
        assert_eq!(batch.len(), 4);
        pusher.join().unwrap();
        let batch = q.next_batch().expect("open queue");
        assert_eq!(batch.iter().map(|c| c.0).collect::<Vec<_>>(), vec![99]);
        // close() releases blocked pushers too (message dropped).
        for v in 0..4 {
            q.push(Classed(v));
        }
        let pq = Arc::clone(&q);
        let pusher = std::thread::spawn(move || pq.push(Classed(100)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        pusher.join().unwrap();
    }

    #[test]
    fn flusher_coalesces_a_batch_into_one_stream_write() {
        // Drive a real flusher thread over a socket pair and check that
        // every frame of a mixed burst arrives, ordering frames first.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        // Fill the queue *before* the flusher starts, so the whole burst
        // is one batch (and one write_all).
        for v in [2, 4, 1, 6, 3, 8, 5] {
            queue.push(Classed(v));
        }
        let fq = Arc::clone(&queue);
        let flusher =
            std::thread::spawn(move || flusher_loop(&fq, stream, ProcessId::new(0)));

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 4096];
        while got.len() < 7 {
            let read = std::io::Read::read(&mut server, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(0));
                got.push(t.msg.0);
            }
        }
        assert_eq!(got, vec![1, 3, 5, 2, 4, 6, 8], "ordering lane must drain first");
        queue.close();
        flusher.join().unwrap();
    }

    /// A bulk frame big enough that a batch of them overflows any socket
    /// send buffer, forcing `write_vectored` to return short and the
    /// flusher to take the scratch-suffix `write_all` fallback.
    #[derive(Clone, Debug, PartialEq)]
    struct Big(u32);
    const BIG_LEN: usize = 4096;
    impl WireSize for Big {
        fn wire_size(&self) -> usize {
            4 + BIG_LEN
        }
    }
    impl Encode for Big {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, BIG_LEN));
        }
    }
    impl Decode for Big {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            let id = u32::decode(buf)?;
            let (body, rest) = buf.split_at(BIG_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Big(id))
        }
    }

    #[test]
    fn vectored_flush_survives_partial_writes_on_huge_batches() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // ~2 MiB queued before the flusher starts: one batch, far past the
        // socket buffer, so the single write_vectored cannot take it all.
        const FRAMES: u32 = 512;
        let queue: Arc<PeerQueue<Big>> = Arc::new(PeerQueue::new());
        for v in 0..FRAMES {
            queue.push(Big(v));
        }
        let fq = Arc::clone(&queue);
        let flusher = std::thread::spawn(move || flusher_loop(&fq, stream, ProcessId::new(2)));

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        while got.len() < FRAMES as usize {
            let read = std::io::Read::read(&mut server, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Big>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(2));
                got.push(t.msg.0);
            }
        }
        // Every frame arrived intact (the Decode impl checks the body),
        // in FIFO order — whichever frame the short write split.
        assert_eq!(got, (0..FRAMES).collect::<Vec<_>>());
        queue.close();
        flusher.join().unwrap();
    }

    #[test]
    fn mixed_class_traffic_over_tcp_delivers_everything() {
        struct MixedEcho;
        impl Node for MixedEcho {
            type Msg = Classed;
            type Command = u32;
            type Output = (ProcessId, u32);
            fn on_command(&mut self, cmd: u32, ctx: &mut Context<Classed, (ProcessId, u32)>) {
                ctx.send_to_all(Classed(cmd));
            }
            fn on_message(
                &mut self,
                from: ProcessId,
                m: Classed,
                ctx: &mut Context<Classed, (ProcessId, u32)>,
            ) {
                ctx.output((from, m.0));
            }
        }
        let mut cluster = TcpCluster::start(3, |_| MixedEcho);
        for v in 0..20u32 {
            cluster.send_command(ProcessId::new((v % 3) as u16), v);
        }
        let outs = cluster.run_for(std::time::Duration::from_millis(600));
        assert_eq!(outs.len(), 20 * 3, "every classed frame must reach all processes");
        cluster.shutdown();
    }
}
