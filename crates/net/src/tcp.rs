//! TCP cluster: nodes connected by loop-back TCP sockets.
//!
//! Every node runs the same loop as the thread cluster, but links are real
//! sockets and messages travel through the wire codec — the closest
//! in-process analogue of the paper's cluster deployment. Reader threads
//! decode frames and forward them into the node's input channel.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;


use crossbeam::channel::{unbounded, Sender};
use iabc_runtime::Node;
use iabc_types::{Decode, Encode, ProcessId};
use parking_lot::Mutex;

use crate::cluster::ThreadCluster;
use crate::codec::{write_frame, FrameBuffer};
use crate::NetOutput;

/// A mesh of loop-back TCP connections between `n` local "processes".
///
/// Internally each process still runs on a thread (this is a test/demo
/// vehicle, not a deployment platform), but every message crosses a real
/// socket through [`write_frame`]/[`read_frame`], so the full
/// encode → TCP → decode path is exercised.
pub struct TcpCluster<N: Node>
where
    N::Msg: Encode,
{
    inner: ThreadCluster<MsgOverTcp<N>>,
    writers: Vec<Vec<Option<SharedStream>>>,
    reader_handles: Vec<JoinHandle<()>>,
}

type SharedStream = std::sync::Arc<Mutex<TcpStream>>;

/// Adapter node: forwards remote sends to TCP instead of channels.
///
/// The adapter intercepts `Send` actions for remote peers and writes them
/// to the peer's socket; self-sends and everything else pass through.
struct MsgOverTcp<N: Node> {
    node: N,
    me: ProcessId,
    writers: Vec<Option<SharedStream>>,
}

impl<N: Node> std::fmt::Debug for MsgOverTcp<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgOverTcp").field("me", &self.me).finish()
    }
}

impl<N> Node for MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    type Msg = N::Msg;
    type Command = N::Command;
    type Output = N::Output;

    fn on_start(&mut self, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_start(ctx);
        self.redirect(ctx);
    }

    fn on_command(&mut self, cmd: Self::Command, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_command(cmd, ctx);
        self.redirect(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>,
    ) {
        self.node.on_message(from, msg, ctx);
        self.redirect(ctx);
    }

    fn on_timer(&mut self, timer: iabc_runtime::TimerId, ctx: &mut iabc_runtime::Context<Self::Msg, Self::Output>) {
        self.node.on_timer(timer, ctx);
        self.redirect(ctx);
    }
}

impl<N> MsgOverTcp<N>
where
    N: Node,
    N::Msg: Encode,
{
    /// Rewrites remote sends into socket writes, keeping everything else.
    fn redirect(&mut self, ctx: &mut iabc_runtime::Context<N::Msg, N::Output>) {
        use iabc_runtime::Action;
        let actions = ctx.take_actions();
        for action in actions {
            match action {
                Action::Send { to, msg } if to != self.me => {
                    if let Some(stream) = &self.writers[to.as_usize()] {
                        let mut s = stream.lock();
                        // A dead peer is a crashed process: drop silently.
                        let _ = write_frame(&Tagged { from: self.me, msg: &msg }, &mut *s);
                    }
                }
                other => {
                    // Self-sends, timers, work, outputs: hand back to the
                    // channel machinery.
                    match other {
                        Action::Send { to, msg } => ctx.send(to, msg),
                        Action::SetTimer { delay, timer } => ctx.set_timer(delay, timer),
                        Action::Work { duration } => ctx.work(duration),
                        Action::Output(o) => ctx.output(o),
                    }
                }
            }
        }
    }
}

/// `(sender, message)` as one frame.
struct Tagged<'a, M> {
    from: ProcessId,
    msg: &'a M,
}

impl<M: Encode> iabc_types::WireSize for Tagged<'_, M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Encode> Encode for Tagged<'_, M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.msg.encode(buf);
    }
}

/// Owned decode-side counterpart of [`Tagged`].
struct TaggedOwned<M> {
    from: ProcessId,
    msg: M,
}

impl<M: Decode + iabc_types::WireSize> iabc_types::WireSize for TaggedOwned<M> {
    fn wire_size(&self) -> usize {
        2 + self.msg.wire_size()
    }
}

impl<M: Decode + iabc_types::WireSize> Decode for TaggedOwned<M> {
    fn decode(buf: &mut &[u8]) -> Result<Self, iabc_types::CodecError> {
        Ok(TaggedOwned { from: ProcessId::decode(buf)?, msg: M::decode(buf)? })
    }
}

impl<N> TcpCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: Encode + Decode + Send,
    N::Command: Send,
    N::Output: Send,
{
    /// Binds `n` loop-back listeners, connects the full mesh, and starts
    /// the node threads.
    ///
    /// # Panics
    ///
    /// Panics if sockets cannot be bound or connected (loop-back only, so
    /// this indicates local resource exhaustion).
    pub fn start(n: usize, mut factory: impl FnMut(ProcessId) -> N) -> Self {
        assert!(n > 0, "need at least one process");
        // Bind one listener per process on an ephemeral port.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loop-back listener"))
            .collect();
        let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();

        // Writer side: from i to j (i != j), a connected stream.
        let mut writers: Vec<Vec<Option<SharedStream>>> = (0..n).map(|_| vec![]).collect();
        for (i, row) in writers.iter_mut().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i == j {
                    row.push(None);
                } else {
                    let stream = TcpStream::connect(addr).expect("connect to peer");
                    stream.set_nodelay(true).expect("nodelay");
                    // Identify ourselves so the acceptor can route.
                    let mut s = stream.try_clone().expect("clone stream");
                    s.write_all(&(i as u16).to_le_bytes()).expect("handshake");
                    row.push(Some(std::sync::Arc::new(Mutex::new(stream))));
                }
            }
        }

        let writers_for_nodes = writers.clone();
        let inner = ThreadCluster::start(n, move |p| MsgOverTcp {
            node: factory(p),
            me: p,
            writers: writers_for_nodes[p.as_usize()].clone(),
        });

        // Reader threads: accept n-1 inbound connections per listener and
        // pump decoded frames into the owning node via its command channel —
        // we reuse the ThreadCluster's message path by injecting through a
        // dedicated channel pair.
        let injectors: Vec<Sender<(ProcessId, N::Msg)>> = (0..n)
            .map(|j| {
                let (tx, rx) = unbounded::<(ProcessId, N::Msg)>();
                let inner_tx = inner.message_injector(ProcessId::new(j as u16));
                std::thread::spawn(move || {
                    while let Ok((from, msg)) = rx.recv() {
                        if inner_tx(from, msg).is_err() {
                            return;
                        }
                    }
                });
                tx
            })
            .collect();

        let mut reader_handles = Vec::new();
        for (j, listener) in listeners.into_iter().enumerate() {
            for _ in 0..(n - 1) {
                let (stream, _) = listener.accept().expect("accept peer connection");
                stream.set_nodelay(true).expect("nodelay");
                let inject = injectors[j].clone();
                reader_handles.push(std::thread::spawn(move || {
                    reader_loop::<N>(stream, inject);
                }));
            }
        }

        TcpCluster { inner, writers, reader_handles }
    }

    /// Sends an application command to process `p`.
    pub fn send_command(&self, p: ProcessId, cmd: N::Command) {
        self.inner.send_command(p, cmd);
    }

    /// Collects outputs for (wall-clock) `dur`.
    pub fn run_for(&mut self, dur: std::time::Duration) -> Vec<NetOutput<N::Output>> {
        self.inner.run_for(dur)
    }

    /// Stops node threads and closes sockets.
    pub fn shutdown(self) {
        // Closing write halves unblocks the readers.
        for row in &self.writers {
            for w in row.iter().flatten() {
                let _ = w.lock().shutdown(std::net::Shutdown::Both);
            }
        }
        self.inner.shutdown();
        for h in self.reader_handles {
            let _ = h.join();
        }
    }
}

fn reader_loop<N>(mut stream: TcpStream, inject: Sender<(ProcessId, N::Msg)>)
where
    N: Node,
    N::Msg: Decode,
{
    // Handshake: the 2-byte sender id.
    let mut id = [0u8; 2];
    if std::io::Read::read_exact(&mut stream, &mut id).is_err() {
        return;
    }
    let _claimed_sender = ProcessId::new(u16::from_le_bytes(id));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match frames.next_frame::<TaggedOwned<N::Msg>>() {
                Ok(Some(t)) => {
                    if inject.send((t.from, t.msg)).is_err() {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt or oversized frame: the buffer is poisoned
                    // (framing is unrecoverable), so tear the connection
                    // down instead of spinning on the same bytes.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // peer closed
            Ok(read) => frames.extend(&chunk[..read]),
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_runtime::Context;
    use iabc_types::{CodecError, WireSize};

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            4
        }
    }
    impl Encode for Num {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Num {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Num(u32::decode(buf)?))
        }
    }

    struct Echo;
    impl Node for Echo {
        type Msg = Num;
        type Command = u32;
        type Output = (ProcessId, u32);
        fn on_command(&mut self, cmd: u32, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.send_to_all(Num(cmd));
        }
        fn on_message(&mut self, from: ProcessId, m: Num, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.output((from, m.0));
        }
    }

    #[test]
    fn corrupt_stream_drops_connection_after_first_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (tx, rx) = unbounded::<(ProcessId, Num)>();
        let reader = std::thread::spawn(move || reader_loop::<Echo>(server, tx));

        // Handshake, then one good frame.
        client.write_all(&1u16.to_le_bytes()).unwrap();
        write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(42) }, &mut client).unwrap();
        // A malformed frame: the length prefix says 2 bytes, which can
        // never decode as a Tagged<Num>.
        client.write_all(&2u32.to_le_bytes()).unwrap();
        client.write_all(&[0xAB, 0xCD]).unwrap();
        // A good frame after the corruption must never be delivered (the
        // reader may already have torn the socket down — ignore errors).
        let _ = write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(7) }, &mut client);

        let first = rx.recv_timeout(std::time::Duration::from_secs(5));
        assert_eq!(first.unwrap(), (ProcessId::new(1), Num(42)));
        // The reader drops the connection and its injector on first error:
        // the channel disconnects instead of yielding Num(7).
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).is_err(),
            "no frame may be delivered after a decode error"
        );
        reader.join().unwrap();
    }

    #[test]
    fn fanout_over_tcp() {
        let mut cluster = TcpCluster::start(3, |_| Echo);
        cluster.send_command(ProcessId::new(1), 77);
        let outs = cluster.run_for(std::time::Duration::from_millis(400));
        assert_eq!(outs.len(), 3, "all three processes must receive the fanout");
        assert!(outs.iter().all(|o| o.output == (ProcessId::new(1), 77)));
        cluster.shutdown();
    }
}
